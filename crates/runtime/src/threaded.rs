//! The OS-threaded workqueue demonstrator.
//!
//! The paper's manager "uses the built-in kernel workqueue to manage
//! multiple reconfiguration requests": application threads (one per
//! reconfigurable tile) enqueue requests; the queue executes them as soon
//! as the PRC is ready; callers wait for completion while the device is
//! locked. This module reproduces that concurrency structure with real OS
//! threads — an mpsc channel as the workqueue, a worker thread as the
//! kernel work item, and a mutex/condvar pair guarding the shared
//! manager — while the deterministic virtual-time manager underneath keeps
//! results reproducible.

use crate::error::Error;
use crate::manager::{ExecPath, ReconfigManager, RecoveryPolicy};
use crate::registry::BitstreamRegistry;
use presp_accel::catalog::AcceleratorKind;
use presp_accel::AccelOp;
use presp_soc::config::TileCoord;
use presp_soc::sim::{AccelRun, Soc};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A request travelling through the workqueue.
enum Request {
    Reconfigure {
        tile: TileCoord,
        kind: AcceleratorKind,
        done: Sender<Result<(), Error>>,
    },
    Run {
        tile: TileCoord,
        op: Box<AccelOp>,
        done: Sender<Result<AccelRun, Error>>,
    },
    Execute {
        tile: TileCoord,
        kind: AcceleratorKind,
        op: Box<AccelOp>,
        done: Sender<Result<(AccelRun, ExecPath), Error>>,
    },
    Shutdown,
}

/// Shared state guarded like the kernel manager guards its device list.
struct Shared {
    manager: Mutex<ReconfigManager>,
    /// Signalled whenever a reconfiguration completes, waking threads that
    /// blocked on a locked tile.
    reconfig_done: Condvar,
}

/// A thread-safe handle to the DPR runtime: clone it into as many
/// application threads as there are reconfigurable tiles.
///
/// # Example
///
/// ```no_run
/// # use presp_runtime::threaded::ThreadedManager;
/// # use presp_runtime::registry::BitstreamRegistry;
/// # use presp_soc::{config::SocConfig, sim::Soc};
/// # use presp_accel::{AccelOp, AcceleratorKind};
/// # fn demo() -> Result<(), presp_runtime::Error> {
/// let config = SocConfig::grid_3x3_reconf("demo", 2)?;
/// let soc = Soc::new(&config)?;
/// let manager = ThreadedManager::spawn(soc, BitstreamRegistry::new());
/// let tile = config.reconfigurable_tiles()[0];
/// manager.reconfigure_blocking(tile, AcceleratorKind::Mac)?;
/// let run = manager.run_blocking(tile, AccelOp::Mac { a: vec![1.0], b: vec![2.0] })?;
/// manager.shutdown();
/// # Ok(()) }
/// ```
#[derive(Clone)]
pub struct ThreadedManager {
    queue: Sender<Request>,
    shared: Arc<Shared>,
    worker: Arc<Mutex<Option<JoinHandle<()>>>>,
}

impl ThreadedManager {
    /// Boots the workqueue worker over a SoC and registry, with the
    /// default [`RecoveryPolicy`].
    pub fn spawn(soc: Soc, registry: BitstreamRegistry) -> ThreadedManager {
        ThreadedManager::spawn_with_policy(soc, registry, RecoveryPolicy::default())
    }

    /// Boots the workqueue worker with an explicit recovery policy.
    pub fn spawn_with_policy(
        soc: Soc,
        registry: BitstreamRegistry,
        policy: RecoveryPolicy,
    ) -> ThreadedManager {
        let shared = Arc::new(Shared {
            manager: Mutex::new(ReconfigManager::with_policy(soc, registry, policy)),
            reconfig_done: Condvar::new(),
        });
        let (tx, rx) = channel::<Request>();
        let worker_shared = Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            // The workqueue: requests are "queued up and executed as soon
            // as the PRC is ready" — one at a time, the ICAP is unique.
            while let Ok(request) = rx.recv() {
                match request {
                    Request::Reconfigure { tile, kind, done } => {
                        let result = {
                            let mut mgr = worker_shared.manager.lock().expect("manager lock");
                            mgr.request_reconfiguration(tile, kind).map(|_| ())
                        };
                        worker_shared.reconfig_done.notify_all();
                        let _ = done.send(result);
                    }
                    Request::Run { tile, op, done } => {
                        let result = {
                            let mut mgr = worker_shared.manager.lock().expect("manager lock");
                            mgr.run(tile, &op)
                        };
                        let _ = done.send(result);
                    }
                    Request::Execute {
                        tile,
                        kind,
                        op,
                        done,
                    } => {
                        let result = {
                            let mut mgr = worker_shared.manager.lock().expect("manager lock");
                            mgr.run_with_fallback(tile, kind, &op)
                        };
                        worker_shared.reconfig_done.notify_all();
                        let _ = done.send(result);
                    }
                    Request::Shutdown => break,
                }
            }
            // Drain the queue so no caller is left waiting on a dropped
            // `done` sender: every pending request is answered with
            // `ManagerStopped` before the worker exits.
            while let Ok(request) = rx.try_recv() {
                match request {
                    Request::Reconfigure { done, .. } => {
                        let _ = done.send(Err(Error::ManagerStopped));
                    }
                    Request::Run { done, .. } => {
                        let _ = done.send(Err(Error::ManagerStopped));
                    }
                    Request::Execute { done, .. } => {
                        let _ = done.send(Err(Error::ManagerStopped));
                    }
                    Request::Shutdown => {}
                }
            }
            // Unblock any thread parked in `run_blocking`'s wait loop.
            worker_shared.reconfig_done.notify_all();
        });
        ThreadedManager {
            queue: tx,
            shared,
            worker: Arc::new(Mutex::new(Some(handle))),
        }
    }

    /// Enqueues a reconfiguration and blocks until it completes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ManagerStopped`] after shutdown, plus manager
    /// errors.
    pub fn reconfigure_blocking(
        &self,
        tile: TileCoord,
        kind: AcceleratorKind,
    ) -> Result<(), Error> {
        let (done_tx, done_rx) = channel();
        self.queue
            .send(Request::Reconfigure {
                tile,
                kind,
                done: done_tx,
            })
            .map_err(|_| Error::ManagerStopped)?;
        done_rx.recv().map_err(|_| Error::ManagerStopped)?
    }

    /// Enqueues an accelerator invocation and blocks for its result.
    ///
    /// If the tile is mid-reconfiguration (its driver is unloaded), the
    /// call waits for the next reconfiguration completion and retries —
    /// the paper's "other threads trying to access it must wait until the
    /// reconfiguration is complete and the new driver is loaded".
    ///
    /// # Errors
    ///
    /// Returns [`Error::ManagerStopped`] after shutdown, plus manager and
    /// SoC errors.
    pub fn run_blocking(&self, tile: TileCoord, op: AccelOp) -> Result<AccelRun, Error> {
        loop {
            let (done_tx, done_rx) = channel();
            self.queue
                .send(Request::Run {
                    tile,
                    op: Box::new(op.clone()),
                    done: done_tx,
                })
                .map_err(|_| Error::ManagerStopped)?;
            match done_rx.recv().map_err(|_| Error::ManagerStopped)? {
                Err(Error::NoDriver { .. }) => {
                    // Wait for a reconfiguration to finish, then retry —
                    // unless the tile was quarantined, in which case no
                    // reconfiguration will ever complete here.
                    let guard = self.shared.manager.lock().expect("manager lock");
                    if guard.is_quarantined(tile) {
                        return Err(Error::TileQuarantined { tile });
                    }
                    let _unused = self
                        .shared
                        .reconfig_done
                        .wait_timeout(guard, std::time::Duration::from_millis(50))
                        .expect("manager lock");
                }
                other => return other,
            }
        }
    }

    /// Enqueues an ensure-loaded-then-run request and blocks for its
    /// result: the worker reconfigures if needed (with the manager's
    /// retry/backoff recovery) and degrades to the CPU software path when
    /// the accelerator path is unavailable, so the call completes even on
    /// a faulty tile.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ManagerStopped`] after shutdown, plus
    /// non-degradable manager errors.
    pub fn execute_blocking(
        &self,
        tile: TileCoord,
        kind: AcceleratorKind,
        op: AccelOp,
    ) -> Result<(AccelRun, ExecPath), Error> {
        let (done_tx, done_rx) = channel();
        self.queue
            .send(Request::Execute {
                tile,
                kind,
                op: Box::new(op),
                done: done_tx,
            })
            .map_err(|_| Error::ManagerStopped)?;
        done_rx.recv().map_err(|_| Error::ManagerStopped)?
    }

    /// Manager statistics snapshot.
    pub fn stats(&self) -> crate::manager::ManagerStats {
        self.shared.manager.lock().expect("manager lock").stats()
    }

    /// Latest completion cycle on the shared virtual clock — the
    /// application makespan across everything the worker dispatched.
    /// OS-thread interleaving varies between runs; this virtual-time
    /// reading is still exact for the operations performed.
    pub fn makespan(&self) -> u64 {
        self.shared.manager.lock().expect("manager lock").makespan()
    }

    /// Attaches a trace sink to the underlying SoC: worker-dispatched
    /// operations emit structured records through it.
    pub fn attach_tracer(&self, sink: presp_events::SharedSink) {
        self.shared
            .manager
            .lock()
            .expect("manager lock")
            .soc_mut()
            .attach_tracer(sink);
    }

    /// Stops the worker and joins it. Idempotent.
    pub fn shutdown(&self) {
        let _ = self.queue.send(Request::Shutdown);
        if let Some(handle) = self.worker.lock().expect("worker lock").take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presp_accel::AccelValue;
    use presp_fpga::bitstream::{Bitstream, BitstreamBuilder, BitstreamKind};
    use presp_fpga::frame::FrameAddress;
    use presp_soc::config::SocConfig;

    fn bitstream(soc: &Soc, col: u32) -> Bitstream {
        let device = soc.part().device();
        let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
        let words = device.part().family().frame_words();
        b.add_frame(FrameAddress::new(0, col, 0), vec![col; words])
            .unwrap();
        b.build(true)
    }

    fn boot(n: usize) -> (ThreadedManager, Vec<TileCoord>) {
        let cfg = SocConfig::grid_3x3_reconf("threaded", n).unwrap();
        let soc = Soc::new(&cfg).unwrap();
        let tiles = cfg.reconfigurable_tiles();
        let mut registry = BitstreamRegistry::new();
        for (i, &tile) in tiles.iter().enumerate() {
            registry.register(tile, AcceleratorKind::Mac, bitstream(&soc, 2 + i as u32));
            registry.register(tile, AcceleratorKind::Sort, bitstream(&soc, 30 + i as u32));
        }
        (ThreadedManager::spawn(soc, registry), tiles)
    }

    #[test]
    fn blocking_reconfigure_and_run() {
        let (mgr, tiles) = boot(1);
        mgr.reconfigure_blocking(tiles[0], AcceleratorKind::Mac)
            .unwrap();
        let run = mgr
            .run_blocking(
                tiles[0],
                AccelOp::Mac {
                    a: vec![2.0],
                    b: vec![3.0],
                },
            )
            .unwrap();
        assert_eq!(run.value, AccelValue::Scalar(6.0));
        mgr.shutdown();
    }

    #[test]
    fn one_thread_per_tile_runs_concurrently() {
        let (mgr, tiles) = boot(2);
        let handles: Vec<_> = tiles
            .iter()
            .enumerate()
            .map(|(i, &tile)| {
                let mgr = mgr.clone();
                std::thread::spawn(move || {
                    mgr.reconfigure_blocking(tile, AcceleratorKind::Mac)
                        .unwrap();
                    let mut total = 0.0f32;
                    for round in 0..5 {
                        let v = (i + round) as f32;
                        let run = mgr
                            .run_blocking(
                                tile,
                                AccelOp::Mac {
                                    a: vec![v; 16],
                                    b: vec![1.0; 16],
                                },
                            )
                            .unwrap();
                        match run.value {
                            AccelValue::Scalar(s) => total += s,
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                    total
                })
            })
            .collect();
        let results: Vec<f32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Thread i computes Σ_round 16·(i+round) = 16·(5i + 10).
        assert_eq!(results[0], 160.0);
        assert_eq!(results[1], 240.0);
        assert_eq!(mgr.stats().reconfigurations, 2);
        assert_eq!(mgr.stats().runs, 10);
        mgr.shutdown();
    }

    #[test]
    fn swapping_under_contention_stays_consistent() {
        let (mgr, tiles) = boot(1);
        let tile = tiles[0];
        let swapper = {
            let mgr = mgr.clone();
            std::thread::spawn(move || {
                for _ in 0..4 {
                    mgr.reconfigure_blocking(tile, AcceleratorKind::Sort)
                        .unwrap();
                    mgr.reconfigure_blocking(tile, AcceleratorKind::Mac)
                        .unwrap();
                }
            })
        };
        // This thread hammers the tile with MAC work; whenever the swapper
        // has SORT loaded the call returns NoDriver internally and retries.
        let mut successes = 0;
        for _ in 0..20 {
            match mgr.run_blocking(
                tile,
                AccelOp::Mac {
                    a: vec![1.0],
                    b: vec![1.0],
                },
            ) {
                Ok(run) => {
                    assert_eq!(run.value, AccelValue::Scalar(1.0));
                    successes += 1;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        swapper.join().unwrap();
        assert_eq!(successes, 20);
        mgr.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_stops_requests() {
        let (mgr, tiles) = boot(1);
        mgr.shutdown();
        mgr.shutdown();
        let err = mgr.reconfigure_blocking(tiles[0], AcceleratorKind::Mac);
        assert!(matches!(err, Err(Error::ManagerStopped)));
    }

    #[test]
    fn shutdown_under_load_answers_every_caller() {
        // Shut down while four threads are mid-burst: every call must get
        // an answer — a result or ManagerStopped — and every thread must
        // join. A dropped `done` sender or a hung worker fails this test.
        let (mgr, tiles) = boot(2);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let mgr = mgr.clone();
                let tile = tiles[i % 2];
                std::thread::spawn(move || {
                    let mut answered = 0;
                    for j in 0..50 {
                        let (kind, op) = if (i + j) % 2 == 0 {
                            (
                                AcceleratorKind::Mac,
                                AccelOp::Mac {
                                    a: vec![1.0],
                                    b: vec![2.0],
                                },
                            )
                        } else {
                            (
                                AcceleratorKind::Sort,
                                AccelOp::Sort {
                                    data: vec![2.0, 1.0],
                                },
                            )
                        };
                        match mgr.execute_blocking(tile, kind, op) {
                            Ok(_) | Err(Error::ManagerStopped) => answered += 1,
                            Err(e) => panic!("unexpected error {e}"),
                        }
                    }
                    answered
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(2));
        mgr.shutdown();
        for h in handles {
            assert_eq!(h.join().expect("worker thread panicked"), 50);
        }
        // The worker is joined; a fresh request is refused, not lost.
        let err = mgr.run_blocking(
            tiles[0],
            AccelOp::Mac {
                a: vec![1.0],
                b: vec![1.0],
            },
        );
        assert!(matches!(err, Err(Error::ManagerStopped)));
    }
}
