//! Error type for the runtime manager.

use presp_accel::catalog::AcceleratorKind;
use presp_soc::config::TileCoord;
use std::fmt;

/// Errors produced by the DPR runtime manager.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// No bitstream is registered for `(tile, accelerator)`.
    BitstreamNotRegistered {
        /// Target tile.
        tile: TileCoord,
        /// Requested accelerator.
        kind: AcceleratorKind,
    },
    /// A bitstream is already registered for `(tile, accelerator)`;
    /// re-registration must go through an explicit replacement.
    AlreadyRegistered {
        /// Target tile.
        tile: TileCoord,
        /// Requested accelerator.
        kind: AcceleratorKind,
    },
    /// The registered bitstream for `(tile, accelerator)` no longer passes
    /// its build-time integrity check — it was corrupted in storage.
    CorruptBitstream {
        /// Target tile.
        tile: TileCoord,
        /// Requested accelerator.
        kind: AcceleratorKind,
    },
    /// An operation was submitted to a tile whose active driver does not
    /// match.
    NoDriver {
        /// Target tile.
        tile: TileCoord,
        /// What the operation needed.
        needed: AcceleratorKind,
    },
    /// The manager was shut down while requests were outstanding.
    ManagerStopped,
    /// Reconfiguration of `(tile, kind)` failed every attempt the recovery
    /// policy allowed.
    RetriesExhausted {
        /// Target tile (left decoupled — isolated from the NoC).
        tile: TileCoord,
        /// Requested accelerator.
        kind: AcceleratorKind,
        /// Attempts made (first try plus retries).
        attempts: u32,
    },
    /// The tile accumulated too many failed reconfigurations and was
    /// quarantined; requests are rejected until it is released.
    TileQuarantined {
        /// The quarantined tile.
        tile: TileCoord,
    },
    /// An application kernel has no tile allocation and CPU fallback was
    /// disabled.
    Unallocated {
        /// The kernel's name.
        kernel: String,
    },
    /// The request's virtual-time deadline elapsed before its commit slot
    /// arrived and CPU fallback could not (or was not allowed to) absorb
    /// it.
    DeadlineExceeded {
        /// The tile the request targeted.
        tile: TileCoord,
    },
    /// The per-tile queue was at capacity and the admission controller
    /// refused (or shed) the request instead of growing the backlog.
    Overloaded {
        /// The tile whose queue was full.
        tile: TileCoord,
    },
    /// Amorphous floorplanning is enabled and the fabric — as currently
    /// fragmented — has no free column span wide enough for the
    /// bitstream's footprint. Not transient: retrying without changing
    /// the placement (releasing leases or running the defragmenter)
    /// cannot succeed.
    RegionUnavailable {
        /// The tile whose load was refused.
        tile: TileCoord,
        /// Columns the bitstream's footprint needs, holes included.
        width: u32,
    },
    /// SoC-level failure.
    Soc(presp_soc::Error),
}

impl Error {
    /// Whether CPU fallback is the sanctioned response: the accelerator
    /// path is unavailable (quarantined tile, exhausted retries, missing
    /// bitstream), but the computation itself can still run in software.
    pub fn is_degradable(&self) -> bool {
        matches!(
            self,
            Error::TileQuarantined { .. }
                | Error::RetriesExhausted { .. }
                | Error::BitstreamNotRegistered { .. }
                | Error::CorruptBitstream { .. }
        )
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::BitstreamNotRegistered { tile, kind } => {
                write!(f, "no bitstream registered for {kind} on tile {tile}")
            }
            Error::AlreadyRegistered { tile, kind } => {
                write!(f, "a {kind} bitstream is already registered on tile {tile}")
            }
            Error::CorruptBitstream { tile, kind } => {
                write!(
                    f,
                    "registered {kind} bitstream for tile {tile} failed its integrity check"
                )
            }
            Error::NoDriver { tile, needed } => {
                write!(f, "tile {tile} has no active {needed} driver")
            }
            Error::ManagerStopped => write!(f, "runtime manager stopped"),
            Error::RetriesExhausted {
                tile,
                kind,
                attempts,
            } => {
                write!(
                    f,
                    "loading {kind} on tile {tile} failed after {attempts} attempts"
                )
            }
            Error::TileQuarantined { tile } => {
                write!(
                    f,
                    "tile {tile} is quarantined after repeated reconfiguration failures"
                )
            }
            Error::Unallocated { kernel } => {
                write!(f, "kernel '{kernel}' is not allocated to any tile")
            }
            Error::DeadlineExceeded { tile } => {
                write!(
                    f,
                    "request for tile {tile} missed its virtual-time deadline"
                )
            }
            Error::Overloaded { tile } => {
                write!(f, "tile {tile} queue is at capacity; request shed")
            }
            Error::RegionUnavailable { tile, width } => {
                write!(
                    f,
                    "no free region span of {width} columns for tile {tile}: \
                     fabric too fragmented"
                )
            }
            Error::Soc(e) => write!(f, "soc error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Soc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<presp_soc::Error> for Error {
    fn from(e: presp_soc::Error) -> Error {
        Error::Soc(e)
    }
}

impl From<presp_accel::Error> for Error {
    fn from(e: presp_accel::Error) -> Error {
        Error::Soc(presp_soc::Error::Accel(e))
    }
}

impl From<presp_fpga::Error> for Error {
    fn from(e: presp_fpga::Error) -> Error {
        Error::Soc(presp_soc::Error::Fpga(e))
    }
}
