//! LRU cache of verified partial bitstreams.
//!
//! [`crate::registry::BitstreamRegistry::lookup`] re-verifies the stored
//! stream's build-time integrity checksum on every call — the right
//! default for a safety-critical load path, but pure overhead when the
//! same working set of (tile, accelerator) pairs swaps back and forth
//! under load. [`BitstreamCache`] fronts the registry with a bounded LRU
//! of already-verified streams: a hit returns a cheap `Arc` clone and
//! skips the re-verification; a miss pays the full verified lookup once
//! and caches the result.
//!
//! A capacity of zero disables the cache entirely (every lookup goes to
//! the registry) — the default for the deterministic
//! [`crate::manager::ReconfigManager`], whose trace log is a
//! semantics-preservation oracle and must not change.

use crate::error::Error;
use crate::registry::BitstreamRegistry;
use crate::sync::Arc;
use presp_accel::catalog::AcceleratorKind;
use presp_fpga::bitstream::Bitstream;
use presp_soc::config::TileCoord;
use std::collections::BTreeMap;

/// Hit/miss counters for one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache (integrity re-check skipped).
    pub hits: u64,
    /// Lookups that went through to the verified registry path.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded LRU of verified bitstreams keyed by (tile, accelerator).
#[derive(Debug, Default)]
pub struct BitstreamCache {
    capacity: usize,
    entries: BTreeMap<(TileCoord, AcceleratorKind), Entry>,
    stamp: u64,
    stats: CacheStats,
}

#[derive(Debug)]
struct Entry {
    stream: Arc<Bitstream>,
    last_used: u64,
}

impl BitstreamCache {
    /// A cache holding at most `capacity` verified streams. Zero disables
    /// caching: every lookup re-verifies through the registry.
    pub fn new(capacity: usize) -> BitstreamCache {
        BitstreamCache {
            capacity,
            ..BitstreamCache::default()
        }
    }

    /// A disabled cache (capacity zero).
    pub fn disabled() -> BitstreamCache {
        BitstreamCache::new(0)
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up the verified stream for `(tile, kind)`, going to
    /// `registry` (which re-verifies integrity) only on a miss. Returns
    /// whether the lookup hit alongside the stream.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::registry::BitstreamRegistry::lookup`] errors
    /// on the miss path.
    pub fn lookup(
        &mut self,
        registry: &BitstreamRegistry,
        tile: TileCoord,
        kind: AcceleratorKind,
    ) -> Result<(Arc<Bitstream>, bool), Error> {
        self.lookup_with(registry, tile, kind, &mut None)
    }

    /// [`BitstreamCache::lookup`] with an optionally prepared stream: on
    /// a miss, a verified copy the caller fetched from the same registry
    /// ahead of time (outside the device-core lock) is consumed instead
    /// of paying the registry's verified clone here. Hit/miss accounting,
    /// cache contents and results are identical either way — the registry
    /// is immutable after boot, so a prepared copy cannot go stale.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::registry::BitstreamRegistry::lookup`] errors
    /// on the unprepared miss path.
    pub fn lookup_with(
        &mut self,
        registry: &BitstreamRegistry,
        tile: TileCoord,
        kind: AcceleratorKind,
        prepared: &mut Option<Arc<Bitstream>>,
    ) -> Result<(Arc<Bitstream>, bool), Error> {
        self.stamp += 1;
        if self.capacity > 0 {
            if let Some(entry) = self.entries.get_mut(&(tile, kind)) {
                entry.last_used = self.stamp;
                self.stats.hits += 1;
                return Ok((Arc::clone(&entry.stream), true));
            }
        }
        self.stats.misses += 1;
        let stream = match prepared.take() {
            Some(stream) => stream,
            None => Arc::new(registry.lookup(tile, kind)?.clone()),
        };
        if self.capacity > 0 {
            if self.entries.len() >= self.capacity {
                // Evict the least-recently-used entry.
                if let Some(&victim) = self
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k)
                {
                    self.entries.remove(&victim);
                    self.stats.evictions += 1;
                }
            }
            self.entries.insert(
                (tile, kind),
                Entry {
                    stream: Arc::clone(&stream),
                    last_used: self.stamp,
                },
            );
        }
        Ok((stream, false))
    }

    /// Drops the cached entry for `(tile, kind)`, if any — e.g. after the
    /// registry's stream was replaced.
    pub fn invalidate(&mut self, tile: TileCoord, kind: AcceleratorKind) {
        self.entries.remove(&(tile, kind));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presp_fpga::bitstream::{BitstreamBuilder, BitstreamKind};
    use presp_fpga::frame::FrameAddress;
    use presp_fpga::part::FpgaPart;

    fn registry_with(pairs: &[(TileCoord, AcceleratorKind, u32)]) -> BitstreamRegistry {
        let device = FpgaPart::Vc707.device();
        let mut registry = BitstreamRegistry::new();
        for &(tile, kind, col) in pairs {
            let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
            let words = device.part().family().frame_words();
            b.add_frame(FrameAddress::new(0, col, 0), vec![col; words])
                .unwrap();
            registry.register(tile, kind, b.build(true)).unwrap();
        }
        registry
    }

    #[test]
    fn second_lookup_hits_and_skips_reverification() {
        let t = TileCoord::new(1, 0);
        let registry = registry_with(&[(t, AcceleratorKind::Mac, 2)]);
        let mut cache = BitstreamCache::new(4);
        let (_, hit) = cache.lookup(&registry, t, AcceleratorKind::Mac).unwrap();
        assert!(!hit);
        let (_, hit) = cache.lookup(&registry, t, AcceleratorKind::Mac).unwrap();
        assert!(hit);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        assert!(cache.stats().hit_rate() > 0.49);
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let t = TileCoord::new(1, 0);
        let registry = registry_with(&[
            (t, AcceleratorKind::Mac, 2),
            (t, AcceleratorKind::Sort, 3),
            (t, AcceleratorKind::Gemm, 4),
        ]);
        let mut cache = BitstreamCache::new(2);
        cache.lookup(&registry, t, AcceleratorKind::Mac).unwrap();
        cache.lookup(&registry, t, AcceleratorKind::Sort).unwrap();
        // Touch Mac so Sort becomes the LRU victim.
        cache.lookup(&registry, t, AcceleratorKind::Mac).unwrap();
        cache.lookup(&registry, t, AcceleratorKind::Gemm).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        let (_, hit) = cache.lookup(&registry, t, AcceleratorKind::Mac).unwrap();
        assert!(hit, "the recently-touched entry survived");
        let (_, hit) = cache.lookup(&registry, t, AcceleratorKind::Sort).unwrap();
        assert!(!hit, "the LRU entry was evicted");
    }

    #[test]
    fn disabled_cache_never_hits() {
        let t = TileCoord::new(1, 0);
        let registry = registry_with(&[(t, AcceleratorKind::Mac, 2)]);
        let mut cache = BitstreamCache::disabled();
        for _ in 0..3 {
            let (_, hit) = cache.lookup(&registry, t, AcceleratorKind::Mac).unwrap();
            assert!(!hit);
        }
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn miss_on_unregistered_pair_propagates() {
        let t = TileCoord::new(1, 0);
        let registry = registry_with(&[]);
        let mut cache = BitstreamCache::new(4);
        assert!(matches!(
            cache.lookup(&registry, t, AcceleratorKind::Mac),
            Err(Error::BitstreamNotRegistered { .. })
        ));
    }
}
