//! The driver table.
//!
//! ESP auto-generates one device driver per accelerator. On a DPR system
//! the driver bound to a reconfigurable tile must follow the accelerator:
//! the manager unregisters the outgoing driver before reconfiguration and
//! probes the incoming one after the DFXC interrupt. Submitting work
//! through a stale driver is the classic DPR software bug this table
//! prevents.

use presp_accel::catalog::AcceleratorKind;
use presp_soc::config::TileCoord;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Lifecycle events recorded for observability and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DriverEvent {
    /// A driver was probed (bound) to a tile.
    Probed {
        /// Tile the driver bound to.
        tile: TileCoord,
        /// Accelerator the driver serves.
        kind: AcceleratorKind,
    },
    /// A driver was removed from a tile.
    Removed {
        /// Tile the driver unbound from.
        tile: TileCoord,
        /// Accelerator the driver served.
        kind: AcceleratorKind,
    },
}

/// Active drivers, one slot per tile.
#[derive(Debug, Clone, Default)]
pub struct DriverTable {
    active: BTreeMap<TileCoord, AcceleratorKind>,
    events: Vec<DriverEvent>,
}

impl DriverTable {
    /// An empty table.
    pub fn new() -> DriverTable {
        DriverTable::default()
    }

    /// The driver currently bound to `tile`.
    pub fn active(&self, tile: TileCoord) -> Option<AcceleratorKind> {
        self.active.get(&tile).copied()
    }

    /// Unregisters the driver on `tile` (before reconfiguration).
    pub fn remove(&mut self, tile: TileCoord) -> Option<AcceleratorKind> {
        let removed = self.active.remove(&tile);
        if let Some(kind) = removed {
            self.events.push(DriverEvent::Removed { tile, kind });
        }
        removed
    }

    /// Probes the driver for `kind` on `tile` (after reconfiguration).
    pub fn probe(&mut self, tile: TileCoord, kind: AcceleratorKind) {
        self.active.insert(tile, kind);
        self.events.push(DriverEvent::Probed { tile, kind });
    }

    /// Whether `tile`'s active driver can service an operation for `kind`.
    pub fn services(&self, tile: TileCoord, kind: AcceleratorKind) -> bool {
        self.active(tile) == Some(kind)
    }

    /// The recorded lifecycle events.
    pub fn events(&self) -> &[DriverEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_then_remove_roundtrip() {
        let mut table = DriverTable::new();
        let tile = TileCoord::new(1, 1);
        assert_eq!(table.active(tile), None);
        table.probe(tile, AcceleratorKind::Mac);
        assert!(table.services(tile, AcceleratorKind::Mac));
        assert!(!table.services(tile, AcceleratorKind::Gemm));
        assert_eq!(table.remove(tile), Some(AcceleratorKind::Mac));
        assert_eq!(table.active(tile), None);
    }

    #[test]
    fn removing_unbound_tile_records_nothing() {
        let mut table = DriverTable::new();
        assert_eq!(table.remove(TileCoord::new(0, 0)), None);
        assert!(table.events().is_empty());
    }

    #[test]
    fn events_record_the_swap_sequence() {
        let mut table = DriverTable::new();
        let tile = TileCoord::new(2, 0);
        table.probe(tile, AcceleratorKind::Mac);
        table.remove(tile);
        table.probe(tile, AcceleratorKind::Gemm);
        assert_eq!(
            table.events(),
            &[
                DriverEvent::Probed {
                    tile,
                    kind: AcceleratorKind::Mac
                },
                DriverEvent::Removed {
                    tile,
                    kind: AcceleratorKind::Mac
                },
                DriverEvent::Probed {
                    tile,
                    kind: AcceleratorKind::Gemm
                },
            ]
        );
    }
}
