//! Per-tile shard state.
//!
//! The runtime used to keep every piece of per-tile bookkeeping — the
//! active driver, the idle horizon, the health state machine, the
//! quarantine flag and the failure streak — in parallel maps inside one
//! `ReconfigManager` god object, all guarded by a single lock. This
//! module is the sharded replacement: one [`TileState`] per
//! reconfigurable tile, owning exactly the state whose consistency is
//! per-tile. Two requests to *different* tiles touch disjoint
//! `TileState`s and can proceed concurrently; only the genuinely shared
//! device resources (ICAP, configuration memory, NoC — see
//! [`crate::device`]) still serialize.
//!
//! `TileState` is pure data with no locking of its own. The deterministic
//! [`crate::manager::ReconfigManager`] owns its shards directly; the
//! OS-threaded [`crate::scheduler::Scheduler`] wraps each one in a
//! per-tile mutex (label `"tile_state"`) and is the only doorway through
//! which shard state is mutated on the concurrent path — a boundary
//! `presp-lint` enforces.

use crate::driver::DriverEvent;
use presp_accel::catalog::AcceleratorKind;
use presp_floorplan::RegionLease;
use presp_soc::config::TileCoord;

/// Configuration-memory health of one reconfigurable tile, as tracked by
/// the scrubbing machinery.
///
/// `Healthy → Scrubbing → {Healthy, Degraded, Quarantined}`: a scrub pass
/// moves the tile through `Scrubbing`; a clean readback returns it to
/// `Healthy`, repaired single-bit upsets leave it `Degraded` (the fabric
/// is correct again but took hits), and an uncorrectable upset removes it
/// from service. A successful reconfiguration rewrites every frame and
/// resets the tile to `Healthy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TileHealth {
    /// No known upsets.
    Healthy,
    /// A scrub pass is reading the tile's frames back.
    Scrubbing,
    /// Correctable upsets were detected and repaired by the last pass.
    Degraded,
    /// An uncorrectable upset (or repeated load failure) removed the tile
    /// from service; work degrades to the CPU until it is restored.
    Quarantined,
}

/// Everything the runtime tracks about one reconfigurable tile.
///
/// The fields mirror the old manager's per-tile maps one for one: the
/// driver slot (with its probe/remove event log), the virtual-time idle
/// horizon, the health state machine, the quarantine flag and the
/// consecutive-failure streak that feeds the quarantine policy.
#[derive(Debug, Clone)]
pub struct TileState {
    coord: TileCoord,
    driver: Option<AcceleratorKind>,
    driver_events: Vec<DriverEvent>,
    idle_at: u64,
    health: TileHealth,
    quarantined: bool,
    failure_streak: u32,
    /// The tile's live region lease under amorphous floorplanning;
    /// `None` on the fixed-socket path (regions disabled) or before the
    /// first load. The lease's base/kinds mirror the allocator's copy in
    /// [`crate::device::DeviceCore`] — both mutate only through the
    /// protocol functions, under the same locks.
    lease: Option<RegionLease>,
    /// Repack-moves watermark stamped when a load was refused for lack
    /// of a free span ([`crate::error::Error::RegionUnavailable`]);
    /// cleared on the next successful load, which is then counted as an
    /// oversized admit (and a repack admit when the watermark moved).
    oversized_mark: Option<u64>,
}

impl TileState {
    /// A fresh, healthy, empty shard for `coord`.
    pub fn new(coord: TileCoord) -> TileState {
        TileState {
            coord,
            driver: None,
            driver_events: Vec::new(),
            idle_at: 0,
            health: TileHealth::Healthy,
            quarantined: false,
            failure_streak: 0,
            lease: None,
            oversized_mark: None,
        }
    }

    /// The tile this shard describes.
    pub fn coord(&self) -> TileCoord {
        self.coord
    }

    /// The driver currently bound to the tile.
    pub fn active_driver(&self) -> Option<AcceleratorKind> {
        self.driver
    }

    /// Whether the tile's active driver can service an operation for
    /// `kind`.
    pub fn services(&self, kind: AcceleratorKind) -> bool {
        self.driver == Some(kind)
    }

    /// Unregisters the driver (before reconfiguration). From here until
    /// the next probe, submissions fail fast instead of touching a tile
    /// that is being rewritten.
    pub fn remove_driver(&mut self) -> Option<AcceleratorKind> {
        let removed = self.driver.take();
        if let Some(kind) = removed {
            self.driver_events.push(DriverEvent::Removed {
                tile: self.coord,
                kind,
            });
        }
        removed
    }

    /// Probes the driver for `kind` (after reconfiguration).
    pub fn probe_driver(&mut self, kind: AcceleratorKind) {
        self.driver = Some(kind);
        self.driver_events.push(DriverEvent::Probed {
            tile: self.coord,
            kind,
        });
    }

    /// The recorded driver lifecycle events, oldest first.
    pub fn driver_events(&self) -> &[DriverEvent] {
        &self.driver_events
    }

    /// Virtual time at which the tile becomes idle.
    pub fn idle_at(&self) -> u64 {
        self.idle_at
    }

    /// Advances the idle horizon to `at`.
    pub fn set_idle_at(&mut self, at: u64) {
        self.idle_at = at;
    }

    /// Configuration-memory health. Quarantine dominates whatever the
    /// scrub state machine last recorded.
    pub fn health(&self) -> TileHealth {
        if self.quarantined {
            TileHealth::Quarantined
        } else {
            self.health
        }
    }

    /// Moves the scrub state machine.
    pub fn set_health(&mut self, health: TileHealth) {
        self.health = health;
    }

    /// Whether the tile is quarantined.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    /// Quarantines the tile. Returns `true` on the transition (i.e. the
    /// tile was not already quarantined).
    pub fn quarantine(&mut self) -> bool {
        let entered = !self.quarantined;
        self.quarantined = true;
        self.health = TileHealth::Quarantined;
        entered
    }

    /// Releases the quarantine, clearing the failure streak and health
    /// history. Returns whether the tile was quarantined.
    pub fn release_quarantine(&mut self) -> bool {
        let released = self.quarantined;
        self.quarantined = false;
        self.failure_streak = 0;
        self.health = TileHealth::Healthy;
        released
    }

    /// Consecutive retry-exhausted requests on this tile.
    pub fn failure_streak(&self) -> u32 {
        self.failure_streak
    }

    /// Records one more retry-exhausted request; returns the new streak.
    pub fn record_failure(&mut self) -> u32 {
        self.failure_streak += 1;
        self.failure_streak
    }

    /// Clears the failure streak (after a successful load).
    pub fn clear_failures(&mut self) {
        self.failure_streak = 0;
    }

    /// The tile's live region lease (amorphous floorplanning only).
    pub fn lease(&self) -> Option<&RegionLease> {
        self.lease.as_ref()
    }

    /// Installs (or clears) the tile's region lease.
    pub(crate) fn set_lease(&mut self, lease: Option<RegionLease>) {
        self.lease = lease;
    }

    /// Takes the tile's region lease, leaving `None`.
    pub(crate) fn take_lease(&mut self) -> Option<RegionLease> {
        self.lease.take()
    }

    /// Stamps the oversized-rejection watermark with the device's current
    /// repack-move count.
    pub(crate) fn mark_oversized(&mut self, repack_moves: u64) {
        self.oversized_mark = Some(repack_moves);
    }

    /// Takes the oversized watermark (cleared on a successful load).
    pub(crate) fn take_oversized_mark(&mut self) -> Option<u64> {
        self.oversized_mark.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_swap_records_events_in_order() {
        let mut t = TileState::new(TileCoord::new(1, 0));
        assert_eq!(t.active_driver(), None);
        t.probe_driver(AcceleratorKind::Mac);
        assert!(t.services(AcceleratorKind::Mac));
        assert!(!t.services(AcceleratorKind::Sort));
        assert_eq!(t.remove_driver(), Some(AcceleratorKind::Mac));
        t.probe_driver(AcceleratorKind::Sort);
        assert_eq!(t.driver_events().len(), 3);
        // Removing an empty slot records nothing.
        let mut empty = TileState::new(TileCoord::new(2, 0));
        assert_eq!(empty.remove_driver(), None);
        assert!(empty.driver_events().is_empty());
    }

    #[test]
    fn quarantine_dominates_health_and_release_resets() {
        let mut t = TileState::new(TileCoord::new(1, 0));
        t.set_health(TileHealth::Degraded);
        assert_eq!(t.health(), TileHealth::Degraded);
        assert!(t.quarantine());
        assert!(!t.quarantine(), "second entry is not a transition");
        assert_eq!(t.health(), TileHealth::Quarantined);
        t.record_failure();
        assert!(t.release_quarantine());
        assert!(!t.release_quarantine());
        assert_eq!(t.health(), TileHealth::Healthy);
        assert_eq!(t.failure_streak(), 0);
    }

    #[test]
    fn failure_streak_counts_and_clears() {
        let mut t = TileState::new(TileCoord::new(1, 0));
        assert_eq!(t.record_failure(), 1);
        assert_eq!(t.record_failure(), 2);
        t.clear_failures();
        assert_eq!(t.failure_streak(), 0);
    }
}
