//! The reconfiguration manager.
//!
//! Implements the protocol of Section V on virtual time: a reconfiguration
//! request (1) waits for the accelerator in the target tile to finish, (2)
//! locks the device, (3) unregisters the outgoing driver, (4) decouples the
//! tile, (5) triggers the DFXC, (6) re-couples on the completion interrupt,
//! (7) probes the incoming driver and unlocks. Work submitted through a
//! stale driver is rejected.
//!
//! Failures along the way (a corrupted bitstream failing its CRC check, a
//! stale registry read) are handled by a [`RecoveryPolicy`]: bounded
//! retries with exponential backoff in virtual time, per-tile quarantine
//! after repeated exhaustion, and graceful degradation to the CPU software
//! path so application-level work still completes. A tile whose load
//! failed is always left decoupled — a partially-written wrapper must
//! never observe NoC traffic.

use crate::driver::DriverTable;
use crate::error::Error;
use crate::registry::BitstreamRegistry;
use presp_accel::catalog::AcceleratorKind;
use presp_accel::AccelOp;
use presp_events::trace::ClockDomain;
use presp_events::{backoff, Loc, TraceEvent};
use presp_fpga::fault::FaultPlan;
use presp_soc::config::TileCoord;
use presp_soc::sim::{csr, AccelRun, ReconfigRun, ScrubReport, Soc};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The tile's location as a trace record coordinate.
fn loc(coord: TileCoord) -> Loc {
    Loc::new(coord.row as u64, coord.col as u64)
}

/// How the manager responds to reconfiguration failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Retries allowed after the first failed attempt.
    pub max_retries: u32,
    /// Backoff before the first retry, in virtual cycles.
    pub backoff_cycles: u64,
    /// Multiplier applied to the backoff on each further retry.
    pub backoff_multiplier: u64,
    /// Consecutive retry-exhausted requests on one tile before it is
    /// quarantined.
    pub quarantine_after: u32,
    /// Whether [`ReconfigManager::run_with_fallback_at`] may degrade to
    /// the CPU software path when the accelerator path is unavailable.
    pub cpu_fallback: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            max_retries: 3,
            backoff_cycles: 64,
            backoff_multiplier: 2,
            quarantine_after: 2,
            cpu_fallback: true,
        }
    }
}

/// Configuration-memory health of one reconfigurable tile, as tracked by
/// the scrubbing machinery.
///
/// `Healthy → Scrubbing → {Healthy, Degraded, Quarantined}`: a scrub pass
/// moves the tile through `Scrubbing`; a clean readback returns it to
/// `Healthy`, repaired single-bit upsets leave it `Degraded` (the fabric
/// is correct again but took hits), and an uncorrectable upset removes it
/// from service. A successful reconfiguration rewrites every frame and
/// resets the tile to `Healthy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TileHealth {
    /// No known upsets.
    Healthy,
    /// A scrub pass is reading the tile's frames back.
    Scrubbing,
    /// Correctable upsets were detected and repaired by the last pass.
    Degraded,
    /// An uncorrectable upset (or repeated load failure) removed the tile
    /// from service; work degrades to the CPU until it is restored.
    Quarantined,
}

/// Which path actually executed an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPath {
    /// The accelerator in the requested tile.
    Accelerator,
    /// The CPU software implementation (graceful degradation).
    CpuFallback,
}

/// Aggregate manager statistics.
///
/// The reconfiguration counters satisfy the bookkeeping invariant checked
/// by [`ManagerStats::consistent`]: every request is accounted exactly
/// once as a performed reconfiguration, a cache hit, a retry-exhausted
/// failure or a rejection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ManagerStats {
    /// Reconfiguration requests received (including ones that failed).
    pub reconfig_requests: u64,
    /// Reconfigurations performed (cache hits excluded).
    pub reconfigurations: u64,
    /// Requests satisfied without reconfiguring (accelerator already
    /// loaded).
    pub cache_hits: u64,
    /// Requests that failed every attempt the recovery policy allowed.
    pub retries_exhausted: u64,
    /// Requests rejected without retry (quarantined tile, unregistered
    /// bitstream, protocol violations).
    pub rejected: u64,
    /// Individual retry attempts performed across all requests.
    pub retries: u64,
    /// Tiles quarantined.
    pub quarantines: u64,
    /// Total cycles spent reconfiguring.
    pub reconfig_cycles: u64,
    /// Accelerator invocations dispatched.
    pub runs: u64,
    /// Operations that degraded to the CPU software path.
    pub fallback_runs: u64,
    /// Scrub passes performed (outside the request-accounting invariant:
    /// scrubs are maintenance, not reconfiguration requests).
    pub scrub_passes: u64,
    /// Frames repaired by scrub passes.
    pub frames_repaired: u64,
    /// Quarantines triggered by uncorrectable upsets (also counted in
    /// [`ManagerStats::quarantines`]).
    pub scrub_quarantines: u64,
}

impl ManagerStats {
    /// Checks the request-accounting invariant: no request is lost and
    /// none is counted twice.
    pub fn consistent(&self) -> bool {
        self.reconfig_requests
            == self.reconfigurations + self.cache_hits + self.retries_exhausted + self.rejected
    }
}

/// The deterministic (virtual-time) reconfiguration manager.
///
/// See the crate-level example for usage; [`crate::threaded`] wraps the
/// same protocol in an OS-thread workqueue.
#[derive(Debug)]
pub struct ReconfigManager {
    soc: Soc,
    registry: BitstreamRegistry,
    drivers: DriverTable,
    tile_time: BTreeMap<TileCoord, u64>,
    stats: ManagerStats,
    policy: RecoveryPolicy,
    quarantined: BTreeSet<TileCoord>,
    failure_streak: BTreeMap<TileCoord, u32>,
    health: BTreeMap<TileCoord, TileHealth>,
}

impl ReconfigManager {
    /// Creates a manager over a booted SoC and a loaded registry, with the
    /// default [`RecoveryPolicy`].
    pub fn new(soc: Soc, registry: BitstreamRegistry) -> ReconfigManager {
        ReconfigManager::with_policy(soc, registry, RecoveryPolicy::default())
    }

    /// Creates a manager with an explicit recovery policy.
    pub fn with_policy(
        soc: Soc,
        registry: BitstreamRegistry,
        policy: RecoveryPolicy,
    ) -> ReconfigManager {
        ReconfigManager {
            soc,
            registry,
            drivers: DriverTable::new(),
            tile_time: BTreeMap::new(),
            stats: ManagerStats::default(),
            policy,
            quarantined: BTreeSet::new(),
            failure_streak: BTreeMap::new(),
            health: BTreeMap::new(),
        }
    }

    /// The active recovery policy.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// Replaces the recovery policy.
    pub fn set_policy(&mut self, policy: RecoveryPolicy) {
        self.policy = policy;
    }

    /// Whether `tile` is quarantined.
    pub fn is_quarantined(&self, tile: TileCoord) -> bool {
        self.quarantined.contains(&tile)
    }

    /// All quarantined tiles, in coordinate order.
    pub fn quarantined_tiles(&self) -> Vec<TileCoord> {
        self.quarantined.iter().copied().collect()
    }

    /// Configuration-memory health of `tile`.
    pub fn tile_health(&self, tile: TileCoord) -> TileHealth {
        if self.quarantined.contains(&tile) {
            return TileHealth::Quarantined;
        }
        self.health
            .get(&tile)
            .copied()
            .unwrap_or(TileHealth::Healthy)
    }

    /// Reads back `tile`'s configuration frames through the ICAP and
    /// repairs what SECDED can, starting no earlier than `at`.
    ///
    /// The tile transitions `Scrubbing →` [`TileHealth::Healthy`] (clean
    /// pass), [`TileHealth::Degraded`] (correctable upsets repaired) or
    /// [`TileHealth::Quarantined`] (an uncorrectable upset: the driver is
    /// unloaded and requests degrade to the CPU until the tile's golden
    /// image is restored and it is released).
    ///
    /// # Errors
    ///
    /// Returns [`Error::TileQuarantined`] for already-quarantined tiles,
    /// plus SoC-level frame errors.
    pub fn scrub_tile_at(&mut self, tile: TileCoord, at: u64) -> Result<ScrubReport, Error> {
        if self.quarantined.contains(&tile) {
            return Err(Error::TileQuarantined { tile });
        }
        let region = self.soc.tile_region(tile);
        self.health.insert(tile, TileHealth::Scrubbing);
        let report = match self.soc.scrub_frames_at(&region, at) {
            Ok(report) => report,
            Err(e) => {
                self.health.insert(tile, TileHealth::Healthy);
                return Err(e.into());
            }
        };
        self.stats.scrub_passes += 1;
        self.stats.frames_repaired += report.corrected.len() as u64;
        if !report.uncorrectable.is_empty() {
            // An uncorrectable upset: the fabric cannot be trusted, so the
            // tile leaves service exactly like a retry-exhausted tile — the
            // driver is unloaded and further requests degrade to the CPU.
            self.drivers.remove(tile);
            self.health.insert(tile, TileHealth::Quarantined);
            if self.quarantined.insert(tile) {
                self.stats.quarantines += 1;
                self.stats.scrub_quarantines += 1;
                let now = self.soc.horizon();
                self.soc
                    .tracer_mut()
                    .instant(ClockDomain::SocCycles, now, || TraceEvent::Quarantine {
                        tile: loc(tile),
                        entered: true,
                    });
            }
        } else if report.corrected.is_empty() {
            self.health.insert(tile, TileHealth::Healthy);
        } else {
            self.health.insert(tile, TileHealth::Degraded);
        }
        Ok(report)
    }

    /// Scrubs every tile that has been loaded at least once, in coordinate
    /// order, starting no earlier than `at`. Quarantined tiles are
    /// skipped. Returns the per-tile reports.
    ///
    /// # Errors
    ///
    /// Propagates SoC-level frame errors.
    pub fn scrub_all_at(&mut self, at: u64) -> Result<Vec<(TileCoord, ScrubReport)>, Error> {
        let mut tiles: Vec<TileCoord> = self
            .soc
            .config()
            .reconfigurable_tiles()
            .into_iter()
            .filter(|t| !self.quarantined.contains(t) && !self.soc.tile_region(*t).is_empty())
            .collect();
        tiles.sort_unstable();
        let mut reports = Vec::with_capacity(tiles.len());
        for tile in tiles {
            let report = self.scrub_tile_at(tile, at)?;
            reports.push((tile, report));
        }
        Ok(reports)
    }

    /// Restores `tile`'s region bit-for-bit from its golden (post-load)
    /// frame image — the recovery path for uncorrectable upsets. Returns
    /// the number of frames rewritten. The caller still re-registers the
    /// driver via a reconfiguration request (or releases the quarantine).
    ///
    /// # Errors
    ///
    /// Propagates the SoC error when no golden image exists.
    pub fn restore_golden(&mut self, tile: TileCoord) -> Result<usize, Error> {
        let frames = self.soc.restore_golden(tile)?;
        self.health.insert(tile, TileHealth::Healthy);
        Ok(frames)
    }

    /// Releases `tile` from quarantine (e.g. after operator intervention),
    /// clearing its failure streak. Returns whether it was quarantined.
    pub fn release_quarantine(&mut self, tile: TileCoord) -> bool {
        self.failure_streak.remove(&tile);
        self.health.remove(&tile);
        let released = self.quarantined.remove(&tile);
        if released {
            let now = self.soc.horizon();
            self.soc
                .tracer_mut()
                .instant(ClockDomain::SocCycles, now, || TraceEvent::Quarantine {
                    tile: loc(tile),
                    entered: false,
                });
        }
        released
    }

    /// The underlying SoC (for inspection).
    pub fn soc(&self) -> &Soc {
        &self.soc
    }

    /// Mutable access to the underlying SoC (e.g. to arm a fault plan).
    pub fn soc_mut(&mut self) -> &mut Soc {
        &mut self.soc
    }

    /// Consumes the manager, returning the SoC (e.g. for energy reports).
    pub fn into_soc(self) -> Soc {
        self.soc
    }

    /// Manager statistics.
    pub fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// The driver table (for inspection).
    pub fn drivers(&self) -> &DriverTable {
        &self.drivers
    }

    /// Virtual time at which `tile` becomes idle.
    pub fn tile_idle_at(&self, tile: TileCoord) -> u64 {
        self.tile_time.get(&tile).copied().unwrap_or(0)
    }

    /// Latest completion across all tiles (the application makespan).
    pub fn makespan(&self) -> u64 {
        self.soc.horizon()
    }

    /// Ensures `kind` is loaded in `tile`, reconfiguring if needed, with the
    /// request arriving at cycle `at`.
    ///
    /// Returns the reconfiguration timing, or `None` when the accelerator
    /// was already loaded (driver cache hit).
    ///
    /// Transient failures (a corrupted stream failing the ICAP's CRC
    /// check, a stale registry read) are retried per the
    /// [`RecoveryPolicy`], with exponential backoff in virtual time; the
    /// tile stays decoupled between attempts so the partially-written
    /// wrapper never observes NoC traffic. When every allowed attempt
    /// fails the request ends with [`Error::RetriesExhausted`], the tile
    /// is left decoupled, and repeated exhaustion quarantines it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TileQuarantined`] for quarantined tiles,
    /// [`Error::BitstreamNotRegistered`] for unknown pairs,
    /// [`Error::CorruptBitstream`] when the stored stream fails its
    /// integrity re-check, [`Error::RetriesExhausted`] when recovery gives
    /// up, and SoC errors from the decouple/reconfigure sequence.
    pub fn request_reconfiguration_at(
        &mut self,
        tile: TileCoord,
        kind: AcceleratorKind,
        at: u64,
    ) -> Result<Option<ReconfigRun>, Error> {
        self.stats.reconfig_requests += 1;
        if self.quarantined.contains(&tile) {
            self.stats.rejected += 1;
            return Err(Error::TileQuarantined { tile });
        }
        if self.drivers.services(tile, kind) {
            self.stats.cache_hits += 1;
            self.soc
                .tracer_mut()
                .instant(ClockDomain::SocCycles, at, || {
                    TraceEvent::BitstreamCacheHit {
                        tile: loc(tile),
                        kind: kind.name(),
                    }
                });
            return Ok(None);
        }
        // A pair that was never registered — or whose stored stream fails
        // its integrity re-check — is a permanent error; transient
        // staleness is injected per attempt below.
        if let Err(e) = self.registry.lookup(tile, kind) {
            self.stats.rejected += 1;
            return Err(e);
        }
        // Wait for the accelerator in the tile to complete its execution.
        let idle = at.max(self.tile_idle_at(tile));
        // Unregister the outgoing driver: from here until probe, other
        // threads' submissions fail fast instead of touching a tile that is
        // being rewritten.
        self.drivers.remove(tile);
        let mut decoupled_at: Option<u64> = None;
        let mut when = idle;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match self.attempt_load(tile, kind, when, &mut decoupled_at) {
                Ok(reconf) => {
                    let coupled = match self.soc.csr_write_at(tile, csr::DECOUPLE, 0, reconf.end) {
                        Ok(t) => t,
                        Err(e) => {
                            self.stats.rejected += 1;
                            return Err(e.into());
                        }
                    };
                    self.soc.tracer_mut().emit(
                        ClockDomain::SocCycles,
                        reconf.start,
                        coupled - reconf.start,
                        || TraceEvent::ReconfigAttempt {
                            tile: loc(tile),
                            kind: kind.name(),
                            attempt: u64::from(attempts),
                            ok: true,
                        },
                    );
                    self.drivers.probe(tile, kind);
                    self.tile_time.insert(tile, coupled);
                    self.failure_streak.remove(&tile);
                    // Every frame of the region was rewritten (and its
                    // golden image refreshed): the tile is healthy again.
                    self.health.insert(tile, TileHealth::Healthy);
                    self.stats.reconfigurations += 1;
                    self.stats.reconfig_cycles += coupled - idle;
                    return Ok(Some(ReconfigRun {
                        end: coupled,
                        ..reconf
                    }));
                }
                Err(e) if Self::is_transient(&e) => {
                    let failed_at = self.soc.horizon().max(when);
                    self.soc.tracer_mut().emit(
                        ClockDomain::SocCycles,
                        when,
                        failed_at - when,
                        || TraceEvent::ReconfigAttempt {
                            tile: loc(tile),
                            kind: kind.name(),
                            attempt: u64::from(attempts),
                            ok: false,
                        },
                    );
                    if attempts > self.policy.max_retries {
                        return self.give_up(tile, kind, attempts);
                    }
                    self.stats.retries += 1;
                    let backoff = backoff::exponential(
                        self.policy.backoff_cycles,
                        self.policy.backoff_multiplier,
                        attempts,
                    );
                    self.soc
                        .tracer_mut()
                        .emit(ClockDomain::SocCycles, failed_at, backoff, || {
                            TraceEvent::RetryBackoff {
                                tile: loc(tile),
                                attempt: u64::from(attempts),
                                cycles: backoff,
                            }
                        });
                    when = failed_at.saturating_add(backoff);
                }
                Err(e) => {
                    self.stats.rejected += 1;
                    return Err(e);
                }
            }
        }
    }

    /// One load attempt: (re-)read the registry, decouple if this is the
    /// first attempt, and trigger the DFXC.
    fn attempt_load(
        &mut self,
        tile: TileCoord,
        kind: AcceleratorKind,
        when: u64,
        decoupled_at: &mut Option<u64>,
    ) -> Result<ReconfigRun, Error> {
        // Fault hook: a stale registry read fails this attempt at the
        // software level; the retry re-reads the registry.
        if self
            .soc
            .fault_plan_mut()
            .is_some_and(FaultPlan::next_registry_miss)
        {
            return Err(Error::BitstreamNotRegistered { tile, kind });
        }
        let bitstream = self.registry.lookup(tile, kind)?.clone();
        let start = match *decoupled_at {
            // Still decoupled from the previous failed attempt.
            Some(t) => t.max(when),
            None => {
                let t = self.soc.csr_write_at(tile, csr::DECOUPLE, 1, when)?;
                *decoupled_at = Some(t);
                t
            }
        };
        Ok(self.soc.reconfigure_at(tile, kind, &bitstream, start)?)
    }

    /// Whether a failed attempt is worth retrying: data corruption caught
    /// in flight and stale software state are; protocol violations and
    /// wrong-device bitstreams are not.
    fn is_transient(e: &Error) -> bool {
        match e {
            Error::BitstreamNotRegistered { .. } => true,
            Error::Soc(presp_soc::Error::Fpga(fe)) => matches!(
                fe,
                presp_fpga::Error::CrcMismatch { .. }
                    | presp_fpga::Error::MalformedBitstream { .. }
            ),
            _ => false,
        }
    }

    /// Ends a request whose every attempt failed: the tile stays decoupled
    /// (isolated), its failure streak grows, and repeated exhaustion
    /// quarantines it.
    fn give_up(
        &mut self,
        tile: TileCoord,
        kind: AcceleratorKind,
        attempts: u32,
    ) -> Result<Option<ReconfigRun>, Error> {
        self.stats.retries_exhausted += 1;
        let now = self.soc.horizon();
        self.tile_time.insert(tile, now);
        let streak = self.failure_streak.entry(tile).or_insert(0);
        *streak += 1;
        if *streak >= self.policy.quarantine_after && self.quarantined.insert(tile) {
            self.stats.quarantines += 1;
            self.soc
                .tracer_mut()
                .instant(ClockDomain::SocCycles, now, || TraceEvent::Quarantine {
                    tile: loc(tile),
                    entered: true,
                });
        }
        Err(Error::RetriesExhausted {
            tile,
            kind,
            attempts,
        })
    }

    /// [`Self::request_reconfiguration_at`] at the tile's own idle time.
    ///
    /// # Errors
    ///
    /// See [`Self::request_reconfiguration_at`].
    pub fn request_reconfiguration(
        &mut self,
        tile: TileCoord,
        kind: AcceleratorKind,
    ) -> Result<Option<ReconfigRun>, Error> {
        let at = self.tile_idle_at(tile);
        self.request_reconfiguration_at(tile, kind, at)
    }

    /// Runs `op` on `tile`, with the request arriving at cycle `at`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoDriver`] when the tile's active driver does not
    /// service the operation (e.g. mid-reconfiguration), plus SoC errors.
    pub fn run_at(&mut self, tile: TileCoord, op: &AccelOp, at: u64) -> Result<AccelRun, Error> {
        let active = self.drivers.active(tile).ok_or(Error::NoDriver {
            tile,
            needed: op.kind(),
        })?;
        if !op.runs_on(active) {
            return Err(Error::NoDriver {
                tile,
                needed: op.kind(),
            });
        }
        let start = at.max(self.tile_idle_at(tile));
        let run = self.soc.run_accelerator_at(tile, op, start)?;
        self.tile_time.insert(tile, run.end);
        self.stats.runs += 1;
        Ok(run)
    }

    /// Runs `op` on `tile` at the tile's own idle time.
    ///
    /// # Errors
    ///
    /// See [`Self::run_at`].
    pub fn run(&mut self, tile: TileCoord, op: &AccelOp) -> Result<AccelRun, Error> {
        let at = self.tile_idle_at(tile);
        self.run_at(tile, op, at)
    }

    /// Runs `op` in software on the CPU tile at cycle `at` (fallback for
    /// kernels without a tile allocation).
    ///
    /// # Errors
    ///
    /// Propagates SoC errors.
    pub fn run_on_cpu_at(&mut self, op: &AccelOp, at: u64) -> Result<AccelRun, Error> {
        Ok(self.soc.run_on_cpu_at(op, at)?)
    }

    /// Ensures `kind` is loaded in `tile` and runs `op` there, degrading to
    /// the CPU software path when the accelerator path is unavailable
    /// (quarantined tile, exhausted retries, missing bitstream) and the
    /// policy allows it — the application-level operation completes either
    /// way.
    ///
    /// # Errors
    ///
    /// Returns non-degradable errors, and degradable ones when
    /// [`RecoveryPolicy::cpu_fallback`] is disabled.
    pub fn run_with_fallback_at(
        &mut self,
        tile: TileCoord,
        kind: AcceleratorKind,
        op: &AccelOp,
        at: u64,
    ) -> Result<(AccelRun, ExecPath), Error> {
        let attempted = self
            .request_reconfiguration_at(tile, kind, at)
            .map(|_| ())
            .and_then(|()| self.run_at(tile, op, at));
        match attempted {
            Ok(run) => Ok((run, ExecPath::Accelerator)),
            Err(e) if e.is_degradable() && self.policy.cpu_fallback => {
                // Start the software run after the failed recovery
                // concluded on this tile's timeline.
                let start = at.max(self.tile_idle_at(tile));
                self.soc
                    .tracer_mut()
                    .instant(ClockDomain::SocCycles, start, || TraceEvent::CpuFallback {
                        kind: kind.name(),
                    });
                let run = self.soc.run_on_cpu_at(op, start)?;
                self.stats.fallback_runs += 1;
                Ok((run, ExecPath::CpuFallback))
            }
            Err(e) => Err(e),
        }
    }

    /// [`Self::run_with_fallback_at`] at the tile's own idle time.
    ///
    /// # Errors
    ///
    /// See [`Self::run_with_fallback_at`].
    pub fn run_with_fallback(
        &mut self,
        tile: TileCoord,
        kind: AcceleratorKind,
        op: &AccelOp,
    ) -> Result<(AccelRun, ExecPath), Error> {
        let at = self.tile_idle_at(tile);
        self.run_with_fallback_at(tile, kind, op, at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presp_accel::AccelValue;
    use presp_fpga::bitstream::{Bitstream, BitstreamBuilder, BitstreamKind};
    use presp_fpga::frame::FrameAddress;
    use presp_soc::config::SocConfig;

    fn bitstream(soc: &Soc, col: u32, frames: u32) -> Bitstream {
        let device = soc.part().device();
        let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
        let words = device.part().family().frame_words();
        for minor in 0..frames {
            b.add_frame(FrameAddress::new(0, col, minor), vec![col + minor; words])
                .unwrap();
        }
        b.build(true)
    }

    fn manager(n_tiles: usize) -> (ReconfigManager, Vec<TileCoord>) {
        let cfg = SocConfig::grid_3x3_reconf("mgr", n_tiles).unwrap();
        let soc = Soc::new(&cfg).unwrap();
        let tiles = cfg.reconfigurable_tiles();
        let mut registry = BitstreamRegistry::new();
        for (i, &tile) in tiles.iter().enumerate() {
            registry
                .register(tile, AcceleratorKind::Mac, bitstream(&soc, 2 + i as u32, 4))
                .unwrap();
            registry
                .register(
                    tile,
                    AcceleratorKind::Sort,
                    bitstream(&soc, 20 + i as u32, 8),
                )
                .unwrap();
        }
        (ReconfigManager::new(soc, registry), tiles)
    }

    #[test]
    fn reconfigure_then_run() {
        let (mut mgr, tiles) = manager(1);
        let r = mgr
            .request_reconfiguration(tiles[0], AcceleratorKind::Mac)
            .unwrap();
        assert!(r.is_some());
        let run = mgr
            .run(
                tiles[0],
                &AccelOp::Mac {
                    a: vec![5.0],
                    b: vec![5.0],
                },
            )
            .unwrap();
        assert_eq!(run.value, AccelValue::Scalar(25.0));
        assert_eq!(mgr.stats().reconfigurations, 1);
        assert_eq!(mgr.stats().runs, 1);
    }

    #[test]
    fn second_request_is_a_cache_hit() {
        let (mut mgr, tiles) = manager(1);
        mgr.request_reconfiguration(tiles[0], AcceleratorKind::Mac)
            .unwrap();
        let again = mgr
            .request_reconfiguration(tiles[0], AcceleratorKind::Mac)
            .unwrap();
        assert!(again.is_none());
        assert_eq!(mgr.stats().cache_hits, 1);
        assert_eq!(mgr.stats().reconfigurations, 1);
    }

    #[test]
    fn run_without_driver_fails() {
        let (mut mgr, tiles) = manager(1);
        let err = mgr.run(tiles[0], &AccelOp::Sort { data: vec![1.0] });
        assert!(matches!(err, Err(Error::NoDriver { .. })));
    }

    #[test]
    fn run_with_wrong_driver_fails() {
        let (mut mgr, tiles) = manager(1);
        mgr.request_reconfiguration(tiles[0], AcceleratorKind::Mac)
            .unwrap();
        let err = mgr.run(tiles[0], &AccelOp::Sort { data: vec![1.0] });
        assert!(matches!(err, Err(Error::NoDriver { .. })));
    }

    #[test]
    fn unregistered_bitstream_is_reported() {
        let (mut mgr, tiles) = manager(1);
        let err = mgr.request_reconfiguration(tiles[0], AcceleratorKind::Gemm);
        assert!(matches!(err, Err(Error::BitstreamNotRegistered { .. })));
    }

    #[test]
    fn swap_sequence_updates_drivers_and_time() {
        let (mut mgr, tiles) = manager(1);
        let tile = tiles[0];
        mgr.request_reconfiguration(tile, AcceleratorKind::Mac)
            .unwrap();
        let t1 = mgr.tile_idle_at(tile);
        mgr.run(
            tile,
            &AccelOp::Mac {
                a: vec![1.0; 256],
                b: vec![1.0; 256],
            },
        )
        .unwrap();
        let t2 = mgr.tile_idle_at(tile);
        assert!(t2 > t1);
        // Swap to sort: waits for the run to complete first.
        let swap = mgr
            .request_reconfiguration(tile, AcceleratorKind::Sort)
            .unwrap()
            .unwrap();
        assert!(swap.start >= t2);
        assert!(mgr.drivers().services(tile, AcceleratorKind::Sort));
        let sorted = mgr
            .run(
                tile,
                &AccelOp::Sort {
                    data: vec![3.0, 1.0],
                },
            )
            .unwrap();
        assert_eq!(sorted.value, AccelValue::Vector(vec![1.0, 3.0]));
    }

    #[test]
    fn tiles_reconfigure_independently() {
        let (mut mgr, tiles) = manager(2);
        let r0 = mgr
            .request_reconfiguration_at(tiles[0], AcceleratorKind::Mac, 0)
            .unwrap()
            .unwrap();
        let r1 = mgr
            .request_reconfiguration_at(tiles[1], AcceleratorKind::Sort, 0)
            .unwrap()
            .unwrap();
        // The shared ICAP serializes the two loads.
        assert!(r1.end > r0.end || r0.end > r1.end);
        assert!(mgr.drivers().services(tiles[0], AcceleratorKind::Mac));
        assert!(mgr.drivers().services(tiles[1], AcceleratorKind::Sort));
        assert_eq!(mgr.stats().reconfigurations, 2);
    }

    #[test]
    fn scrub_state_machine_tracks_repairs() {
        use presp_fpga::fault::FaultConfig;
        let (mut mgr, tiles) = manager(1);
        let tile = tiles[0];
        assert_eq!(mgr.tile_health(tile), TileHealth::Healthy);
        mgr.request_reconfiguration(tile, AcceleratorKind::Mac)
            .unwrap();
        // Clean pass: back to Healthy.
        let report = mgr.scrub_tile_at(tile, mgr.makespan()).unwrap();
        assert!(report.is_clean());
        assert_eq!(mgr.tile_health(tile), TileHealth::Healthy);
        // Single-bit upset: repaired, tile marked Degraded.
        let mut plan = FaultPlan::new(5, FaultConfig::uniform(0.0));
        plan.force_seu(mgr.makespan() + 1, false);
        mgr.soc_mut().set_fault_plan(Some(plan));
        let report = mgr.scrub_tile_at(tile, mgr.makespan() + 10).unwrap();
        assert_eq!(report.corrected.len(), 1);
        assert_eq!(mgr.tile_health(tile), TileHealth::Degraded);
        assert_eq!(mgr.stats().scrub_passes, 2);
        assert_eq!(mgr.stats().frames_repaired, 1);
        // A successful reconfiguration rewrites the region: Healthy again.
        mgr.request_reconfiguration(tile, AcceleratorKind::Sort)
            .unwrap();
        assert_eq!(mgr.tile_health(tile), TileHealth::Healthy);
        assert!(mgr.stats().consistent());
    }

    #[test]
    fn uncorrectable_upset_quarantines_and_golden_restore_recovers() {
        use presp_fpga::fault::FaultConfig;
        let (mut mgr, tiles) = manager(1);
        let tile = tiles[0];
        mgr.request_reconfiguration(tile, AcceleratorKind::Mac)
            .unwrap();
        let mut plan = FaultPlan::new(6, FaultConfig::uniform(0.0));
        plan.force_seu(mgr.makespan() + 1, true);
        mgr.soc_mut().set_fault_plan(Some(plan));
        let report = mgr.scrub_tile_at(tile, mgr.makespan() + 10).unwrap();
        assert_eq!(report.uncorrectable.len(), 1);
        assert_eq!(mgr.tile_health(tile), TileHealth::Quarantined);
        assert!(mgr.is_quarantined(tile));
        assert_eq!(mgr.stats().scrub_quarantines, 1);
        // Work still completes — degraded to the CPU software path.
        let (run, path) = mgr
            .run_with_fallback(
                tile,
                AcceleratorKind::Mac,
                &AccelOp::Mac {
                    a: vec![2.0],
                    b: vec![3.0],
                },
            )
            .unwrap();
        assert_eq!(path, ExecPath::CpuFallback);
        assert_eq!(run.value, AccelValue::Scalar(6.0));
        // Recovery: golden restore + quarantine release → clean scrubs.
        assert!(mgr.restore_golden(tile).unwrap() > 0);
        assert!(mgr.release_quarantine(tile));
        let report = mgr.scrub_tile_at(tile, mgr.makespan()).unwrap();
        assert!(report.is_clean());
        assert_eq!(mgr.tile_health(tile), TileHealth::Healthy);
        assert!(mgr.stats().consistent());
    }

    #[test]
    fn corrupt_registry_entry_is_rejected_at_request_time() {
        let cfg = SocConfig::grid_3x3_reconf("corrupt", 1).unwrap();
        let soc = Soc::new(&cfg).unwrap();
        let tile = cfg.reconfigurable_tiles()[0];
        let good = bitstream(&soc, 2, 4);
        let mut words = good.words().to_vec();
        let idx = words.len() / 2;
        words[idx] ^= 1;
        let mut registry = BitstreamRegistry::new();
        registry
            .register(tile, AcceleratorKind::Mac, good.with_words(words))
            .unwrap();
        let mut mgr = ReconfigManager::new(soc, registry);
        let err = mgr.request_reconfiguration(tile, AcceleratorKind::Mac);
        assert!(matches!(err, Err(Error::CorruptBitstream { .. })));
        assert_eq!(mgr.stats().rejected, 1);
        assert!(mgr.stats().consistent());
    }

    #[test]
    fn cpu_fallback_runs_without_reconfiguration() {
        let (mut mgr, _) = manager(1);
        let run = mgr
            .run_on_cpu_at(
                &AccelOp::Sort {
                    data: vec![2.0, 1.0],
                },
                0,
            )
            .unwrap();
        assert_eq!(run.value, AccelValue::Vector(vec![1.0, 2.0]));
        assert_eq!(mgr.stats().reconfigurations, 0);
    }
}
