//! The reconfiguration manager.
//!
//! Implements the protocol of Section V on virtual time: a reconfiguration
//! request (1) waits for the accelerator in the target tile to finish, (2)
//! locks the device, (3) unregisters the outgoing driver, (4) decouples the
//! tile, (5) triggers the DFXC, (6) re-couples on the completion interrupt,
//! (7) probes the incoming driver and unlocks. Work submitted through a
//! stale driver is rejected.
//!
//! Failures along the way (a corrupted bitstream failing its CRC check, a
//! stale registry read) are handled by a [`RecoveryPolicy`]: bounded
//! retries with exponential backoff in virtual time, per-tile quarantine
//! after repeated exhaustion, and graceful degradation to the CPU software
//! path so application-level work still completes. A tile whose load
//! failed is always left decoupled — a partially-written wrapper must
//! never observe NoC traffic.
//!
//! Structurally the manager is a thin deterministic facade over the
//! sharded runtime: per-tile bookkeeping lives in [`crate::tile`] shards,
//! the genuinely shared device resources in a [`crate::device::DeviceCore`],
//! and the protocol itself in `protocol` functions shared verbatim with
//! the OS-threaded [`crate::scheduler::Scheduler`]. The facade calls them
//! single-threaded, in submission order, with the verified-bitstream
//! cache disabled — which is what makes its trace log a pure function of
//! the seeds.

use crate::cache::{BitstreamCache, CacheStats};
use crate::device::DeviceCore;
use crate::driver::DriverEvent;
use crate::error::Error;
use crate::protocol;
use crate::registry::BitstreamRegistry;
use crate::tile::TileState;
use presp_accel::catalog::AcceleratorKind;
use presp_accel::AccelOp;
use presp_floorplan::{FitPolicy, FragmentationStats, RegionLease};
use presp_soc::config::TileCoord;
use presp_soc::sim::{AccelRun, ReconfigRun, ScrubReport, Soc};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

pub use crate::tile::TileHealth;

/// What the admission controller does when a bounded per-tile queue is
/// already at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OverloadPolicy {
    /// Refuse the incoming request with [`Error::Overloaded`]; the queued
    /// backlog is untouched.
    #[default]
    RejectNew,
    /// Shed the oldest queued request (answering its waiters with
    /// [`Error::Overloaded`]) and admit the new one — freshness beats
    /// fairness.
    ShedOldest,
}

/// How the manager responds to reconfiguration failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Retries allowed after the first failed attempt.
    pub max_retries: u32,
    /// Backoff before the first retry, in virtual cycles.
    pub backoff_cycles: u64,
    /// Multiplier applied to the backoff on each further retry.
    pub backoff_multiplier: u64,
    /// Consecutive retry-exhausted requests on one tile before it is
    /// quarantined.
    pub quarantine_after: u32,
    /// Whether [`ReconfigManager::run_with_fallback_at`] may degrade to
    /// the CPU software path when the accelerator path is unavailable.
    pub cpu_fallback: bool,
    /// Per-request deadline in virtual cycles, measured from admission to
    /// commit; 0 disables deadline accounting. A reconfiguration past its
    /// deadline is cancelled with [`Error::DeadlineExceeded`]; an execute
    /// past its deadline skips the accelerator and degrades to the CPU
    /// path. Only the threaded scheduler enforces deadlines.
    #[serde(default)]
    pub deadline_cycles: u64,
    /// Bound on each per-tile queue; 0 means unbounded (the pre-admission
    /// behavior). Only the threaded scheduler enforces the bound.
    #[serde(default)]
    pub queue_capacity: u64,
    /// What to do with a request that would overflow a bounded queue.
    #[serde(default)]
    pub overload: OverloadPolicy,
    /// Per-tile circuit breaker: refuse admission to quarantined tiles at
    /// the queue door instead of enqueueing work that will fail at commit.
    #[serde(default)]
    pub breaker: bool,
    /// Whether the threaded scheduler boots its supervisor thread:
    /// workers register their claims, dead or wedged tickets are
    /// redispatched under the same ticket, and dead workers are
    /// respawned out of [`RecoveryPolicy::restart_budget`]. Off by
    /// default — unsupervised schedulers pay zero bookkeeping.
    #[serde(default)]
    pub supervised: bool,
    /// How many worker respawns the supervisor may perform over the
    /// scheduler's lifetime (only meaningful with
    /// [`RecoveryPolicy::supervised`]).
    #[serde(default = "default_restart_budget")]
    pub restart_budget: u32,
}

/// Serde default for [`RecoveryPolicy::restart_budget`] (also used by
/// [`RecoveryPolicy::default`]).
fn default_restart_budget() -> u32 {
    4
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            max_retries: 3,
            backoff_cycles: 64,
            backoff_multiplier: 2,
            quarantine_after: 2,
            cpu_fallback: true,
            deadline_cycles: 0,
            queue_capacity: 0,
            overload: OverloadPolicy::RejectNew,
            breaker: false,
            supervised: false,
            restart_budget: default_restart_budget(),
        }
    }
}

/// Which path actually executed an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPath {
    /// The accelerator in the requested tile.
    Accelerator,
    /// The CPU software implementation (graceful degradation).
    CpuFallback,
}

/// Aggregate manager statistics.
///
/// The reconfiguration counters satisfy the bookkeeping invariant checked
/// by [`ManagerStats::consistent`]: every request is accounted exactly
/// once as a performed reconfiguration, a cache hit, a coalesced
/// duplicate, a retry-exhausted failure or a rejection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ManagerStats {
    /// Reconfiguration requests received (including ones that failed).
    pub reconfig_requests: u64,
    /// Reconfigurations performed (cache hits excluded).
    pub reconfigurations: u64,
    /// Requests satisfied without reconfiguring (accelerator already
    /// loaded).
    pub cache_hits: u64,
    /// Requests folded into an identical in-flight or queued request and
    /// answered by its single underlying reconfiguration (the threaded
    /// scheduler's request coalescing; the deterministic manager never
    /// coalesces).
    pub coalesced: u64,
    /// Requests that failed every attempt the recovery policy allowed.
    pub retries_exhausted: u64,
    /// Requests rejected without retry (quarantined tile, unregistered
    /// bitstream, protocol violations).
    pub rejected: u64,
    /// Individual retry attempts performed across all requests.
    pub retries: u64,
    /// Tiles quarantined.
    pub quarantines: u64,
    /// Total cycles spent reconfiguring.
    pub reconfig_cycles: u64,
    /// Accelerator invocations dispatched.
    pub runs: u64,
    /// Operations that degraded to the CPU software path.
    pub fallback_runs: u64,
    /// Scrub passes performed (outside the request-accounting invariant:
    /// scrubs are maintenance, not reconfiguration requests).
    pub scrub_passes: u64,
    /// Frames repaired by scrub passes.
    pub frames_repaired: u64,
    /// Quarantines triggered by uncorrectable upsets (also counted in
    /// [`ManagerStats::quarantines`]).
    pub scrub_quarantines: u64,
    /// Requests cancelled (or degraded to CPU) because their virtual-time
    /// deadline elapsed before commit. Part of the request-accounting
    /// invariant: a deadline miss is the request's single outcome.
    #[serde(default)]
    pub deadline_misses: u64,
    /// Requests shed at the queue door by the admission controller
    /// (outside the request-accounting invariant: a shed request never
    /// reaches the reconfiguration ledger).
    #[serde(default)]
    pub shed: u64,
    /// Requests refused with [`Error::RegionUnavailable`] — the fabric,
    /// as fragmented at that moment, had no free span wide enough for
    /// the bitstream's footprint. A subset of
    /// [`ManagerStats::rejected`], so the accounting invariant is
    /// untouched.
    #[serde(default)]
    pub oversized_rejected: u64,
    /// Reconfigurations that succeeded on a tile whose previous request
    /// was refused for fragmentation (a subset of
    /// [`ManagerStats::reconfigurations`]).
    #[serde(default)]
    pub oversized_admitted: u64,
    /// Oversized admits where at least one defragmentation move landed
    /// between the refusal and the admit — the repack is what created
    /// the span (a subset of [`ManagerStats::oversized_admitted`]).
    #[serde(default)]
    pub repack_admitted: u64,
}

impl ManagerStats {
    /// Checks the request-accounting invariant: no request is lost and
    /// none is counted twice.
    pub fn consistent(&self) -> bool {
        self.reconfig_requests
            == self.reconfigurations
                + self.cache_hits
                + self.coalesced
                + self.retries_exhausted
                + self.rejected
                + self.deadline_misses
    }
}

/// Result of one defragmentation (repack) pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepackReport {
    /// Region moves applied (allocator and fabric in lockstep).
    pub moves: u64,
    /// Frames physically relocated (bookkeeping slides of never-loaded
    /// leases move none).
    pub frames_moved: u64,
    /// Planned moves skipped: the owning tile was quarantined, vanished,
    /// or refused the move.
    pub skipped: u64,
}

/// The deterministic (virtual-time) reconfiguration manager.
///
/// See the crate-level example for usage; [`crate::threaded`] wraps the
/// same protocol in an OS-thread worker pool.
#[derive(Debug)]
pub struct ReconfigManager {
    tiles: BTreeMap<TileCoord, TileState>,
    core: DeviceCore,
    policy: RecoveryPolicy,
}

impl ReconfigManager {
    /// Creates a manager over a booted SoC and a loaded registry, with the
    /// default [`RecoveryPolicy`].
    pub fn new(soc: Soc, registry: BitstreamRegistry) -> ReconfigManager {
        ReconfigManager::with_policy(soc, registry, RecoveryPolicy::default())
    }

    /// Creates a manager with an explicit recovery policy.
    pub fn with_policy(
        soc: Soc,
        registry: BitstreamRegistry,
        policy: RecoveryPolicy,
    ) -> ReconfigManager {
        ReconfigManager {
            tiles: BTreeMap::new(),
            core: DeviceCore::new(soc, registry, BitstreamCache::disabled()),
            policy,
        }
    }

    /// The active recovery policy.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// Replaces the recovery policy.
    pub fn set_policy(&mut self, policy: RecoveryPolicy) {
        self.policy = policy;
    }

    /// Enables (capacity > 0) or disables (capacity 0) the LRU cache of
    /// verified bitstreams in front of the registry. Disabled by default:
    /// the deterministic manager's trace log doubles as a
    /// semantics-preservation oracle and must not gain cache events.
    pub fn set_bitstream_cache_capacity(&mut self, capacity: usize) {
        self.core.set_cache(BitstreamCache::new(capacity));
    }

    /// Hit/miss counters of the verified-bitstream cache.
    pub fn bitstream_cache_stats(&self) -> CacheStats {
        self.core.cache_stats()
    }

    /// Whether `tile` is quarantined.
    pub fn is_quarantined(&self, tile: TileCoord) -> bool {
        self.tiles.get(&tile).is_some_and(TileState::is_quarantined)
    }

    /// All quarantined tiles, in coordinate order.
    pub fn quarantined_tiles(&self) -> Vec<TileCoord> {
        self.tiles
            .values()
            .filter(|s| s.is_quarantined())
            .map(TileState::coord)
            .collect()
    }

    /// Configuration-memory health of `tile`.
    pub fn tile_health(&self, tile: TileCoord) -> TileHealth {
        self.tiles
            .get(&tile)
            .map(TileState::health)
            .unwrap_or(TileHealth::Healthy)
    }

    /// Reads back `tile`'s configuration frames through the ICAP and
    /// repairs what SECDED can, starting no earlier than `at`.
    ///
    /// The tile transitions `Scrubbing →` [`TileHealth::Healthy`] (clean
    /// pass), [`TileHealth::Degraded`] (correctable upsets repaired) or
    /// [`TileHealth::Quarantined`] (an uncorrectable upset: the driver is
    /// unloaded and requests degrade to the CPU until the tile's golden
    /// image is restored and it is released).
    ///
    /// # Errors
    ///
    /// Returns [`Error::TileQuarantined`] for already-quarantined tiles,
    /// plus SoC-level frame errors.
    pub fn scrub_tile_at(&mut self, tile: TileCoord, at: u64) -> Result<ScrubReport, Error> {
        let shard = self
            .tiles
            .entry(tile)
            .or_insert_with(|| TileState::new(tile));
        protocol::scrub_tile_at(shard, &mut self.core, at)
    }

    /// Scrubs every tile that has been loaded at least once, in coordinate
    /// order, starting no earlier than `at`. Quarantined tiles are
    /// skipped. Returns the per-tile reports.
    ///
    /// # Errors
    ///
    /// Propagates SoC-level frame errors.
    pub fn scrub_all_at(&mut self, at: u64) -> Result<Vec<(TileCoord, ScrubReport)>, Error> {
        let mut tiles: Vec<TileCoord> = self
            .core
            .soc()
            .config()
            .reconfigurable_tiles()
            .into_iter()
            .filter(|t| !self.is_quarantined(*t) && !self.core.soc().tile_region(*t).is_empty())
            .collect();
        tiles.sort_unstable();
        let mut reports = Vec::with_capacity(tiles.len());
        for tile in tiles {
            let report = self.scrub_tile_at(tile, at)?;
            reports.push((tile, report));
        }
        Ok(reports)
    }

    /// Restores `tile`'s region bit-for-bit from its golden (post-load)
    /// frame image — the recovery path for uncorrectable upsets. Returns
    /// the number of frames rewritten. The caller still re-registers the
    /// driver via a reconfiguration request (or releases the quarantine).
    ///
    /// # Errors
    ///
    /// Propagates the SoC error when no golden image exists.
    pub fn restore_golden(&mut self, tile: TileCoord) -> Result<usize, Error> {
        let shard = self
            .tiles
            .entry(tile)
            .or_insert_with(|| TileState::new(tile));
        protocol::restore_golden(shard, &mut self.core)
    }

    /// Releases `tile` from quarantine (e.g. after operator intervention),
    /// clearing its failure streak. Returns whether it was quarantined.
    pub fn release_quarantine(&mut self, tile: TileCoord) -> bool {
        let shard = self
            .tiles
            .entry(tile)
            .or_insert_with(|| TileState::new(tile));
        protocol::release_quarantine(shard, &mut self.core)
    }

    /// Switches the manager from fixed sockets to amorphous
    /// floorplanning: every subsequent load consults a
    /// [`presp_floorplan::RegionAllocator`] over the device's frame
    /// columns and relocates its bitstream into the leased span.
    ///
    /// # Errors
    ///
    /// Returns a [`presp_soc::Error::RegionConflict`] when any tile has
    /// already been loaded — regions must be enabled before the first
    /// load.
    pub fn enable_regions(&mut self, policy: FitPolicy) -> Result<(), Error> {
        self.core.enable_regions(policy, None)
    }

    /// [`Self::enable_regions`] restricted to the columns in `window` —
    /// the partially reconfigurable share of the fabric, with everything
    /// outside reserved for the static system.
    ///
    /// # Errors
    ///
    /// See [`Self::enable_regions`].
    pub fn enable_regions_within(
        &mut self,
        policy: FitPolicy,
        window: std::ops::Range<u32>,
    ) -> Result<(), Error> {
        self.core.enable_regions(policy, Some(window))
    }

    /// Fragmentation counters of the region allocator; `None` on the
    /// fixed-socket path.
    pub fn fragmentation(&self) -> Option<FragmentationStats> {
        self.core.allocator().map(|a| a.stats())
    }

    /// The tile's live region lease, when amorphous floorplanning is
    /// enabled and the tile has loaded at least once.
    pub fn tile_lease(&self, tile: TileCoord) -> Option<RegionLease> {
        self.tiles.get(&tile).and_then(|s| s.lease().cloned())
    }

    /// Runs one defragmentation pass starting no earlier than `at`:
    /// plans the allocator's greedy left-slide compaction and executes
    /// each move transactionally (decouple → lockstep frame/ECC/golden
    /// move → re-couple) on the owning tile. Quarantined tiles are
    /// never moved; their planned moves (and any move a skip
    /// invalidated downstream) are counted as skipped rather than
    /// failing the pass. A no-op when regions are disabled or the
    /// fabric is already packed.
    ///
    /// # Errors
    ///
    /// Currently infallible beyond the `Result` shape shared with the
    /// threaded path; per-move refusals are folded into
    /// [`RepackReport::skipped`].
    pub fn repack_at(&mut self, at: u64) -> Result<RepackReport, Error> {
        let plan = protocol::plan_repack(&self.core);
        let mut report = RepackReport::default();
        for mv in &plan {
            let owner = self
                .tiles
                .values()
                .find(|s| s.lease().is_some_and(|l| l.id == mv.id))
                .map(TileState::coord);
            let Some(tile) = owner else {
                report.skipped += 1;
                continue;
            };
            let shard = self
                .tiles
                .entry(tile)
                .or_insert_with(|| TileState::new(tile));
            if shard.is_quarantined() {
                report.skipped += 1;
                continue;
            }
            match protocol::repack_move(shard, &mut self.core, mv, at) {
                Ok(frames) => {
                    report.moves += 1;
                    report.frames_moved += frames;
                }
                Err(_) => report.skipped += 1,
            }
        }
        let now = self.core.soc().horizon().max(at);
        self.core.soc_mut().tracer_mut().instant(
            presp_events::trace::ClockDomain::SocCycles,
            now,
            || presp_events::TraceEvent::DefragPass {
                moves: report.moves,
                frames: report.frames_moved,
            },
        );
        Ok(report)
    }

    /// The underlying SoC (for inspection).
    pub fn soc(&self) -> &Soc {
        self.core.soc()
    }

    /// Mutable access to the underlying SoC (e.g. to arm a fault plan).
    pub fn soc_mut(&mut self) -> &mut Soc {
        self.core.soc_mut()
    }

    /// Consumes the manager, returning the SoC (e.g. for energy reports).
    pub fn into_soc(self) -> Soc {
        self.core.into_soc()
    }

    /// Manager statistics.
    pub fn stats(&self) -> ManagerStats {
        self.core.stats()
    }

    /// The driver currently bound to `tile`.
    pub fn active_driver(&self, tile: TileCoord) -> Option<AcceleratorKind> {
        self.tiles.get(&tile).and_then(TileState::active_driver)
    }

    /// Whether `tile`'s active driver services operations of `kind`.
    pub fn driver_services(&self, tile: TileCoord, kind: AcceleratorKind) -> bool {
        self.tiles.get(&tile).is_some_and(|s| s.services(kind))
    }

    /// The driver lifecycle events recorded on `tile`, oldest first.
    pub fn driver_events(&self, tile: TileCoord) -> Vec<DriverEvent> {
        self.tiles
            .get(&tile)
            .map(|s| s.driver_events().to_vec())
            .unwrap_or_default()
    }

    /// Virtual time at which `tile` becomes idle.
    pub fn tile_idle_at(&self, tile: TileCoord) -> u64 {
        self.tiles.get(&tile).map(TileState::idle_at).unwrap_or(0)
    }

    /// Latest completion across all tiles (the application makespan).
    pub fn makespan(&self) -> u64 {
        self.core.soc().horizon()
    }

    /// Ensures `kind` is loaded in `tile`, reconfiguring if needed, with the
    /// request arriving at cycle `at`.
    ///
    /// Returns the reconfiguration timing, or `None` when the accelerator
    /// was already loaded (driver cache hit).
    ///
    /// Transient failures (a corrupted stream failing the ICAP's CRC
    /// check, a stale registry read) are retried per the
    /// [`RecoveryPolicy`], with exponential backoff in virtual time; the
    /// tile stays decoupled between attempts so the partially-written
    /// wrapper never observes NoC traffic. When every allowed attempt
    /// fails the request ends with [`Error::RetriesExhausted`], the tile
    /// is left decoupled, and repeated exhaustion quarantines it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TileQuarantined`] for quarantined tiles,
    /// [`Error::BitstreamNotRegistered`] for unknown pairs,
    /// [`Error::CorruptBitstream`] when the stored stream fails its
    /// integrity re-check, [`Error::RetriesExhausted`] when recovery gives
    /// up, and SoC errors from the decouple/reconfigure sequence.
    pub fn request_reconfiguration_at(
        &mut self,
        tile: TileCoord,
        kind: AcceleratorKind,
        at: u64,
    ) -> Result<Option<ReconfigRun>, Error> {
        let shard = self
            .tiles
            .entry(tile)
            .or_insert_with(|| TileState::new(tile));
        protocol::request_reconfiguration_at(
            shard,
            &mut self.core,
            &self.policy,
            kind,
            at,
            &mut None,
        )
    }

    /// [`Self::request_reconfiguration_at`] at the tile's own idle time.
    ///
    /// # Errors
    ///
    /// See [`Self::request_reconfiguration_at`].
    pub fn request_reconfiguration(
        &mut self,
        tile: TileCoord,
        kind: AcceleratorKind,
    ) -> Result<Option<ReconfigRun>, Error> {
        let at = self.tile_idle_at(tile);
        self.request_reconfiguration_at(tile, kind, at)
    }

    /// Runs `op` on `tile`, with the request arriving at cycle `at`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoDriver`] when the tile's active driver does not
    /// service the operation (e.g. mid-reconfiguration), plus SoC errors.
    pub fn run_at(&mut self, tile: TileCoord, op: &AccelOp, at: u64) -> Result<AccelRun, Error> {
        let shard = self
            .tiles
            .entry(tile)
            .or_insert_with(|| TileState::new(tile));
        protocol::run_at(shard, &mut self.core, op, at, None)
    }

    /// Runs `op` on `tile` at the tile's own idle time.
    ///
    /// # Errors
    ///
    /// See [`Self::run_at`].
    pub fn run(&mut self, tile: TileCoord, op: &AccelOp) -> Result<AccelRun, Error> {
        let at = self.tile_idle_at(tile);
        self.run_at(tile, op, at)
    }

    /// Runs `op` in software on the CPU tile at cycle `at` (fallback for
    /// kernels without a tile allocation).
    ///
    /// # Errors
    ///
    /// Propagates SoC errors.
    pub fn run_on_cpu_at(&mut self, op: &AccelOp, at: u64) -> Result<AccelRun, Error> {
        protocol::run_on_cpu_at(&mut self.core, op, at, None)
    }

    /// Ensures `kind` is loaded in `tile` and runs `op` there, degrading to
    /// the CPU software path when the accelerator path is unavailable
    /// (quarantined tile, exhausted retries, missing bitstream) and the
    /// policy allows it — the application-level operation completes either
    /// way.
    ///
    /// # Errors
    ///
    /// Returns non-degradable errors, and degradable ones when
    /// [`RecoveryPolicy::cpu_fallback`] is disabled.
    pub fn run_with_fallback_at(
        &mut self,
        tile: TileCoord,
        kind: AcceleratorKind,
        op: &AccelOp,
        at: u64,
    ) -> Result<(AccelRun, ExecPath), Error> {
        let shard = self
            .tiles
            .entry(tile)
            .or_insert_with(|| TileState::new(tile));
        protocol::run_with_fallback_at(
            shard,
            &mut self.core,
            &self.policy,
            kind,
            op,
            at,
            None,
            &mut None,
        )
    }

    /// [`Self::run_with_fallback_at`] at the tile's own idle time.
    ///
    /// # Errors
    ///
    /// See [`Self::run_with_fallback_at`].
    pub fn run_with_fallback(
        &mut self,
        tile: TileCoord,
        kind: AcceleratorKind,
        op: &AccelOp,
    ) -> Result<(AccelRun, ExecPath), Error> {
        let at = self.tile_idle_at(tile);
        self.run_with_fallback_at(tile, kind, op, at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presp_accel::AccelValue;
    use presp_fpga::bitstream::{Bitstream, BitstreamBuilder, BitstreamKind};
    use presp_fpga::frame::FrameAddress;
    use presp_soc::config::SocConfig;

    fn bitstream(soc: &Soc, col: u32, frames: u32) -> Bitstream {
        let device = soc.part().device();
        let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
        let words = device.part().family().frame_words();
        for minor in 0..frames {
            b.add_frame(FrameAddress::new(0, col, minor), vec![col + minor; words])
                .unwrap();
        }
        b.build(true)
    }

    /// A partial stream with `frames` frames in each of `cols`.
    fn span_bitstream(soc: &Soc, cols: std::ops::Range<u32>, frames: u32) -> Bitstream {
        let device = soc.part().device();
        let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
        let words = device.part().family().frame_words();
        for col in cols {
            for minor in 0..frames {
                b.add_frame(FrameAddress::new(0, col, minor), vec![col + minor; words])
                    .unwrap();
            }
        }
        b.build(true)
    }

    fn manager(n_tiles: usize) -> (ReconfigManager, Vec<TileCoord>) {
        let cfg = SocConfig::grid_3x3_reconf("mgr", n_tiles).unwrap();
        let soc = Soc::new(&cfg).unwrap();
        let tiles = cfg.reconfigurable_tiles();
        let mut registry = BitstreamRegistry::new();
        for (i, &tile) in tiles.iter().enumerate() {
            registry
                .register(tile, AcceleratorKind::Mac, bitstream(&soc, 2 + i as u32, 4))
                .unwrap();
            registry
                .register(
                    tile,
                    AcceleratorKind::Sort,
                    bitstream(&soc, 20 + i as u32, 8),
                )
                .unwrap();
        }
        (ReconfigManager::new(soc, registry), tiles)
    }

    #[test]
    fn reconfigure_then_run() {
        let (mut mgr, tiles) = manager(1);
        let r = mgr
            .request_reconfiguration(tiles[0], AcceleratorKind::Mac)
            .unwrap();
        assert!(r.is_some());
        let run = mgr
            .run(
                tiles[0],
                &AccelOp::Mac {
                    a: vec![5.0],
                    b: vec![5.0],
                },
            )
            .unwrap();
        assert_eq!(run.value, AccelValue::Scalar(25.0));
        assert_eq!(mgr.stats().reconfigurations, 1);
        assert_eq!(mgr.stats().runs, 1);
    }

    #[test]
    fn second_request_is_a_cache_hit() {
        let (mut mgr, tiles) = manager(1);
        mgr.request_reconfiguration(tiles[0], AcceleratorKind::Mac)
            .unwrap();
        let again = mgr
            .request_reconfiguration(tiles[0], AcceleratorKind::Mac)
            .unwrap();
        assert!(again.is_none());
        assert_eq!(mgr.stats().cache_hits, 1);
        assert_eq!(mgr.stats().reconfigurations, 1);
    }

    #[test]
    fn run_without_driver_fails() {
        let (mut mgr, tiles) = manager(1);
        let err = mgr.run(tiles[0], &AccelOp::Sort { data: vec![1.0] });
        assert!(matches!(err, Err(Error::NoDriver { .. })));
    }

    #[test]
    fn run_with_wrong_driver_fails() {
        let (mut mgr, tiles) = manager(1);
        mgr.request_reconfiguration(tiles[0], AcceleratorKind::Mac)
            .unwrap();
        let err = mgr.run(tiles[0], &AccelOp::Sort { data: vec![1.0] });
        assert!(matches!(err, Err(Error::NoDriver { .. })));
    }

    #[test]
    fn unregistered_bitstream_is_reported() {
        let (mut mgr, tiles) = manager(1);
        let err = mgr.request_reconfiguration(tiles[0], AcceleratorKind::Gemm);
        assert!(matches!(err, Err(Error::BitstreamNotRegistered { .. })));
    }

    #[test]
    fn swap_sequence_updates_drivers_and_time() {
        let (mut mgr, tiles) = manager(1);
        let tile = tiles[0];
        mgr.request_reconfiguration(tile, AcceleratorKind::Mac)
            .unwrap();
        let t1 = mgr.tile_idle_at(tile);
        mgr.run(
            tile,
            &AccelOp::Mac {
                a: vec![1.0; 256],
                b: vec![1.0; 256],
            },
        )
        .unwrap();
        let t2 = mgr.tile_idle_at(tile);
        assert!(t2 > t1);
        // Swap to sort: waits for the run to complete first.
        let swap = mgr
            .request_reconfiguration(tile, AcceleratorKind::Sort)
            .unwrap()
            .unwrap();
        assert!(swap.start >= t2);
        assert!(mgr.driver_services(tile, AcceleratorKind::Sort));
        let sorted = mgr
            .run(
                tile,
                &AccelOp::Sort {
                    data: vec![3.0, 1.0],
                },
            )
            .unwrap();
        assert_eq!(sorted.value, AccelValue::Vector(vec![1.0, 3.0]));
    }

    #[test]
    fn tiles_reconfigure_independently() {
        let (mut mgr, tiles) = manager(2);
        let r0 = mgr
            .request_reconfiguration_at(tiles[0], AcceleratorKind::Mac, 0)
            .unwrap()
            .unwrap();
        let r1 = mgr
            .request_reconfiguration_at(tiles[1], AcceleratorKind::Sort, 0)
            .unwrap()
            .unwrap();
        // The shared ICAP serializes the two loads.
        assert!(r1.end > r0.end || r0.end > r1.end);
        assert!(mgr.driver_services(tiles[0], AcceleratorKind::Mac));
        assert!(mgr.driver_services(tiles[1], AcceleratorKind::Sort));
        assert_eq!(mgr.stats().reconfigurations, 2);
    }

    #[test]
    fn scrub_state_machine_tracks_repairs() {
        use presp_fpga::fault::{FaultConfig, FaultPlan};
        let (mut mgr, tiles) = manager(1);
        let tile = tiles[0];
        assert_eq!(mgr.tile_health(tile), TileHealth::Healthy);
        mgr.request_reconfiguration(tile, AcceleratorKind::Mac)
            .unwrap();
        // Clean pass: back to Healthy.
        let report = mgr.scrub_tile_at(tile, mgr.makespan()).unwrap();
        assert!(report.is_clean());
        assert_eq!(mgr.tile_health(tile), TileHealth::Healthy);
        // Single-bit upset: repaired, tile marked Degraded.
        let mut plan = FaultPlan::new(5, FaultConfig::uniform(0.0));
        plan.force_seu(mgr.makespan() + 1, false);
        mgr.soc_mut().set_fault_plan(Some(plan));
        let report = mgr.scrub_tile_at(tile, mgr.makespan() + 10).unwrap();
        assert_eq!(report.corrected.len(), 1);
        assert_eq!(mgr.tile_health(tile), TileHealth::Degraded);
        assert_eq!(mgr.stats().scrub_passes, 2);
        assert_eq!(mgr.stats().frames_repaired, 1);
        // A successful reconfiguration rewrites the region: Healthy again.
        mgr.request_reconfiguration(tile, AcceleratorKind::Sort)
            .unwrap();
        assert_eq!(mgr.tile_health(tile), TileHealth::Healthy);
        assert!(mgr.stats().consistent());
    }

    #[test]
    fn uncorrectable_upset_quarantines_and_golden_restore_recovers() {
        use presp_fpga::fault::{FaultConfig, FaultPlan};
        let (mut mgr, tiles) = manager(1);
        let tile = tiles[0];
        mgr.request_reconfiguration(tile, AcceleratorKind::Mac)
            .unwrap();
        let mut plan = FaultPlan::new(6, FaultConfig::uniform(0.0));
        plan.force_seu(mgr.makespan() + 1, true);
        mgr.soc_mut().set_fault_plan(Some(plan));
        let report = mgr.scrub_tile_at(tile, mgr.makespan() + 10).unwrap();
        assert_eq!(report.uncorrectable.len(), 1);
        assert_eq!(mgr.tile_health(tile), TileHealth::Quarantined);
        assert!(mgr.is_quarantined(tile));
        assert_eq!(mgr.stats().scrub_quarantines, 1);
        // Work still completes — degraded to the CPU software path.
        let (run, path) = mgr
            .run_with_fallback(
                tile,
                AcceleratorKind::Mac,
                &AccelOp::Mac {
                    a: vec![2.0],
                    b: vec![3.0],
                },
            )
            .unwrap();
        assert_eq!(path, ExecPath::CpuFallback);
        assert_eq!(run.value, AccelValue::Scalar(6.0));
        // Recovery: golden restore + quarantine release → clean scrubs.
        assert!(mgr.restore_golden(tile).unwrap() > 0);
        assert!(mgr.release_quarantine(tile));
        let report = mgr.scrub_tile_at(tile, mgr.makespan()).unwrap();
        assert!(report.is_clean());
        assert_eq!(mgr.tile_health(tile), TileHealth::Healthy);
        assert!(mgr.stats().consistent());
    }

    #[test]
    fn corrupt_registry_entry_is_rejected_at_request_time() {
        let cfg = SocConfig::grid_3x3_reconf("corrupt", 1).unwrap();
        let soc = Soc::new(&cfg).unwrap();
        let tile = cfg.reconfigurable_tiles()[0];
        let good = bitstream(&soc, 2, 4);
        let mut words = good.words().to_vec();
        let idx = words.len() / 2;
        words[idx] ^= 1;
        let mut registry = BitstreamRegistry::new();
        registry
            .register(tile, AcceleratorKind::Mac, good.with_words(words))
            .unwrap();
        let mut mgr = ReconfigManager::new(soc, registry);
        let err = mgr.request_reconfiguration(tile, AcceleratorKind::Mac);
        assert!(matches!(err, Err(Error::CorruptBitstream { .. })));
        assert_eq!(mgr.stats().rejected, 1);
        assert!(mgr.stats().consistent());
    }

    #[test]
    fn cpu_fallback_runs_without_reconfiguration() {
        let (mut mgr, _) = manager(1);
        let run = mgr
            .run_on_cpu_at(
                &AccelOp::Sort {
                    data: vec![2.0, 1.0],
                },
                0,
            )
            .unwrap();
        assert_eq!(run.value, AccelValue::Vector(vec![1.0, 2.0]));
        assert_eq!(mgr.stats().reconfigurations, 0);
    }

    #[test]
    fn driver_events_are_recorded_per_tile() {
        let (mut mgr, tiles) = manager(2);
        mgr.request_reconfiguration(tiles[0], AcceleratorKind::Mac)
            .unwrap();
        mgr.request_reconfiguration(tiles[1], AcceleratorKind::Sort)
            .unwrap();
        mgr.request_reconfiguration(tiles[0], AcceleratorKind::Sort)
            .unwrap();
        let events = mgr.driver_events(tiles[0]);
        assert_eq!(
            events,
            vec![
                DriverEvent::Probed {
                    tile: tiles[0],
                    kind: AcceleratorKind::Mac
                },
                DriverEvent::Removed {
                    tile: tiles[0],
                    kind: AcceleratorKind::Mac
                },
                DriverEvent::Probed {
                    tile: tiles[0],
                    kind: AcceleratorKind::Sort
                },
            ]
        );
        assert_eq!(mgr.driver_events(tiles[1]).len(), 1);
        assert_eq!(mgr.active_driver(tiles[0]), Some(AcceleratorKind::Sort));
    }

    #[test]
    fn amorphous_regions_reject_oversized_then_repack_admits() {
        use presp_floorplan::FitPolicy;
        use presp_fpga::fabric::ColumnKind;
        let cfg = SocConfig::grid_reconf("amorphous", 7).unwrap();
        let soc = Soc::new(&cfg).unwrap();
        let tiles = cfg.reconfigurable_tiles();
        // The recipe below is pinned to the Vc707 column interleave —
        // assert it so a fabric-model change fails loudly here.
        let d = soc.part().device();
        use ColumnKind::{Bram, Clb, Dsp};
        let expect = [Clb, Clb, Bram, Clb, Clb, Dsp, Clb, Clb, Clb, Clb, Clb];
        for (i, kind) in expect.iter().enumerate() {
            assert_eq!(d.column_kind(i + 1), *kind, "column {}", i + 1);
        }
        let mut registry = BitstreamRegistry::new();
        for &tile in &tiles {
            registry
                .register(tile, AcceleratorKind::Mac, bitstream(&soc, 1, 4))
                .unwrap();
            registry
                .register(tile, AcceleratorKind::Sort, bitstream(&soc, 3, 4))
                .unwrap();
            registry
                .register(tile, AcceleratorKind::Gemm, span_bitstream(&soc, 7..10, 4))
                .unwrap();
        }
        let mut mgr = ReconfigManager::new(soc, registry);
        mgr.enable_regions_within(FitPolicy::FirstFit, 1..12)
            .unwrap();
        // Seven 1-column loads pack the window's CLB columns first-fit:
        // bases 1, 2, 4, 5, 7, 8, 9 (columns 3 and 6 are BRAM/DSP).
        for &t in &tiles {
            mgr.request_reconfiguration(t, AcceleratorKind::Mac)
                .unwrap();
        }
        assert_eq!(mgr.tile_lease(tiles[0]).unwrap().base, 1);
        assert_eq!(mgr.tile_lease(tiles[6]).unwrap().base, 9);
        // Swap the tile at column 8 onto the BRAM column: its CLB column
        // frees, leaving holes at 8 and [10, 11].
        mgr.request_reconfiguration(tiles[5], AcceleratorKind::Sort)
            .unwrap();
        assert_eq!(mgr.tile_lease(tiles[5]).unwrap().base, 3);
        let frag = mgr.fragmentation().unwrap();
        // Free: the DSP column 6, the vacated 8 and the tail [10, 11].
        assert_eq!(frag.free_columns, 4);
        assert_eq!(frag.largest_free_span, 2);
        // Oversized: columns are free but no 3-wide CLB span exists.
        let err = mgr.request_reconfiguration(tiles[1], AcceleratorKind::Gemm);
        assert!(
            matches!(err, Err(Error::RegionUnavailable { width: 3, .. })),
            "{err:?}"
        );
        assert_eq!(mgr.stats().oversized_rejected, 1);
        assert!(mgr.fragmentation().unwrap().external_fragmentation() > 0.0);
        // The refusal left the tile's old lease (and frames) intact.
        assert_eq!(mgr.tile_lease(tiles[1]).unwrap().base, 2);
        // One repack move (9 → 8) heals the fragmentation.
        let report = mgr.repack_at(mgr.makespan()).unwrap();
        assert_eq!(report.moves, 1);
        assert_eq!(report.skipped, 0);
        assert!(report.frames_moved > 0);
        assert_eq!(mgr.tile_lease(tiles[6]).unwrap().base, 8);
        assert_eq!(mgr.fragmentation().unwrap().largest_free_span, 3);
        // Retry: admitted into the repacked span and attributed to it.
        mgr.request_reconfiguration(tiles[1], AcceleratorKind::Gemm)
            .unwrap()
            .unwrap();
        let lease = mgr.tile_lease(tiles[1]).unwrap();
        assert_eq!((lease.base, lease.width()), (9, 3));
        assert!(mgr.driver_services(tiles[1], AcceleratorKind::Gemm));
        let stats = mgr.stats();
        assert_eq!(stats.oversized_admitted, 1);
        assert_eq!(stats.repack_admitted, 1);
        assert!(stats.consistent());
    }

    #[test]
    fn enabled_regions_before_first_load_only() {
        use presp_floorplan::FitPolicy;
        let (mut mgr, tiles) = manager(1);
        mgr.request_reconfiguration(tiles[0], AcceleratorKind::Mac)
            .unwrap();
        let err = mgr.enable_regions(FitPolicy::FirstFit);
        assert!(matches!(
            err,
            Err(Error::Soc(presp_soc::Error::RegionConflict { .. }))
        ));
        // Repack without regions is a clean no-op.
        let report = mgr.repack_at(0).unwrap();
        assert_eq!(report, RepackReport::default());
        assert!(mgr.fragmentation().is_none());
    }

    #[test]
    fn enabled_bitstream_cache_skips_reverification_on_swaps() {
        let (mut mgr, tiles) = manager(1);
        let tile = tiles[0];
        mgr.set_bitstream_cache_capacity(4);
        for _ in 0..3 {
            mgr.request_reconfiguration(tile, AcceleratorKind::Mac)
                .unwrap();
            mgr.request_reconfiguration(tile, AcceleratorKind::Sort)
                .unwrap();
        }
        let cache = mgr.bitstream_cache_stats();
        // Each swap performs a precheck lookup plus one per attempt; after
        // the first Mac/Sort misses everything is served from the cache.
        assert_eq!(cache.misses, 2);
        assert!(cache.hits >= 8, "cache hits: {}", cache.hits);
        assert!(mgr.stats().consistent());
    }
}
