//! The reconfiguration manager.
//!
//! Implements the protocol of Section V on virtual time: a reconfiguration
//! request (1) waits for the accelerator in the target tile to finish, (2)
//! locks the device, (3) unregisters the outgoing driver, (4) decouples the
//! tile, (5) triggers the DFXC, (6) re-couples on the completion interrupt,
//! (7) probes the incoming driver and unlocks. Work submitted through a
//! stale driver is rejected.

use crate::driver::DriverTable;
use crate::error::Error;
use crate::registry::BitstreamRegistry;
use presp_accel::catalog::AcceleratorKind;
use presp_accel::AccelOp;
use presp_soc::config::TileCoord;
use presp_soc::sim::{csr, AccelRun, ReconfigRun, Soc};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregate manager statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ManagerStats {
    /// Reconfigurations performed (cache hits excluded).
    pub reconfigurations: u64,
    /// Requests satisfied without reconfiguring (accelerator already
    /// loaded).
    pub cache_hits: u64,
    /// Total cycles spent reconfiguring.
    pub reconfig_cycles: u64,
    /// Accelerator invocations dispatched.
    pub runs: u64,
}

/// The deterministic (virtual-time) reconfiguration manager.
///
/// See the crate-level example for usage; [`crate::threaded`] wraps the
/// same protocol in an OS-thread workqueue.
#[derive(Debug)]
pub struct ReconfigManager {
    soc: Soc,
    registry: BitstreamRegistry,
    drivers: DriverTable,
    tile_time: BTreeMap<TileCoord, u64>,
    stats: ManagerStats,
}

impl ReconfigManager {
    /// Creates a manager over a booted SoC and a loaded registry.
    pub fn new(soc: Soc, registry: BitstreamRegistry) -> ReconfigManager {
        ReconfigManager {
            soc,
            registry,
            drivers: DriverTable::new(),
            tile_time: BTreeMap::new(),
            stats: ManagerStats::default(),
        }
    }

    /// The underlying SoC (for inspection).
    pub fn soc(&self) -> &Soc {
        &self.soc
    }

    /// Consumes the manager, returning the SoC (e.g. for energy reports).
    pub fn into_soc(self) -> Soc {
        self.soc
    }

    /// Manager statistics.
    pub fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// The driver table (for inspection).
    pub fn drivers(&self) -> &DriverTable {
        &self.drivers
    }

    /// Virtual time at which `tile` becomes idle.
    pub fn tile_idle_at(&self, tile: TileCoord) -> u64 {
        self.tile_time.get(&tile).copied().unwrap_or(0)
    }

    /// Latest completion across all tiles (the application makespan).
    pub fn makespan(&self) -> u64 {
        self.soc.horizon()
    }

    /// Ensures `kind` is loaded in `tile`, reconfiguring if needed, with the
    /// request arriving at cycle `at`.
    ///
    /// Returns the reconfiguration timing, or `None` when the accelerator
    /// was already loaded (driver cache hit).
    ///
    /// # Errors
    ///
    /// Returns [`Error::BitstreamNotRegistered`] for unknown pairs and SoC
    /// errors from the decouple/reconfigure sequence.
    pub fn request_reconfiguration_at(
        &mut self,
        tile: TileCoord,
        kind: AcceleratorKind,
        at: u64,
    ) -> Result<Option<ReconfigRun>, Error> {
        if self.drivers.services(tile, kind) {
            self.stats.cache_hits += 1;
            return Ok(None);
        }
        let bitstream = self
            .registry
            .lookup(tile, kind)
            .ok_or(Error::BitstreamNotRegistered { tile, kind })?
            .clone();
        // Wait for the accelerator in the tile to complete its execution.
        let idle = at.max(self.tile_idle_at(tile));
        // Unregister the outgoing driver: from here until probe, other
        // threads' submissions fail fast instead of touching a tile that is
        // being rewritten.
        self.drivers.remove(tile);
        let decoupled = self.soc.csr_write_at(tile, csr::DECOUPLE, 1, idle)?;
        let reconf = self.soc.reconfigure_at(tile, kind, &bitstream, decoupled)?;
        let coupled = self.soc.csr_write_at(tile, csr::DECOUPLE, 0, reconf.end)?;
        self.drivers.probe(tile, kind);
        self.tile_time.insert(tile, coupled);
        self.stats.reconfigurations += 1;
        self.stats.reconfig_cycles += coupled - idle;
        Ok(Some(ReconfigRun { end: coupled, ..reconf }))
    }

    /// [`Self::request_reconfiguration_at`] at the tile's own idle time.
    ///
    /// # Errors
    ///
    /// See [`Self::request_reconfiguration_at`].
    pub fn request_reconfiguration(
        &mut self,
        tile: TileCoord,
        kind: AcceleratorKind,
    ) -> Result<Option<ReconfigRun>, Error> {
        let at = self.tile_idle_at(tile);
        self.request_reconfiguration_at(tile, kind, at)
    }

    /// Runs `op` on `tile`, with the request arriving at cycle `at`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoDriver`] when the tile's active driver does not
    /// service the operation (e.g. mid-reconfiguration), plus SoC errors.
    pub fn run_at(&mut self, tile: TileCoord, op: &AccelOp, at: u64) -> Result<AccelRun, Error> {
        let active = self.drivers.active(tile).ok_or(Error::NoDriver { tile, needed: op.kind() })?;
        if !op.runs_on(active) {
            return Err(Error::NoDriver { tile, needed: op.kind() });
        }
        let start = at.max(self.tile_idle_at(tile));
        let run = self.soc.run_accelerator_at(tile, op, start)?;
        self.tile_time.insert(tile, run.end);
        self.stats.runs += 1;
        Ok(run)
    }

    /// Runs `op` on `tile` at the tile's own idle time.
    ///
    /// # Errors
    ///
    /// See [`Self::run_at`].
    pub fn run(&mut self, tile: TileCoord, op: &AccelOp) -> Result<AccelRun, Error> {
        let at = self.tile_idle_at(tile);
        self.run_at(tile, op, at)
    }

    /// Runs `op` in software on the CPU tile at cycle `at` (fallback for
    /// kernels without a tile allocation).
    ///
    /// # Errors
    ///
    /// Propagates SoC errors.
    pub fn run_on_cpu_at(&mut self, op: &AccelOp, at: u64) -> Result<AccelRun, Error> {
        Ok(self.soc.run_on_cpu_at(op, at)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presp_accel::AccelValue;
    use presp_fpga::bitstream::{Bitstream, BitstreamBuilder, BitstreamKind};
    use presp_fpga::frame::FrameAddress;
    use presp_soc::config::SocConfig;

    fn bitstream(soc: &Soc, col: u32, frames: u32) -> Bitstream {
        let device = soc.part().device();
        let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
        let words = device.part().family().frame_words();
        for minor in 0..frames {
            b.add_frame(FrameAddress::new(0, col, minor), vec![col + minor; words]).unwrap();
        }
        b.build(true)
    }

    fn manager(n_tiles: usize) -> (ReconfigManager, Vec<TileCoord>) {
        let cfg = SocConfig::grid_3x3_reconf("mgr", n_tiles).unwrap();
        let soc = Soc::new(&cfg).unwrap();
        let tiles = cfg.reconfigurable_tiles();
        let mut registry = BitstreamRegistry::new();
        for (i, &tile) in tiles.iter().enumerate() {
            registry.register(tile, AcceleratorKind::Mac, bitstream(&soc, 2 + i as u32, 4));
            registry.register(tile, AcceleratorKind::Sort, bitstream(&soc, 20 + i as u32, 8));
        }
        (ReconfigManager::new(soc, registry), tiles)
    }

    #[test]
    fn reconfigure_then_run() {
        let (mut mgr, tiles) = manager(1);
        let r = mgr.request_reconfiguration(tiles[0], AcceleratorKind::Mac).unwrap();
        assert!(r.is_some());
        let run = mgr.run(tiles[0], &AccelOp::Mac { a: vec![5.0], b: vec![5.0] }).unwrap();
        assert_eq!(run.value, AccelValue::Scalar(25.0));
        assert_eq!(mgr.stats().reconfigurations, 1);
        assert_eq!(mgr.stats().runs, 1);
    }

    #[test]
    fn second_request_is_a_cache_hit() {
        let (mut mgr, tiles) = manager(1);
        mgr.request_reconfiguration(tiles[0], AcceleratorKind::Mac).unwrap();
        let again = mgr.request_reconfiguration(tiles[0], AcceleratorKind::Mac).unwrap();
        assert!(again.is_none());
        assert_eq!(mgr.stats().cache_hits, 1);
        assert_eq!(mgr.stats().reconfigurations, 1);
    }

    #[test]
    fn run_without_driver_fails() {
        let (mut mgr, tiles) = manager(1);
        let err = mgr.run(tiles[0], &AccelOp::Sort { data: vec![1.0] });
        assert!(matches!(err, Err(Error::NoDriver { .. })));
    }

    #[test]
    fn run_with_wrong_driver_fails() {
        let (mut mgr, tiles) = manager(1);
        mgr.request_reconfiguration(tiles[0], AcceleratorKind::Mac).unwrap();
        let err = mgr.run(tiles[0], &AccelOp::Sort { data: vec![1.0] });
        assert!(matches!(err, Err(Error::NoDriver { .. })));
    }

    #[test]
    fn unregistered_bitstream_is_reported() {
        let (mut mgr, tiles) = manager(1);
        let err = mgr.request_reconfiguration(tiles[0], AcceleratorKind::Gemm);
        assert!(matches!(err, Err(Error::BitstreamNotRegistered { .. })));
    }

    #[test]
    fn swap_sequence_updates_drivers_and_time() {
        let (mut mgr, tiles) = manager(1);
        let tile = tiles[0];
        mgr.request_reconfiguration(tile, AcceleratorKind::Mac).unwrap();
        let t1 = mgr.tile_idle_at(tile);
        mgr.run(tile, &AccelOp::Mac { a: vec![1.0; 256], b: vec![1.0; 256] }).unwrap();
        let t2 = mgr.tile_idle_at(tile);
        assert!(t2 > t1);
        // Swap to sort: waits for the run to complete first.
        let swap = mgr.request_reconfiguration(tile, AcceleratorKind::Sort).unwrap().unwrap();
        assert!(swap.start >= t2);
        assert!(mgr.drivers().services(tile, AcceleratorKind::Sort));
        let sorted = mgr.run(tile, &AccelOp::Sort { data: vec![3.0, 1.0] }).unwrap();
        assert_eq!(sorted.value, AccelValue::Vector(vec![1.0, 3.0]));
    }

    #[test]
    fn tiles_reconfigure_independently() {
        let (mut mgr, tiles) = manager(2);
        let r0 = mgr.request_reconfiguration_at(tiles[0], AcceleratorKind::Mac, 0).unwrap().unwrap();
        let r1 = mgr.request_reconfiguration_at(tiles[1], AcceleratorKind::Sort, 0).unwrap().unwrap();
        // The shared ICAP serializes the two loads.
        assert!(r1.end > r0.end || r0.end > r1.end);
        assert!(mgr.drivers().services(tiles[0], AcceleratorKind::Mac));
        assert!(mgr.drivers().services(tiles[1], AcceleratorKind::Sort));
        assert_eq!(mgr.stats().reconfigurations, 2);
    }

    #[test]
    fn cpu_fallback_runs_without_reconfiguration() {
        let (mut mgr, _) = manager(1);
        let run = mgr.run_on_cpu_at(&AccelOp::Sort { data: vec![2.0, 1.0] }, 0).unwrap();
        assert_eq!(run.value, AccelValue::Vector(vec![1.0, 2.0]));
        assert_eq!(mgr.stats().reconfigurations, 0);
    }
}
