//! The device core: the genuinely shared half of the sharded runtime.
//!
//! After the god-object split, everything whose consistency is *per-tile*
//! lives in a tile shard ([`crate::tile`]); what remains here is the
//! state every request on every tile contends for no matter how the
//! runtime is sharded: the SoC simulator (one ICAP/DFXC write port, one
//! configuration memory, one NoC and their shared virtual-time
//! timelines), the aggregate [`crate::manager::ManagerStats`], the
//! [`crate::registry::BitstreamRegistry`] and the
//! [`crate::cache::BitstreamCache`] fronting it.
//!
//! On the deterministic path the [`crate::manager::ReconfigManager`] owns
//! a `DeviceCore` directly; on the OS-threaded path the
//! [`crate::scheduler`] wraps it in a single mutex (label `"core"`) that
//! is held only for the serial ICAP/NoC portion of each request — the
//! short critical section the multi-worker scheduler is built around.

use crate::cache::{BitstreamCache, CacheStats};
use crate::error::Error;
use crate::manager::ManagerStats;
use crate::registry::BitstreamRegistry;
use crate::sync::Arc;
use presp_accel::catalog::AcceleratorKind;
use presp_events::trace::ClockDomain;
use presp_events::{Loc, TraceEvent};
use presp_fpga::bitstream::Bitstream;
use presp_soc::config::TileCoord;
use presp_soc::sim::Soc;

/// The tile's location as a trace record coordinate.
pub(crate) fn loc(coord: TileCoord) -> Loc {
    Loc::new(coord.row as u64, coord.col as u64)
}

/// The shared device resources: SoC, registry (+ verified-bitstream
/// cache) and aggregate statistics.
#[derive(Debug)]
pub struct DeviceCore {
    soc: Soc,
    registry: BitstreamRegistry,
    cache: BitstreamCache,
    stats: ManagerStats,
}

impl DeviceCore {
    /// A core over a booted SoC and a loaded registry. `cache` fronts the
    /// registry's verified lookups; pass
    /// [`BitstreamCache::disabled`] to re-verify on every load.
    pub(crate) fn new(soc: Soc, registry: BitstreamRegistry, cache: BitstreamCache) -> DeviceCore {
        DeviceCore {
            soc,
            registry,
            cache,
            stats: ManagerStats::default(),
        }
    }

    /// The underlying SoC.
    pub fn soc(&self) -> &Soc {
        &self.soc
    }

    /// Mutable access to the underlying SoC.
    pub fn soc_mut(&mut self) -> &mut Soc {
        &mut self.soc
    }

    /// Consumes the core, returning the SoC.
    pub(crate) fn into_soc(self) -> Soc {
        self.soc
    }

    /// The bitstream registry.
    pub fn registry(&self) -> &BitstreamRegistry {
        &self.registry
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// Mutable access to the aggregate statistics.
    pub(crate) fn stats_mut(&mut self) -> &mut ManagerStats {
        &mut self.stats
    }

    /// Hit/miss counters of the verified-bitstream cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Replaces the verified-bitstream cache (e.g. to change capacity).
    pub(crate) fn set_cache(&mut self, cache: BitstreamCache) {
        self.cache = cache;
    }

    /// The verified bitstream for `(tile, kind)`, served from the LRU
    /// cache when possible. A hit skips the registry's integrity re-check
    /// and is traced as [`TraceEvent::PbsCacheHit`] at cycle `at`; a miss
    /// pays the full verified lookup.
    ///
    /// # Errors
    ///
    /// Propagates [`BitstreamRegistry::lookup`] errors on the miss path.
    pub(crate) fn fetch_bitstream(
        &mut self,
        tile: TileCoord,
        kind: AcceleratorKind,
        at: u64,
    ) -> Result<Arc<Bitstream>, Error> {
        let (stream, hit) = self.cache.lookup(&self.registry, tile, kind)?;
        if hit {
            self.soc
                .tracer_mut()
                .instant(ClockDomain::SocCycles, at, || TraceEvent::PbsCacheHit {
                    tile: loc(tile),
                    kind: kind.name(),
                });
        }
        Ok(stream)
    }
}
