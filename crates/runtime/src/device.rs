//! The device core: the genuinely shared half of the sharded runtime.
//!
//! After the god-object split, everything whose consistency is *per-tile*
//! lives in a tile shard ([`crate::tile`]); what remains here is the
//! state every request on every tile contends for no matter how the
//! runtime is sharded: the SoC simulator (one ICAP/DFXC write port, one
//! configuration memory, one NoC and their shared virtual-time
//! timelines), the aggregate [`crate::manager::ManagerStats`], the
//! [`crate::registry::BitstreamRegistry`] and the
//! [`crate::cache::BitstreamCache`] fronting it.
//!
//! On the deterministic path the [`crate::manager::ReconfigManager`] owns
//! a `DeviceCore` directly; on the OS-threaded path the
//! [`crate::scheduler`] wraps it in a single mutex (label `"core"`) that
//! is held only for the serial ICAP/NoC portion of each request — the
//! short critical section the multi-worker scheduler is built around.

use crate::cache::{BitstreamCache, CacheStats};
use crate::error::Error;
use crate::manager::ManagerStats;
use crate::registry::BitstreamRegistry;
use crate::sync::Arc;
use presp_accel::catalog::AcceleratorKind;
use presp_events::trace::ClockDomain;
use presp_events::{Loc, SharedSink, TraceEvent};
use presp_floorplan::{FitPolicy, RegionAllocator};
use presp_fpga::bitstream::Bitstream;
use presp_soc::config::TileCoord;
use presp_soc::sim::Soc;
use std::fmt;

/// The tile's location as a trace record coordinate.
pub(crate) fn loc(coord: TileCoord) -> Loc {
    Loc::new(coord.row as u64, coord.col as u64)
}

/// The shared device resources: SoC, registry (+ verified-bitstream
/// cache) and aggregate statistics.
///
/// The registry is behind an `Arc` because it is immutable after boot:
/// the scheduler's workers read it lock-free during their prepare stage
/// while the core's copy serves the in-lock paths.
pub struct DeviceCore {
    soc: Soc,
    registry: Arc<BitstreamRegistry>,
    cache: BitstreamCache,
    stats: ManagerStats,
    /// Per-worker trace shards installed by the scheduler's sharded
    /// tracer; empty on the single-sink and deterministic paths.
    trace_shards: Vec<SharedSink>,
    /// The amorphous-floorplanning placement authority: `None` keeps the
    /// legacy fixed-socket behavior (bitstreams load exactly where they
    /// were built); `Some` routes every load through footprint → lease →
    /// relocation.
    allocator: Option<RegionAllocator>,
    /// Completed defragmentation moves, monotone. Compared against the
    /// per-tile oversized watermark to attribute an admit to a repack.
    repack_moves: u64,
}

impl fmt::Debug for DeviceCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeviceCore")
            .field("soc", &self.soc)
            .field("registry", &self.registry)
            .field("cache", &self.cache)
            .field("stats", &self.stats)
            .field("trace_shards", &self.trace_shards.len())
            .finish()
    }
}

impl DeviceCore {
    /// A core over a booted SoC and a loaded registry. `cache` fronts the
    /// registry's verified lookups; pass
    /// [`BitstreamCache::disabled`] to re-verify on every load.
    pub(crate) fn new(soc: Soc, registry: BitstreamRegistry, cache: BitstreamCache) -> DeviceCore {
        DeviceCore::new_shared(soc, Arc::new(registry), cache)
    }

    /// [`DeviceCore::new`] over a registry handle the caller keeps a
    /// clone of (the scheduler shares it with its workers' lock-free
    /// prepare stage).
    pub(crate) fn new_shared(
        soc: Soc,
        registry: Arc<BitstreamRegistry>,
        cache: BitstreamCache,
    ) -> DeviceCore {
        DeviceCore {
            soc,
            registry,
            cache,
            stats: ManagerStats::default(),
            trace_shards: Vec::new(),
            allocator: None,
            repack_moves: 0,
        }
    }

    /// Switches the core from fixed sockets to amorphous floorplanning:
    /// every subsequent load consults a [`RegionAllocator`] over the
    /// device's frame columns and relocates its bitstream into the leased
    /// span. Must be enabled before the first load — tiles already
    /// configured occupy fabric the fresh allocator would hand out again.
    ///
    /// # Errors
    ///
    /// Returns a [`presp_soc::Error::RegionConflict`] when any tile has
    /// already been loaded.
    pub(crate) fn enable_regions(
        &mut self,
        policy: FitPolicy,
        window: Option<std::ops::Range<u32>>,
    ) -> Result<(), Error> {
        for tile in self.soc.config().reconfigurable_tiles() {
            if !self.soc.tile_region(tile).is_empty() {
                return Err(Error::Soc(presp_soc::Error::RegionConflict {
                    coord: tile,
                    detail: "amorphous floorplanning must be enabled before the first load".into(),
                }));
            }
        }
        let device = self.soc.part().device();
        self.allocator = Some(match window {
            Some(range) => RegionAllocator::new_within(&device, policy, range),
            None => RegionAllocator::new(&device, policy),
        });
        Ok(())
    }

    /// The region allocator, when amorphous floorplanning is enabled.
    pub fn allocator(&self) -> Option<&RegionAllocator> {
        self.allocator.as_ref()
    }

    /// Mutable access to the region allocator.
    pub(crate) fn allocator_mut(&mut self) -> Option<&mut RegionAllocator> {
        self.allocator.as_mut()
    }

    /// Completed defragmentation moves so far.
    pub(crate) fn repack_moves(&self) -> u64 {
        self.repack_moves
    }

    /// Records one completed defragmentation move.
    pub(crate) fn record_repack_move(&mut self) {
        self.repack_moves += 1;
    }

    /// The underlying SoC.
    pub fn soc(&self) -> &Soc {
        &self.soc
    }

    /// Mutable access to the underlying SoC.
    pub fn soc_mut(&mut self) -> &mut Soc {
        &mut self.soc
    }

    /// Consumes the core, returning the SoC.
    pub(crate) fn into_soc(self) -> Soc {
        self.soc
    }

    /// The bitstream registry.
    pub fn registry(&self) -> &BitstreamRegistry {
        &self.registry
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// Mutable access to the aggregate statistics.
    pub(crate) fn stats_mut(&mut self) -> &mut ManagerStats {
        &mut self.stats
    }

    /// Hit/miss counters of the verified-bitstream cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Replaces the verified-bitstream cache (e.g. to change capacity).
    pub(crate) fn set_cache(&mut self, cache: BitstreamCache) {
        self.cache = cache;
    }

    /// Installs the scheduler's per-worker trace shards; worker `i`
    /// re-attaches its shard before each commit.
    pub(crate) fn set_trace_shards(&mut self, shards: Vec<SharedSink>) {
        self.trace_shards = shards;
    }

    /// Worker `i`'s trace shard, if sharded tracing is installed.
    pub(crate) fn trace_shard(&self, i: usize) -> Option<SharedSink> {
        if self.trace_shards.is_empty() {
            None
        } else {
            Some(self.trace_shards[i % self.trace_shards.len()].clone())
        }
    }

    /// The verified bitstream for `(tile, kind)`, served from the LRU
    /// cache when possible. A hit skips the registry's integrity re-check
    /// and is traced as [`TraceEvent::PbsCacheHit`] at cycle `at`; a miss
    /// pays the full verified lookup — or consumes `prepared`, a verified
    /// copy the caller fetched from the same registry ahead of time
    /// (outside the device-core lock). Cache behavior, stats and traces
    /// are byte-identical either way.
    ///
    /// # Errors
    ///
    /// Propagates [`BitstreamRegistry::lookup`] errors on the unprepared
    /// miss path.
    pub(crate) fn fetch_bitstream_with(
        &mut self,
        tile: TileCoord,
        kind: AcceleratorKind,
        at: u64,
        prepared: &mut Option<Arc<Bitstream>>,
    ) -> Result<Arc<Bitstream>, Error> {
        let (stream, hit) = self
            .cache
            .lookup_with(&self.registry, tile, kind, prepared)?;
        if hit {
            self.soc
                .tracer_mut()
                .instant(ClockDomain::SocCycles, at, || TraceEvent::PbsCacheHit {
                    tile: loc(tile),
                    kind: kind.name(),
                });
        }
        Ok(stream)
    }
}
