//! The online defragmenter daemon.
//!
//! Under amorphous floorplanning, churn fragments the managed column
//! window: enough columns are free for an oversized request, but no
//! contiguous span is. Real PR platforms answer this with bitstream
//! relocation — reload an idle module a few frames over and coalesce the
//! holes. This module is that daemon for the simulated stack: a
//! maintenance worker attached to the sharded
//! [`crate::scheduler::Scheduler`], sibling of the
//! [`crate::scrubber::ScrubberDaemon`].
//!
//! A repack pass is transactional per move and quiescent as a whole:
//!
//! 1. It takes the commit-order **gate** mutex for the whole pass.
//!    Workers acquire the gate before their shard + core commit critical
//!    section, so holding it keeps every lease exactly where the
//!    compaction plan saw it — no move can race a reconfiguration.
//! 2. The plan is computed under the device-core lock (the allocator's
//!    greedy left-slide compaction).
//! 3. Each move then takes the owning tile's shard lock and the core
//!    lock — the same `tile_state` → `core` order every worker and the
//!    scrubber use — and runs the protocol layer's `repack_move`:
//!    allocator first (validated against every live lease), fabric
//!    second (decouple → frame move → recouple), allocator rolled back
//!    if the fabric refuses. Quarantined owners are skipped.
//!
//! Like [`crate::threaded`], the daemon is generic over [`SyncFacade`]:
//! production uses `Defragmenter` (= `Defragmenter<StdSync>`), while the
//! model-check suites drive `Defragmenter<CheckSync>` through
//! `presp-check`'s schedule explorer — including a committed lock-order
//! mutant (`gate_inversion`) the checker must catch and replay.
//!
//! Lock order invariant: `defrag` → `gate` → `tile_state` → `core` for
//! the pass; [`Defragmenter::stats`] takes `defrag` alone (the pass
//! updates its counters under the same `defrag` guard it holds across
//! the whole pass, so a snapshot can never observe a half-counted pass).

use crate::error::Error;
use crate::manager::RepackReport;
use crate::protocol;
use crate::scheduler::Shared;
use crate::sync::{Arc, StdSync, SyncFacade, TryRecv};
use crate::threaded::ThreadedManager;
use presp_events::trace::ClockDomain;
use presp_events::TraceEvent;
use presp_soc::config::TileCoord;

/// Counters the daemon keeps across repack passes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefragStats {
    /// Completed repack passes.
    pub passes: u64,
    /// Passes whose compaction plan was empty (nothing to slide).
    pub idle_passes: u64,
    /// Region moves applied across all passes.
    pub moves: u64,
    /// Configuration frames physically relocated across all passes.
    pub frames_moved: u64,
    /// Planned moves skipped (owner quarantined, vanished, or refused).
    pub skipped: u64,
}

impl DefragStats {
    fn record(&mut self, report: &RepackReport) {
        self.passes += 1;
        if report.moves == 0 && report.skipped == 0 {
            self.idle_passes += 1;
        }
        self.moves += report.moves;
        self.frames_moved += report.frames_moved;
        self.skipped += report.skipped;
    }
}

/// Committed known-bad protocol variants for checker validation, mirroring
/// [`crate::scheduler::MutantConfig`]: all off by default; reachable from
/// the workspace test suites (hence `pub`) but hidden from the API surface.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, Default)]
pub struct DefragMutantConfig {
    /// The pass probes a shard's `tile_state` *before* taking the commit
    /// gate — the reverse of every worker's `gate` → `tile_state` commit
    /// acquisition. A worker inside its commit slot (gate held, shard
    /// lock pending) and the mutant pass (shard lock held, gate pending)
    /// deadlock.
    pub gate_inversion: bool,
}

/// A request travelling to the defrag worker.
enum DefragRequest<S: SyncFacade> {
    Repack {
        done: S::Sender<Result<RepackReport, Error>>,
    },
    Stop,
}

/// A background defragmenter attached to a [`ThreadedManager`].
///
/// # Example
///
/// ```no_run
/// # use presp_runtime::threaded::ThreadedManager;
/// # use presp_runtime::defrag::Defragmenter;
/// # use presp_runtime::registry::BitstreamRegistry;
/// # use presp_soc::{config::SocConfig, sim::Soc};
/// # use presp_floorplan::FitPolicy;
/// # fn demo() -> Result<(), presp_runtime::Error> {
/// let config = SocConfig::grid_3x3_reconf("demo", 1)?;
/// let soc = Soc::new(&config)?;
/// let manager = ThreadedManager::spawn(soc, BitstreamRegistry::new());
/// manager.enable_regions(FitPolicy::FirstFit)?;
/// let defrag = Defragmenter::attach(&manager);
/// let report = defrag.repack_blocking()?;
/// assert_eq!(report.skipped, 0);
/// defrag.shutdown();
/// manager.shutdown();
/// # Ok(()) }
/// ```
pub struct Defragmenter<S: SyncFacade = StdSync> {
    queue: S::Sender<DefragRequest<S>>,
    shared: Arc<Shared<S>>,
    defrag_stats: Arc<S::Mutex<DefragStats>>,
    defrag_worker: Arc<S::Mutex<Option<S::JoinHandle<()>>>>,
}

impl<S: SyncFacade> Clone for Defragmenter<S> {
    fn clone(&self) -> Defragmenter<S> {
        Defragmenter {
            queue: S::clone_sender(&self.queue),
            shared: Arc::clone(&self.shared),
            defrag_stats: Arc::clone(&self.defrag_stats),
            defrag_worker: Arc::clone(&self.defrag_worker),
        }
    }
}

impl<S: SyncFacade> Defragmenter<S> {
    /// Attaches a defragmenter to `manager`, spawning its worker thread.
    /// The daemon shares the manager's tile shards, commit gate and
    /// device core; repack passes serialize against worker commits via
    /// the gate. On the fixed-socket path (regions never enabled) every
    /// pass is an idle pass.
    pub fn attach(manager: &ThreadedManager<S>) -> Defragmenter<S> {
        Self::boot(manager, DefragMutantConfig::default())
    }

    /// Attaches with explicit mutants enabled — checker-validation only.
    #[doc(hidden)]
    pub fn attach_with_mutants(
        manager: &ThreadedManager<S>,
        mutants: DefragMutantConfig,
    ) -> Defragmenter<S> {
        Self::boot(manager, mutants)
    }

    fn boot(manager: &ThreadedManager<S>, mutants: DefragMutantConfig) -> Defragmenter<S> {
        let shared = Arc::clone(&manager.sched.shared);
        let defrag_stats = Arc::new(S::mutex_labeled("defrag", DefragStats::default()));
        let (tx, rx) = S::channel::<DefragRequest<S>>();
        let worker_shared = Arc::clone(&shared);
        let worker_defrag = Arc::clone(&defrag_stats);
        let handle = S::spawn("presp-defrag", move || {
            while let Some(request) = S::recv(&rx) {
                match request {
                    DefragRequest::Repack { done } => {
                        let result = if mutants.gate_inversion {
                            Self::repack_inverted(&worker_shared, &worker_defrag)
                        } else {
                            Self::repack_once(&worker_shared, &worker_defrag)
                        };
                        // A pass moves idle horizons: wake any thread
                        // parked on a tile completion so it re-checks.
                        for shard in worker_shared.shards.values() {
                            S::notify_all(&shard.reconfig_done);
                        }
                        let _ = S::send(&done, result);
                    }
                    DefragRequest::Stop => break,
                }
            }
            // Drain: answer every pending request before exiting, exactly
            // like the scheduler workers and the scrubber.
            loop {
                match S::try_recv(&rx) {
                    TryRecv::Value(DefragRequest::Repack { done }) => {
                        let _ = S::send(&done, Err(Error::ManagerStopped));
                    }
                    TryRecv::Value(DefragRequest::Stop) => {}
                    TryRecv::Empty | TryRecv::Disconnected => break,
                }
            }
        });
        Defragmenter {
            queue: tx,
            shared,
            defrag_stats,
            defrag_worker: Arc::new(S::mutex_labeled("defrag_worker", Some(handle))),
        }
    }

    /// The clean protocol: own counters held across the pass, then the
    /// gate-quiesced pass itself.
    fn repack_once(
        shared: &Shared<S>,
        defrag_stats: &S::Mutex<DefragStats>,
    ) -> Result<RepackReport, Error> {
        let mut counters = S::lock(defrag_stats);
        let report = Self::repack_pass(shared)?;
        counters.record(&report);
        Ok(report)
    }

    /// The known-bad variant for checker validation: a shard probe
    /// *before* the gate, inverting the workers' `gate` → `tile_state`
    /// commit order.
    fn repack_inverted(
        shared: &Shared<S>,
        defrag_stats: &S::Mutex<DefragStats>,
    ) -> Result<RepackReport, Error> {
        // MUTANT: every tile_state taken first, gate second — the
        // reverse of every worker's gate → tile_state commit
        // acquisition, so whichever shard a worker commits on is
        // already held when this thread blocks on the gate.
        let probes: Vec<_> = shared
            .shards
            .values()
            .map(|shard| S::lock(&shard.state)) // presp-analyze: mutant
            .collect();
        let quiesce = S::lock(&shared.gate); // presp-analyze: mutant
        drop(quiesce);
        drop(probes);
        Self::repack_once(shared, defrag_stats)
    }

    /// One gate-quiesced repack pass: plan under `core`, then one
    /// `tile_state` → `core` move at a time, all anchored at the pass's
    /// starting horizon like the deterministic manager's `repack_at`.
    fn repack_pass(shared: &Shared<S>) -> Result<RepackReport, Error> {
        // Quiesce commits: workers take the gate before their shard +
        // core critical section, so holding it pins every lease where
        // the compaction plan is about to observe it.
        let quiesced = S::lock(&shared.gate);
        let (at, plan) = {
            let core = S::lock(&shared.core);
            (core.soc().horizon(), protocol::plan_repack(&core))
        };
        let mut report = RepackReport::default();
        for mv in &plan {
            // Locate the owning shard by lease id — one shard lock at a
            // time, never two nested.
            let mut owner: Option<TileCoord> = None;
            for (tile, shard) in &shared.shards {
                let probe = S::lock(&shard.state);
                if probe.lease().is_some_and(|l| l.id == mv.id) {
                    owner = Some(*tile);
                }
            }
            let Some(tile) = owner else {
                report.skipped += 1;
                continue;
            };
            let Some(shard) = shared.shards.get(&tile) else {
                report.skipped += 1;
                continue;
            };
            let mut state = S::lock(&shard.state);
            if state.is_quarantined() {
                report.skipped += 1;
                continue;
            }
            let mut core = S::lock(&shared.core);
            match protocol::repack_move(&mut state, &mut core, mv, at) {
                Ok(frames) => {
                    report.moves += 1;
                    report.frames_moved += frames;
                }
                Err(_) => report.skipped += 1,
            }
        }
        {
            let mut core = S::lock(&shared.core);
            let now = core.soc().horizon().max(at);
            core.soc_mut()
                .tracer_mut()
                .instant(ClockDomain::SocCycles, now, || TraceEvent::DefragPass {
                    moves: report.moves,
                    frames: report.frames_moved,
                });
        }
        drop(quiesced);
        Ok(report)
    }

    /// Enqueues one repack pass and blocks for its report. A pass with
    /// nothing to slide returns a default (all-zero) report.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ManagerStopped`] after shutdown.
    pub fn repack_blocking(&self) -> Result<RepackReport, Error> {
        let (done_tx, done_rx) = S::channel();
        S::send(&self.queue, DefragRequest::Repack { done: done_tx })
            .map_err(|_| Error::ManagerStopped)?;
        S::recv(&done_rx).ok_or(Error::ManagerStopped)?
    }

    /// Daemon counters. Consistent by construction: the worker updates
    /// them under the same `defrag` guard it holds across the whole
    /// pass, so a snapshot never observes a half-counted pass.
    pub fn stats(&self) -> DefragStats {
        *S::lock(&self.defrag_stats)
    }

    /// Stops the defrag worker and joins it. Idempotent and tolerant of
    /// poisoned locks, like [`ThreadedManager::shutdown`].
    pub fn shutdown(&self) {
        let _ = S::send(&self.queue, DefragRequest::Stop);
        if let Some(handle) = S::lock_recover(&self.defrag_worker).take() {
            let _ = S::join(handle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::BitstreamRegistry;
    use presp_accel::catalog::AcceleratorKind;
    use presp_check::{CheckSync, Checker, Config, FailureKind};
    use presp_floorplan::FitPolicy;
    use presp_fpga::bitstream::{Bitstream, BitstreamBuilder, BitstreamKind};
    use presp_fpga::frame::FrameAddress;
    use presp_soc::config::SocConfig;
    use presp_soc::sim::Soc;

    fn bitstream(soc: &Soc, col: u32, frames: u32) -> Bitstream {
        let device = soc.part().device();
        let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
        let words = device.part().family().frame_words();
        for minor in 0..frames {
            b.add_frame(FrameAddress::new(0, col, minor), vec![col + minor; words])
                .unwrap();
        }
        b.build(true)
    }

    fn span_bitstream(soc: &Soc, cols: std::ops::Range<u32>, frames: u32) -> Bitstream {
        let device = soc.part().device();
        let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
        let words = device.part().family().frame_words();
        for col in cols {
            for minor in 0..frames {
                b.add_frame(FrameAddress::new(0, col, minor), vec![col + minor; words])
                    .unwrap();
            }
        }
        b.build(true)
    }

    /// The manager-side amorphous recipe (see `manager::tests`), driven
    /// end to end through the threaded scheduler and the daemon: seven
    /// 1-column loads pack the window, a swap opens non-adjacent holes,
    /// the 3-column request is refused, one daemon pass heals the
    /// fragmentation, and the retry is admitted and attributed.
    #[test]
    fn daemon_repack_turns_reject_into_admit() {
        let cfg = SocConfig::grid_reconf("defrag_daemon", 7).unwrap();
        let soc = Soc::new(&cfg).unwrap();
        let tiles = cfg.reconfigurable_tiles();
        let mut registry = BitstreamRegistry::new();
        for &tile in &tiles {
            registry
                .register(tile, AcceleratorKind::Mac, bitstream(&soc, 1, 4))
                .unwrap();
            registry
                .register(tile, AcceleratorKind::Sort, bitstream(&soc, 3, 4))
                .unwrap();
            registry
                .register(tile, AcceleratorKind::Gemm, span_bitstream(&soc, 7..10, 4))
                .unwrap();
        }
        let mgr = ThreadedManager::spawn(soc, registry);
        mgr.enable_regions_within(FitPolicy::FirstFit, 1..12)
            .unwrap();
        let defrag = Defragmenter::attach(&mgr);
        for &t in &tiles {
            mgr.reconfigure_blocking(t, AcceleratorKind::Mac).unwrap();
        }
        mgr.reconfigure_blocking(tiles[5], AcceleratorKind::Sort)
            .unwrap();
        let frag = mgr.fragmentation().unwrap();
        assert_eq!(frag.free_columns, 4);
        assert_eq!(frag.largest_free_span, 2);
        // Oversized: free columns exist, but no 3-wide span.
        let err = mgr.reconfigure_blocking(tiles[1], AcceleratorKind::Gemm);
        assert!(
            matches!(err, Err(Error::RegionUnavailable { width: 3, .. })),
            "{err:?}"
        );
        assert_eq!(mgr.stats().oversized_rejected, 1);
        let sched = mgr.scheduler_stats();
        assert_eq!(sched.free_columns, 4);
        assert_eq!(sched.largest_free_span, 2);
        assert!(sched.external_fragmentation > 0.0);
        // One daemon pass heals the fragmentation…
        let report = defrag.repack_blocking().unwrap();
        assert_eq!(report.moves, 1);
        assert_eq!(report.skipped, 0);
        assert!(report.frames_moved > 0);
        let stats = defrag.stats();
        assert_eq!(stats.passes, 1);
        assert_eq!(stats.moves, 1);
        assert_eq!(stats.idle_passes, 0);
        // …and the retry is admitted and attributed to the repack.
        mgr.reconfigure_blocking(tiles[1], AcceleratorKind::Gemm)
            .unwrap();
        let after = mgr.stats();
        assert_eq!(after.oversized_admitted, 1);
        assert_eq!(after.repack_admitted, 1);
        assert!(after.consistent());
        // Left behind: the vacated column 2 and the DSP column 6.
        assert_eq!(mgr.fragmentation().unwrap().free_columns, 2);
        assert_eq!(mgr.tile_lease(tiles[1]).unwrap().base, 9);
        defrag.shutdown();
        mgr.shutdown();
    }

    #[test]
    fn repack_without_regions_is_an_idle_pass() {
        let cfg = SocConfig::grid_3x3_reconf("defrag_idle", 1).unwrap();
        let soc = Soc::new(&cfg).unwrap();
        let mgr = ThreadedManager::spawn(soc, BitstreamRegistry::new());
        let defrag = Defragmenter::attach(&mgr);
        let report = defrag.repack_blocking().unwrap();
        assert_eq!(report, RepackReport::default());
        let stats = defrag.stats();
        assert_eq!((stats.passes, stats.idle_passes), (1, 1));
        defrag.shutdown();
        mgr.shutdown();
    }

    #[test]
    fn defrag_shutdown_is_idempotent_and_stops_requests() {
        let cfg = SocConfig::grid_3x3_reconf("defrag_stop", 1).unwrap();
        let soc = Soc::new(&cfg).unwrap();
        let mgr = ThreadedManager::spawn(soc, BitstreamRegistry::new());
        let defrag = Defragmenter::attach(&mgr);
        defrag.shutdown();
        defrag.shutdown();
        assert!(matches!(
            defrag.repack_blocking(),
            Err(Error::ManagerStopped)
        ));
        mgr.shutdown();
    }

    #[test]
    fn repacking_under_reconfiguration_load_stays_consistent() {
        let cfg = SocConfig::grid_3x3_reconf("defrag_load", 2).unwrap();
        let soc = Soc::new(&cfg).unwrap();
        let tiles = cfg.reconfigurable_tiles();
        let mut registry = BitstreamRegistry::new();
        for &tile in &tiles {
            registry
                .register(tile, AcceleratorKind::Mac, bitstream(&soc, 1, 2))
                .unwrap();
            registry
                .register(tile, AcceleratorKind::Sort, bitstream(&soc, 2, 2))
                .unwrap();
        }
        let mgr = ThreadedManager::spawn(soc, registry);
        mgr.enable_regions(FitPolicy::FirstFit).unwrap();
        let defrag = Defragmenter::attach(&mgr);
        let swapper = {
            let mgr = mgr.clone();
            let tiles = tiles.clone();
            std::thread::spawn(move || {
                for i in 0..10 {
                    let kind = if i % 2 == 0 {
                        AcceleratorKind::Mac
                    } else {
                        AcceleratorKind::Sort
                    };
                    for &t in &tiles {
                        let _ = mgr.reconfigure_blocking(t, kind);
                    }
                }
            })
        };
        for _ in 0..10 {
            defrag.repack_blocking().unwrap();
        }
        swapper.join().unwrap();
        assert_eq!(defrag.stats().passes, 10);
        assert!(mgr.stats().consistent());
        defrag.shutdown();
        mgr.shutdown();
    }

    // ---- model-checked protocol (CheckSync) ---------------------------

    fn boot_checked(
        mutants: DefragMutantConfig,
    ) -> (
        ThreadedManager<CheckSync>,
        Defragmenter<CheckSync>,
        presp_soc::config::TileCoord,
    ) {
        let cfg = SocConfig::grid_3x3_reconf("defrag_model", 1).unwrap();
        let soc = Soc::new(&cfg).unwrap();
        let tile = cfg.reconfigurable_tiles()[0];
        let mut registry = BitstreamRegistry::new();
        registry
            .register(tile, AcceleratorKind::Mac, bitstream(&soc, 2, 1))
            .unwrap();
        let mgr = ThreadedManager::<CheckSync>::spawn_with_policy(
            soc,
            registry,
            crate::manager::RecoveryPolicy::default(),
        );
        let defrag = Defragmenter::attach_with_mutants(&mgr, mutants);
        (mgr, defrag, tile)
    }

    fn mutant_checker() -> Checker {
        Checker::new(Config {
            max_schedules: 5_000,
            preemption_bound: Some(2),
            max_steps: 20_000,
        })
    }

    fn gate_inversion_model() {
        let (mgr, defrag, tile) = boot_checked(DefragMutantConfig {
            gate_inversion: true,
        });
        // A worker commits under gate → tile_state while the mutant pass
        // probes tile_state → gate on the same shard.
        let submitter = mgr.clone();
        let s = presp_check::sync::spawn_named("reconf_caller", move || {
            let _ = submitter.reconfigure_blocking(tile, AcceleratorKind::Mac);
        });
        let worker = defrag.clone();
        let d = presp_check::sync::spawn_named("defrag_caller", move || {
            let _ = worker.repack_blocking();
        });
        d.join().unwrap();
        s.join().unwrap();
        defrag.shutdown();
        mgr.shutdown();
    }

    #[test]
    fn checker_catches_defrag_gate_inversion_mutant() {
        let report = mutant_checker().explore(gate_inversion_model);
        let failure = report
            .failure
            .expect("the defrag gate-inversion mutant must deadlock some schedule");
        assert!(
            matches!(failure.kind, FailureKind::Deadlock { .. }),
            "expected deadlock, got: {failure}"
        );
        let replay = mutant_checker().replay(&failure.schedule, gate_inversion_model);
        assert!(
            matches!(
                replay.failure.as_ref().map(|f| &f.kind),
                Some(FailureKind::Deadlock { .. })
            ),
            "replay must reproduce the deadlock: {replay}"
        );
    }

    #[test]
    fn clean_defrag_protocol_explores_without_findings() {
        // Defragmenter + scheduler, mutants off: a quick bounded sweep
        // here; the 10k-schedule sweep lives in the workspace-level
        // model_check suite.
        let report = Checker::new(Config {
            max_schedules: 500,
            preemption_bound: Some(2),
            max_steps: 20_000,
        })
        .explore(|| {
            let (mgr, defrag, tile) = boot_checked(DefragMutantConfig::default());
            mgr.enable_regions(FitPolicy::FirstFit).unwrap();
            let submitter = mgr.clone();
            let s = presp_check::sync::spawn_named("reconf_caller", move || {
                let _ = submitter.reconfigure_blocking(tile, AcceleratorKind::Mac);
            });
            let worker = defrag.clone();
            let d = presp_check::sync::spawn_named("defrag_caller", move || {
                let _ = worker.repack_blocking();
            });
            let _snapshot = defrag.stats();
            d.join().unwrap();
            s.join().unwrap();
            defrag.shutdown();
            mgr.shutdown();
        });
        assert!(report.ok(), "{report}");
    }
}
