//! The WAMI application scheduler.
//!
//! Maps the Fig. 3 dataflow onto a partially reconfigurable SoC given a
//! kernel→tile allocation (Table VI). Kernels without an allocation run in
//! software on the CPU tile (the only consistent reading of the paper's
//! SoC_X/SoC_Y rows, which omit some kernel indices). Each frame executes
//! the full pipeline: sensor-front-end, template-side Lucas-Kanade
//! precomputation, a fixed number of Gauss-Newton iterations, the final
//! warp and Gaussian-mixture change detection — with real image data, so
//! outputs are bit-identical to [`presp_wami::pipeline`] under the same
//! solver settings.
//!
//! Reconfigurations are *prefetched*: a tile's next accelerator is
//! requested as soon as the tile goes idle, not when the input data is
//! ready, letting SoCs with more tiles hide reconfiguration latency behind
//! other tiles' compute — the paper's "interleaved" reconfiguration.

use crate::error::Error;
use crate::manager::ReconfigManager;
use presp_accel::catalog::AcceleratorKind;
use presp_accel::{AccelOp, AccelValue};
use presp_events::trace::ClockDomain;
use presp_events::TraceEvent;
use presp_soc::config::TileCoord;
use presp_wami::change_detection::{ChangeDetector, GmmConfig};
use presp_wami::graph::WamiKernel;
use presp_wami::image::{BayerImage, GrayImage};
use presp_wami::warp::AffineParams;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A kernel→tile allocation (one Table VI column).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WamiAllocation {
    map: BTreeMap<WamiKernel, TileCoord>,
}

impl WamiAllocation {
    /// Builds an allocation from `(tile, kernel indices)` rows, e.g.
    /// Table VI's SoC_Y: `[(rt1, &[1, 3, 7, 12]), (rt2, &[2, 6, 8]), (rt3, &[4, 9, 10])]`.
    ///
    /// # Panics
    ///
    /// Panics on kernel indices outside `1..=12` or an index allocated to
    /// two tiles.
    pub fn from_rows(rows: &[(TileCoord, &[usize])]) -> WamiAllocation {
        let mut map = BTreeMap::new();
        for (tile, indices) in rows {
            for &i in *indices {
                let kernel =
                    WamiKernel::from_index(i).unwrap_or_else(|| panic!("bad kernel index {i}"));
                assert!(
                    map.insert(kernel, *tile).is_none(),
                    "kernel #{i} allocated twice"
                );
            }
        }
        WamiAllocation { map }
    }

    /// The tile a kernel is allocated to (`None` → CPU fallback).
    pub fn tile_for(&self, kernel: WamiKernel) -> Option<TileCoord> {
        self.map.get(&kernel).copied()
    }

    /// All kernels allocated to `tile`.
    pub fn kernels_on(&self, tile: TileCoord) -> Vec<WamiKernel> {
        self.map
            .iter()
            .filter(|(_, t)| **t == tile)
            .map(|(k, _)| *k)
            .collect()
    }

    /// Kernels with no tile (CPU fallback).
    pub fn unallocated(&self) -> Vec<WamiKernel> {
        WamiKernel::ALL
            .iter()
            .copied()
            .filter(|k| !self.map.contains_key(k))
            .collect()
    }

    /// Distinct tiles used by this allocation.
    pub fn tiles(&self) -> Vec<TileCoord> {
        let mut tiles: Vec<TileCoord> = self.map.values().copied().collect();
        tiles.sort_unstable();
        tiles.dedup();
        tiles
    }
}

/// Per-frame report of an accelerated WAMI run.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameReport {
    /// Pixels flagged as changed.
    pub changed_pixels: usize,
    /// Registration warp for this frame (`None` for the first frame).
    pub registration: Option<AffineParams>,
    /// Cycle the frame's processing started.
    pub start: u64,
    /// Cycle the frame's processing finished.
    pub end: u64,
    /// Reconfigurations triggered while processing this frame.
    pub reconfigurations: u64,
    /// Cycles spent in those reconfigurations (tile-blocking time).
    pub reconfig_cycles: u64,
    /// Allocated kernels that degraded to the CPU software path this frame
    /// (quarantined tile, exhausted retries, or missing bitstream).
    pub cpu_fallbacks: u64,
}

impl FrameReport {
    /// Frame latency in cycles.
    pub fn latency(&self) -> u64 {
        self.end - self.start
    }
}

/// Per-frame accounting accumulated across `exec` calls.
#[derive(Debug, Default)]
struct FrameStats {
    reconfigurations: u64,
    reconfig_cycles: u64,
    cpu_fallbacks: u64,
}

/// A deployed WAMI application: SoC + manager + allocation + LK settings.
#[derive(Debug)]
pub struct WamiApp {
    manager: ReconfigManager,
    allocation: WamiAllocation,
    lk_iterations: usize,
    border_margin: usize,
    prefetch: bool,
    template: Option<GrayImage>,
    detector: Option<Box<ChangeDetector>>,
    frames: usize,
}

impl WamiApp {
    /// Deploys the application.
    ///
    /// `lk_iterations` fixes the Gauss-Newton iteration count per frame
    /// (fixed for timing comparability across SoCs).
    pub fn new(
        manager: ReconfigManager,
        allocation: WamiAllocation,
        lk_iterations: usize,
    ) -> WamiApp {
        WamiApp {
            manager,
            allocation,
            lk_iterations,
            border_margin: 4,
            prefetch: true,
            template: None,
            detector: None,
            frames: 0,
        }
    }

    /// Enables or disables prefetch reconfiguration (enabled by default).
    ///
    /// With prefetch off, a tile's reconfiguration is requested only when
    /// the kernel's input data is ready — the paper's "non-interleaved"
    /// reconfiguration, which exposes the full DPR latency on the critical
    /// path. The ablation benches compare both modes.
    pub fn with_prefetch(mut self, prefetch: bool) -> WamiApp {
        self.prefetch = prefetch;
        self
    }

    /// The underlying manager (for stats inspection).
    pub fn manager(&self) -> &ReconfigManager {
        &self.manager
    }

    /// Mutable access to the manager (e.g. to arm a fault plan on the SoC
    /// or swap the recovery policy).
    pub fn manager_mut(&mut self) -> &mut ReconfigManager {
        &mut self.manager
    }

    /// Consumes the app, returning the manager (and through it the SoC).
    pub fn into_manager(self) -> ReconfigManager {
        self.manager
    }

    /// Frames processed so far.
    pub fn frames_processed(&self) -> usize {
        self.frames
    }

    /// Executes `kernel`'s `op` with inputs ready at `ready`; returns the
    /// value and completion cycle.
    ///
    /// If the accelerator path is unavailable for a degradable reason
    /// (quarantined tile, exhausted reconfiguration retries, missing
    /// bitstream), the kernel degrades to the CPU software path so the
    /// frame still completes; the software kernels are bit-identical, only
    /// timing changes.
    fn exec(
        &mut self,
        kernel: WamiKernel,
        op: AccelOp,
        ready: u64,
        frame_stats: &mut FrameStats,
    ) -> Result<(AccelValue, u64), Error> {
        let (value, end) = 'run: {
            match self.allocation.tile_for(kernel) {
                Some(tile) => {
                    // Prefetch: the reconfiguration request is issued at the
                    // tile's idle time, independent of `ready`; non-interleaved
                    // mode waits for the data to be ready first.
                    let request_at = if self.prefetch {
                        self.manager.tile_idle_at(tile)
                    } else {
                        ready.max(self.manager.tile_idle_at(tile))
                    };
                    match self.manager.request_reconfiguration_at(
                        tile,
                        AcceleratorKind::Wami(kernel),
                        request_at,
                    ) {
                        Ok(Some(reconf)) => {
                            frame_stats.reconfigurations += 1;
                            frame_stats.reconfig_cycles += reconf.latency();
                        }
                        Ok(None) => {}
                        Err(e) if e.is_degradable() => {
                            frame_stats.cpu_fallbacks += 1;
                            let at = ready.max(self.manager.tile_idle_at(tile));
                            let run = self.manager.run_on_cpu_at(&op, at)?;
                            break 'run (run.value, run.end);
                        }
                        Err(e) => return Err(e),
                    }
                    let run = self.manager.run_at(tile, &op, ready)?;
                    (run.value, run.end)
                }
                None => {
                    let run = self.manager.run_on_cpu_at(&op, ready)?;
                    (run.value, run.end)
                }
            }
        };
        let frame = self.frames as u64;
        self.manager.soc_mut().tracer_mut().emit(
            ClockDomain::SocCycles,
            ready,
            end.saturating_sub(ready),
            || TraceEvent::FrameStage {
                frame,
                stage: kernel.name().to_string(),
            },
        );
        Ok((value, end))
    }

    /// Processes one raw Bayer frame through the full accelerated dataflow.
    ///
    /// # Errors
    ///
    /// Propagates manager and kernel errors (e.g. a singular Hessian on a
    /// featureless frame).
    pub fn process_frame(&mut self, raw: &BayerImage) -> Result<FrameReport, Error> {
        use WamiKernel::*;
        let start = self.manager.makespan();
        let mut stats = FrameStats::default();

        // Sensor front-end: #1 debayer → #2 grayscale.
        let (rgb, t_rgb) = match self.exec(
            Debayer,
            AccelOp::Debayer { raw: raw.clone() },
            start,
            &mut stats,
        )? {
            (AccelValue::Rgb(rgb), t) => (rgb, t),
            (other, _) => unreachable!("debayer returned {other:?}"),
        };
        let (gray, t_gray) =
            match self.exec(Grayscale, AccelOp::Grayscale { rgb }, t_rgb, &mut stats)? {
                (AccelValue::Image(g), t) => (g, t),
                (other, _) => unreachable!("grayscale returned {other:?}"),
            };
        let (w, h) = gray.dims();

        let mut registration = None;
        let mut aligned = gray.clone();
        let mut t_aligned = t_gray;

        if let Some(template) = self.template.clone() {
            // Template-side precomputation (#3, #6, #7, #9) — independent of
            // the current frame's front-end, so it starts at frame start.
            let (grads, t3) = match self.exec(
                Gradient,
                AccelOp::Gradient {
                    image: template.clone(),
                },
                start,
                &mut stats,
            )? {
                (AccelValue::Gradients(g), t) => (g, t),
                (other, _) => unreachable!("gradient returned {other:?}"),
            };
            // Driver-side border masking (see presp_wami::lucas_kanade):
            // warping samples clamped borders, so the solve excludes a band.
            let mut grads = grads;
            mask_border(&mut grads.dx, self.border_margin);
            mask_border(&mut grads.dy, self.border_margin);
            let (sd, t6) = match self.exec(
                SteepestDescent,
                AccelOp::SteepestDescent { grad: grads },
                t3,
                &mut stats,
            )? {
                (AccelValue::Sd(sd), t) => (sd, t),
                (other, _) => unreachable!("steepest-descent returned {other:?}"),
            };
            let (hess, t7) =
                match self.exec(Hessian, AccelOp::Hessian { sd: sd.clone() }, t6, &mut stats)? {
                    (AccelValue::Mat(m), t) => (m, t),
                    (other, _) => unreachable!("hessian returned {other:?}"),
                };
            let (h_inv, t9) = match self.exec(
                MatrixInvert,
                AccelOp::MatrixInvert { m: hess },
                t7,
                &mut stats,
            )? {
                (AccelValue::Mat(m), t) => (m, t),
                (other, _) => unreachable!("matrix-invert returned {other:?}"),
            };

            // Gauss-Newton loop (#4, #5, #8, #10).
            let mut params = AffineParams::identity();
            let mut t_loop = t9.max(t_gray);
            for _ in 0..self.lk_iterations {
                let (warped, t4) = match self.exec(
                    Warp,
                    AccelOp::Warp {
                        image: gray.clone(),
                        params,
                    },
                    t_loop,
                    &mut stats,
                )? {
                    (AccelValue::Image(img), t) => (img, t),
                    (other, _) => unreachable!("warp returned {other:?}"),
                };
                let (error, t5) = match self.exec(
                    Subtract,
                    AccelOp::Subtract {
                        a: warped,
                        b: template.clone(),
                    },
                    t4,
                    &mut stats,
                )? {
                    (AccelValue::Image(img), t) => (img, t),
                    (other, _) => unreachable!("subtract returned {other:?}"),
                };
                let (b, t8) = match self.exec(
                    SdUpdate,
                    AccelOp::SdUpdate {
                        sd: sd.clone(),
                        error,
                    },
                    t5,
                    &mut stats,
                )? {
                    (AccelValue::Vec6(v), t) => (v, t),
                    (other, _) => unreachable!("sd-update returned {other:?}"),
                };
                let (new_params, t10) = match self.exec(
                    DeltaP,
                    AccelOp::DeltaP { h_inv, b, params },
                    t8,
                    &mut stats,
                )? {
                    (AccelValue::Params(p), t) => (p, t),
                    (other, _) => unreachable!("delta-p returned {other:?}"),
                };
                params = new_params;
                t_loop = t10;
            }

            // Final warp (#11) with the converged parameters.
            let (final_warp, t11) = match self.exec(
                WarpIwxp,
                AccelOp::Warp {
                    image: gray.clone(),
                    params,
                },
                t_loop,
                &mut stats,
            )? {
                (AccelValue::Image(img), t) => (img, t),
                (other, _) => unreachable!("warp-iwxp returned {other:?}"),
            };
            aligned = final_warp;
            t_aligned = t11;
            registration = Some(params);
        }

        // Change detection (#12) against the DRAM-resident model.
        let model = self
            .detector
            .take()
            .unwrap_or_else(|| Box::new(ChangeDetector::new(w, h, GmmConfig::default())));
        let (changed, t12) = match self.exec(
            ChangeDetection,
            AccelOp::ChangeDetection {
                frame: aligned,
                model,
            },
            t_aligned,
            &mut stats,
        )? {
            (AccelValue::ChangeDetection { changed, model }, t) => {
                self.detector = Some(model);
                (changed, t)
            }
            (other, _) => unreachable!("change-detection returned {other:?}"),
        };

        let frame = self.frames as u64;
        self.manager.soc_mut().tracer_mut().emit(
            ClockDomain::SocCycles,
            start,
            t12.saturating_sub(start),
            || TraceEvent::FrameDone {
                frame,
                reconfigurations: stats.reconfigurations,
            },
        );

        self.template = Some(gray);
        self.frames += 1;
        Ok(FrameReport {
            changed_pixels: changed,
            registration,
            start,
            end: t12,
            reconfigurations: stats.reconfigurations,
            reconfig_cycles: stats.reconfig_cycles,
            cpu_fallbacks: stats.cpu_fallbacks,
        })
    }
}

/// Zeroes a `margin`-pixel border band of an image.
fn mask_border(img: &mut GrayImage, margin: usize) {
    let (w, h) = img.dims();
    if margin == 0 || w <= 2 * margin || h <= 2 * margin {
        return;
    }
    for y in 0..h {
        for x in 0..w {
            if x < margin || y < margin || x >= w - margin || y >= h - margin {
                img.set(x, y, 0.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::BitstreamRegistry;
    use presp_fpga::bitstream::{Bitstream, BitstreamBuilder, BitstreamKind};
    use presp_fpga::frame::FrameAddress;
    use presp_soc::config::SocConfig;
    use presp_soc::sim::Soc;
    use presp_wami::frames::SceneGenerator;

    fn bitstream(soc: &Soc, seed: u32) -> Bitstream {
        let device = soc.part().device();
        let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
        let words = device.part().family().frame_words();
        for minor in 0..6 {
            b.add_frame(
                FrameAddress::new((seed / 64) % 7, 1 + seed % 64, minor),
                vec![seed + minor; words],
            )
            .unwrap();
        }
        b.build(true)
    }

    /// A two-reconfigurable-tile deployment shaped like the paper's SoC_X.
    fn soc_x_app(lk_iterations: usize) -> WamiApp {
        let cfg = SocConfig::grid_3x3_reconf("soc_x", 2).unwrap();
        let soc = Soc::new(&cfg).unwrap();
        let rts = cfg.reconfigurable_tiles();
        let allocation = WamiAllocation::from_rows(&[
            (rts[0], &[1, 4, 9, 10, 8][..]),
            (rts[1], &[2, 3, 6, 7, 11][..]),
        ]);
        let mut registry = BitstreamRegistry::new();
        let mut seed = 1u32;
        for (tile, kernels) in [(rts[0], [1usize, 4, 9, 10, 8]), (rts[1], [2, 3, 6, 7, 11])] {
            for k in kernels {
                registry
                    .register(
                        tile,
                        AcceleratorKind::wami(k).unwrap(),
                        bitstream(&soc, seed),
                    )
                    .unwrap();
                seed += 97;
            }
        }
        WamiApp::new(
            ReconfigManager::new(soc, registry),
            allocation,
            lk_iterations,
        )
    }

    #[test]
    fn allocation_bookkeeping() {
        let rt1 = TileCoord::new(1, 0);
        let rt2 = TileCoord::new(1, 1);
        let alloc = WamiAllocation::from_rows(&[(rt1, &[1, 4][..]), (rt2, &[2][..])]);
        assert_eq!(alloc.tile_for(WamiKernel::Debayer), Some(rt1));
        assert_eq!(alloc.tile_for(WamiKernel::Grayscale), Some(rt2));
        assert_eq!(alloc.tile_for(WamiKernel::ChangeDetection), None);
        assert_eq!(alloc.kernels_on(rt1).len(), 2);
        assert_eq!(alloc.unallocated().len(), 9);
        assert_eq!(alloc.tiles(), vec![rt1, rt2]);
    }

    #[test]
    #[should_panic(expected = "allocated twice")]
    fn duplicate_allocation_panics() {
        let t = TileCoord::new(0, 0);
        WamiAllocation::from_rows(&[(t, &[1][..]), (t, &[1][..])]);
    }

    #[test]
    fn first_frame_runs_front_end_and_cd_only() {
        let mut app = soc_x_app(2);
        let mut scene = SceneGenerator::new(32, 32, 5);
        let report = app.process_frame(&scene.next_frame()).unwrap();
        assert!(report.registration.is_none());
        assert_eq!(report.changed_pixels, 0);
        // Debayer + grayscale were reconfigured in (CD runs on the CPU).
        assert!(report.reconfigurations >= 2);
        assert!(report.end > report.start);
    }

    #[test]
    fn accelerated_app_matches_software_pipeline() {
        use presp_wami::lucas_kanade::LkConfig;
        use presp_wami::pipeline::{Pipeline, PipelineConfig};
        let iterations = 3;
        let mut app = soc_x_app(iterations);
        // epsilon = 0 forces the software solver to run exactly
        // `iterations` Gauss-Newton steps, like the fixed-count app.
        let mut sw = Pipeline::new(PipelineConfig {
            lk: LkConfig {
                max_iterations: iterations,
                epsilon: 0.0,
                border_margin: 4,
            },
            gmm: GmmConfig::default(),
        });
        let mut scene = SceneGenerator::new(32, 32, 9);
        for _ in 0..4 {
            let frame = scene.next_frame();
            let hw = app.process_frame(&frame).unwrap();
            let sw_out = sw.process(&frame).unwrap();
            assert_eq!(
                hw.changed_pixels, sw_out.changed_pixels,
                "CD outputs diverged"
            );
            match (&hw.registration, &sw_out.registration) {
                (None, None) => {}
                (Some(p), Some(reg)) => {
                    for i in 0..6 {
                        assert!(
                            (p.p[i] - reg.params.p[i]).abs() < 1e-9,
                            "param {i}: {} vs {}",
                            p.p[i],
                            reg.params.p[i]
                        );
                    }
                }
                other => panic!("registration presence diverged: {other:?}"),
            }
        }
    }

    #[test]
    fn prefetch_never_slows_a_frame_down() {
        let run = |prefetch: bool| -> u64 {
            let mut app = soc_x_app(2).with_prefetch(prefetch);
            let mut scene = SceneGenerator::new(32, 32, 13);
            let mut total = 0;
            for _ in 0..3 {
                total += app.process_frame(&scene.next_frame()).unwrap().latency();
            }
            total
        };
        let with = run(true);
        let without = run(false);
        assert!(
            with <= without,
            "prefetch {with} vs non-interleaved {without}"
        );
    }

    #[test]
    fn frames_progress_in_time_and_reconfigure() {
        let mut app = soc_x_app(1);
        let mut scene = SceneGenerator::new(32, 32, 3);
        let r1 = app.process_frame(&scene.next_frame()).unwrap();
        let r2 = app.process_frame(&scene.next_frame()).unwrap();
        assert!(r2.start >= r1.end, "no frame pipelining");
        // Frame 2 exercises the full LK chain: many swaps on two tiles.
        assert!(r2.reconfigurations > r1.reconfigurations);
        assert_eq!(app.frames_processed(), 2);
    }
}
