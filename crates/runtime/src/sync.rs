//! The runtime's single doorway to synchronization primitives.
//!
//! Concurrency-bearing runtime code is written against
//! [`SyncFacade`] and instantiated with [`StdSync`] in production and
//! [`CheckSync`] under the `presp-check` model checker — the same
//! protocol source is shipped and explored. This module is the one place
//! in `presp-runtime` allowed to name `std::sync` / `std::thread`
//! directly; `presp-lint` enforces that everywhere else goes through it.

pub use presp_check::facade::{CheckSync, StdSync, SyncFacade, TryRecv};

// `Arc` is pure reference counting with no scheduling-visible blocking,
// so both worlds share the std type.
pub use std::sync::Arc;
