//! The configuration-memory scrubber daemon.
//!
//! Real DPR systems run a background scrubber (Xilinx SEM, or a soft SEU
//! controller) that walks configuration frames through the ICAP readback
//! port, repairs single-bit upsets with the per-frame ECC, and raises an
//! alarm on uncorrectable damage. This module is that daemon for the
//! simulated stack: a maintenance worker attached to the sharded
//! [`crate::scheduler::Scheduler`]. A scrub pass takes the target tile's
//! shard lock and then the device-core lock — the same `tile_state` →
//! `core` order every scheduler worker commits under — so scrub passes
//! and reconfiguration requests serialize on the shared ICAP exactly like
//! two kernel work items contending for one PRC. Scrubs are maintenance,
//! not requests: they bypass the admission queue and the ticket gate.
//!
//! Like [`crate::threaded`], the daemon is generic over [`SyncFacade`]:
//! production uses `ScrubberDaemon` (= `ScrubberDaemon<StdSync>`), while
//! the model-check suites drive `ScrubberDaemon<CheckSync>` through
//! `presp-check`'s schedule explorer — including a committed lock-order
//! mutant the checker must catch and replay.
//!
//! Lock order invariant: `tile_state` → `core` for the pass itself, and
//! `core` → `scrub_stats` for consistent snapshots; the worker updates
//! its own counters only *after* releasing the device locks.

use crate::error::Error;
use crate::protocol;
use crate::scheduler::Shared;
use crate::sync::{Arc, StdSync, SyncFacade, TryRecv};
use crate::threaded::ThreadedManager;
use presp_soc::config::TileCoord;
use presp_soc::sim::ScrubReport;

/// Counters the daemon keeps across scrub passes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubberStats {
    /// Completed scrub passes (one per scrubbed tile).
    pub passes: u64,
    /// Passes that found nothing to repair.
    pub clean_passes: u64,
    /// Frames whose single-bit upsets the ECC corrected.
    pub frames_repaired: u64,
    /// Passes that hit an uncorrectable (double-bit) frame and left the
    /// tile quarantined.
    pub quarantines: u64,
}

impl ScrubberStats {
    fn record(&mut self, report: &ScrubReport) {
        self.passes += 1;
        if report.is_clean() {
            self.clean_passes += 1;
        }
        self.frames_repaired += report.corrected.len() as u64;
        if !report.uncorrectable.is_empty() {
            self.quarantines += 1;
        }
    }
}

/// Committed known-bad protocol variants for checker validation, mirroring
/// [`crate::scheduler`]'s mutants: off by default, compiled only into this
/// crate's own test build.
#[cfg(test)]
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ScrubMutantConfig {
    /// The scrub worker acquires `scrub_stats` → `tile_state` → `core`
    /// (updating its counters *inside* one big critical section) while
    /// [`ScrubberDaemon::stats`] acquires `core` → `scrub_stats`: a
    /// lock-order inversion across the two threads.
    pub lock_inversion: bool,
}

/// A request travelling to the scrub worker.
enum ScrubRequest<S: SyncFacade> {
    Scrub {
        tile: TileCoord,
        done: S::Sender<Result<ScrubReport, Error>>,
    },
    ScrubAll {
        done: S::Sender<Result<Vec<(TileCoord, ScrubReport)>, Error>>,
    },
    Stop,
}

/// A background scrubber attached to a [`ThreadedManager`].
///
/// # Example
///
/// ```no_run
/// # use presp_runtime::threaded::ThreadedManager;
/// # use presp_runtime::scrubber::ScrubberDaemon;
/// # use presp_runtime::registry::BitstreamRegistry;
/// # use presp_soc::{config::SocConfig, sim::Soc};
/// # use presp_accel::AcceleratorKind;
/// # fn demo() -> Result<(), presp_runtime::Error> {
/// let config = SocConfig::grid_3x3_reconf("demo", 1)?;
/// let soc = Soc::new(&config)?;
/// let manager = ThreadedManager::spawn(soc, BitstreamRegistry::new());
/// let scrubber = ScrubberDaemon::attach(&manager);
/// let tile = config.reconfigurable_tiles()[0];
/// manager.reconfigure_blocking(tile, AcceleratorKind::Mac)?;
/// let report = scrubber.scrub_blocking(tile)?;
/// assert!(report.is_clean());
/// scrubber.shutdown();
/// manager.shutdown();
/// # Ok(()) }
/// ```
pub struct ScrubberDaemon<S: SyncFacade = StdSync> {
    queue: S::Sender<ScrubRequest<S>>,
    shared: Arc<Shared<S>>,
    stats: Arc<S::Mutex<ScrubberStats>>,
    worker: Arc<S::Mutex<Option<S::JoinHandle<()>>>>,
}

impl<S: SyncFacade> Clone for ScrubberDaemon<S> {
    fn clone(&self) -> ScrubberDaemon<S> {
        ScrubberDaemon {
            queue: S::clone_sender(&self.queue),
            shared: Arc::clone(&self.shared),
            stats: Arc::clone(&self.stats),
            worker: Arc::clone(&self.worker),
        }
    }
}

impl<S: SyncFacade> ScrubberDaemon<S> {
    /// Attaches a scrubber to `manager`, spawning its worker thread. The
    /// daemon shares the manager's tile shards and device core; scrubs
    /// interleave safely with reconfigurations and accelerator runs.
    pub fn attach(manager: &ThreadedManager<S>) -> ScrubberDaemon<S> {
        Self::boot(
            manager,
            #[cfg(test)]
            ScrubMutantConfig::default(),
        )
    }

    /// Attaches with explicit mutants enabled — checker-validation only.
    #[cfg(test)]
    pub(crate) fn attach_with_mutants(
        manager: &ThreadedManager<S>,
        mutants: ScrubMutantConfig,
    ) -> ScrubberDaemon<S> {
        Self::boot(manager, mutants)
    }

    fn boot(
        manager: &ThreadedManager<S>,
        #[cfg(test)] mutants: ScrubMutantConfig,
    ) -> ScrubberDaemon<S> {
        let shared = Arc::clone(&manager.sched.shared);
        let stats = Arc::new(S::mutex_labeled("scrub_stats", ScrubberStats::default()));
        let (tx, rx) = S::channel::<ScrubRequest<S>>();
        let worker_shared = Arc::clone(&shared);
        let worker_stats = Arc::clone(&stats);
        let handle = S::spawn("presp-scrubber", move || {
            while let Some(request) = S::recv(&rx) {
                match request {
                    ScrubRequest::Scrub { tile, done } => {
                        #[cfg(test)]
                        let result = if mutants.lock_inversion {
                            // MUTANT: counters updated inside one big
                            // critical section, stats grabbed first —
                            // scrub_stats → tile_state → core, the
                            // reverse of `stats()`.
                            let mut st = S::lock(&worker_stats); // presp-analyze: mutant
                            let result = Self::scrub_pass(&worker_shared, tile);
                            if let Ok(report) = &result {
                                st.record(report);
                            }
                            result
                        } else {
                            Self::scrub_one(&worker_shared, &worker_stats, tile)
                        };
                        #[cfg(not(test))]
                        let result = Self::scrub_one(&worker_shared, &worker_stats, tile);
                        // A pass may quarantine the tile: wake any thread
                        // parked in `run_blocking` so it can observe that.
                        if let Some(shard) = worker_shared.shards.get(&tile) {
                            S::notify_all(&shard.reconfig_done);
                        }
                        let _ = S::send(&done, result);
                    }
                    ScrubRequest::ScrubAll { done } => {
                        let result = Self::scrub_sweep(&worker_shared, &worker_stats);
                        for shard in worker_shared.shards.values() {
                            S::notify_all(&shard.reconfig_done);
                        }
                        let _ = S::send(&done, result);
                    }
                    ScrubRequest::Stop => break,
                }
            }
            // Drain: answer every pending request before exiting, exactly
            // like the scheduler workers.
            loop {
                match S::try_recv(&rx) {
                    TryRecv::Value(ScrubRequest::Scrub { done, .. }) => {
                        let _ = S::send(&done, Err(Error::ManagerStopped));
                    }
                    TryRecv::Value(ScrubRequest::ScrubAll { done, .. }) => {
                        let _ = S::send(&done, Err(Error::ManagerStopped));
                    }
                    TryRecv::Value(ScrubRequest::Stop) => {}
                    TryRecv::Empty | TryRecv::Disconnected => break,
                }
            }
        });
        ScrubberDaemon {
            queue: tx,
            shared,
            stats,
            worker: Arc::new(S::mutex_labeled("scrub_worker", Some(handle))),
        }
    }

    /// One pass over `tile`: shard lock → core lock → scrub → release.
    fn scrub_pass(shared: &Shared<S>, tile: TileCoord) -> Result<ScrubReport, Error> {
        let shard = shared
            .shards
            .get(&tile)
            .ok_or(Error::Soc(presp_soc::Error::NoSuchTile { coord: tile }))?;
        let mut state = S::lock(&shard.state);
        let mut core = S::lock(&shared.core);
        let at = core.soc().horizon();
        protocol::scrub_tile_at(&mut state, &mut core, at)
    }

    /// The clean protocol: device locks → scrub → release → own counters.
    fn scrub_one(
        shared: &Shared<S>,
        stats: &S::Mutex<ScrubberStats>,
        tile: TileCoord,
    ) -> Result<ScrubReport, Error> {
        let result = Self::scrub_pass(shared, tile);
        if let Ok(report) = &result {
            let mut st = S::lock(stats);
            st.record(report);
        }
        result
    }

    /// A full sweep: every configured, non-quarantined tile, one at a
    /// time (the shard locks are never held pairwise), all anchored at
    /// the sweep's starting horizon like the deterministic manager's
    /// `scrub_all_at`.
    fn scrub_sweep(
        shared: &Shared<S>,
        stats: &S::Mutex<ScrubberStats>,
    ) -> Result<Vec<(TileCoord, ScrubReport)>, Error> {
        let at = S::lock(&shared.core).soc().horizon();
        let mut reports = Vec::new();
        for (&tile, shard) in &shared.shards {
            let report = {
                let mut state = S::lock(&shard.state);
                if state.is_quarantined() {
                    continue;
                }
                let mut core = S::lock(&shared.core);
                if core.soc().tile_region(tile).is_empty() {
                    continue;
                }
                protocol::scrub_tile_at(&mut state, &mut core, at)?
            };
            let mut st = S::lock(stats);
            st.record(&report);
            drop(st);
            reports.push((tile, report));
        }
        Ok(reports)
    }

    /// Enqueues a scrub pass over `tile`'s configuration frames and blocks
    /// for its report.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ManagerStopped`] after shutdown,
    /// [`Error::TileQuarantined`] for quarantined tiles, plus SoC errors.
    pub fn scrub_blocking(&self, tile: TileCoord) -> Result<ScrubReport, Error> {
        let (done_tx, done_rx) = S::channel();
        S::send(
            &self.queue,
            ScrubRequest::Scrub {
                tile,
                done: done_tx,
            },
        )
        .map_err(|_| Error::ManagerStopped)?;
        S::recv(&done_rx).ok_or(Error::ManagerStopped)?
    }

    /// Enqueues a full scrub sweep (every configured, non-quarantined
    /// tile) and blocks for the per-tile reports.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ManagerStopped`] after shutdown, plus SoC errors.
    pub fn scrub_all_blocking(&self) -> Result<Vec<(TileCoord, ScrubReport)>, Error> {
        let (done_tx, done_rx) = S::channel();
        S::send(&self.queue, ScrubRequest::ScrubAll { done: done_tx })
            .map_err(|_| Error::ManagerStopped)?;
        S::recv(&done_rx).ok_or(Error::ManagerStopped)?
    }

    /// Daemon counters, snapshotted consistently with the manager's own
    /// scrub bookkeeping: takes the device-core lock first (the
    /// crate-wide `core` → `scrub_stats` order), so a scrub pass is never
    /// half counted.
    pub fn stats(&self) -> ScrubberStats {
        let _core = S::lock(&self.shared.core);
        *S::lock(&self.stats)
    }

    /// Stops the scrub worker and joins it. Idempotent and tolerant of
    /// poisoned locks, like [`ThreadedManager::shutdown`].
    pub fn shutdown(&self) {
        let _ = S::send(&self.queue, ScrubRequest::Stop);
        if let Some(handle) = S::lock_recover(&self.worker).take() {
            let _ = S::join(handle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::BitstreamRegistry;
    use presp_accel::catalog::AcceleratorKind;
    use presp_check::{CheckSync, Checker, Config, FailureKind};
    use presp_fpga::bitstream::{Bitstream, BitstreamBuilder, BitstreamKind};
    use presp_fpga::fault::{FaultConfig, FaultPlan};
    use presp_fpga::frame::FrameAddress;
    use presp_soc::config::SocConfig;
    use presp_soc::sim::Soc;

    fn bitstream(soc: &Soc, col: u32) -> Bitstream {
        let device = soc.part().device();
        let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
        let words = device.part().family().frame_words();
        b.add_frame(FrameAddress::new(0, col, 0), vec![col; words])
            .unwrap();
        b.build(true)
    }

    fn boot() -> (ThreadedManager, ScrubberDaemon, TileCoord) {
        let cfg = SocConfig::grid_3x3_reconf("scrub", 1).unwrap();
        let soc = Soc::new(&cfg).unwrap();
        let tile = cfg.reconfigurable_tiles()[0];
        let mut registry = BitstreamRegistry::new();
        registry
            .register(tile, AcceleratorKind::Mac, bitstream(&soc, 2))
            .unwrap();
        let mgr = ThreadedManager::spawn(soc, registry);
        let scrubber = ScrubberDaemon::attach(&mgr);
        (mgr, scrubber, tile)
    }

    /// Arms a fault plan with one forced SEU at the current makespan
    /// (drained by the next scrub pass), through the shared device lock.
    fn force_seu(mgr: &ThreadedManager, double_bit: bool) {
        let mut core = mgr.sched.shared.core.lock().unwrap();
        let at = core.soc().horizon();
        let mut plan = FaultPlan::new(11, FaultConfig::uniform(0.0));
        plan.force_seu(at, double_bit);
        core.soc_mut().set_fault_plan(Some(plan));
    }

    #[test]
    fn scrub_repairs_a_forced_upset() {
        let (mgr, scrubber, tile) = boot();
        mgr.reconfigure_blocking(tile, AcceleratorKind::Mac)
            .unwrap();
        let report = scrubber.scrub_blocking(tile).unwrap();
        assert!(report.is_clean());
        force_seu(&mgr, false);
        let report = scrubber.scrub_blocking(tile).unwrap();
        assert_eq!(report.corrected.len(), 1);
        let stats = scrubber.stats();
        assert_eq!(stats.passes, 2);
        assert_eq!(stats.clean_passes, 1);
        assert_eq!(stats.frames_repaired, 1);
        assert_eq!(stats.quarantines, 0);
        scrubber.shutdown();
        mgr.shutdown();
    }

    #[test]
    fn scrub_all_quarantines_a_double_bit_upset() {
        let (mgr, scrubber, tile) = boot();
        mgr.reconfigure_blocking(tile, AcceleratorKind::Mac)
            .unwrap();
        force_seu(&mgr, true);
        let reports = scrubber.scrub_all_blocking().unwrap();
        assert_eq!(reports.len(), 1);
        assert!(!reports[0].1.uncorrectable.is_empty());
        assert_eq!(scrubber.stats().quarantines, 1);
        // The quarantined tile refuses further scrubs …
        assert!(matches!(
            scrubber.scrub_blocking(tile),
            Err(Error::TileQuarantined { .. })
        ));
        // … and a subsequent sweep skips it entirely.
        assert!(scrubber.scrub_all_blocking().unwrap().is_empty());
        scrubber.shutdown();
        mgr.shutdown();
    }

    #[test]
    fn scrubber_shutdown_is_idempotent_and_stops_requests() {
        let (mgr, scrubber, tile) = boot();
        scrubber.shutdown();
        scrubber.shutdown();
        assert!(matches!(
            scrubber.scrub_blocking(tile),
            Err(Error::ManagerStopped)
        ));
        mgr.shutdown();
    }

    #[test]
    fn scrubbing_under_reconfiguration_load_stays_consistent() {
        let (mgr, scrubber, tile) = boot();
        mgr.reconfigure_blocking(tile, AcceleratorKind::Mac)
            .unwrap();
        let swapper = {
            let mgr = mgr.clone();
            std::thread::spawn(move || {
                for _ in 0..10 {
                    let _ = mgr.execute_blocking(
                        tile,
                        AcceleratorKind::Mac,
                        presp_accel::AccelOp::Mac {
                            a: vec![1.0],
                            b: vec![2.0],
                        },
                    );
                }
            })
        };
        for _ in 0..10 {
            scrubber.scrub_blocking(tile).unwrap();
        }
        swapper.join().unwrap();
        let stats = scrubber.stats();
        assert_eq!(stats.passes, 10);
        assert!(mgr.stats().consistent());
        scrubber.shutdown();
        mgr.shutdown();
    }

    // ---- model-checked protocol (CheckSync) ---------------------------

    fn boot_checked(
        mutants: ScrubMutantConfig,
    ) -> (
        ThreadedManager<CheckSync>,
        ScrubberDaemon<CheckSync>,
        TileCoord,
    ) {
        let cfg = SocConfig::grid_3x3_reconf("scrub_model", 1).unwrap();
        let soc = Soc::new(&cfg).unwrap();
        let tile = cfg.reconfigurable_tiles()[0];
        let mut registry = BitstreamRegistry::new();
        registry
            .register(tile, AcceleratorKind::Mac, bitstream(&soc, 2))
            .unwrap();
        let mgr = ThreadedManager::<CheckSync>::spawn_with_policy(
            soc,
            registry,
            crate::manager::RecoveryPolicy::default(),
        );
        let scrubber = ScrubberDaemon::attach_with_mutants(&mgr, mutants);
        (mgr, scrubber, tile)
    }

    fn mutant_checker() -> Checker {
        Checker::new(Config {
            max_schedules: 5_000,
            preemption_bound: Some(2),
            max_steps: 20_000,
        })
    }

    fn lock_inversion_model() {
        let (mgr, scrubber, tile) = boot_checked(ScrubMutantConfig {
            lock_inversion: true,
        });
        let worker = scrubber.clone();
        let s = presp_check::sync::spawn_named("scrub_caller", move || {
            let _ = worker.scrub_blocking(tile);
        });
        // `stats()` takes core → scrub_stats while the mutant worker
        // takes scrub_stats → tile_state → core.
        let _snapshot = scrubber.stats();
        s.join().unwrap();
        scrubber.shutdown();
        mgr.shutdown();
    }

    #[test]
    fn checker_catches_scrubber_lock_order_inversion_mutant() {
        let report = mutant_checker().explore(lock_inversion_model);
        let failure = report
            .failure
            .expect("the scrubber inversion mutant must deadlock some schedule");
        assert!(
            matches!(failure.kind, FailureKind::Deadlock { .. }),
            "expected deadlock, got: {failure}"
        );
        let replay = mutant_checker().replay(&failure.schedule, lock_inversion_model);
        assert!(
            matches!(
                replay.failure.as_ref().map(|f| &f.kind),
                Some(FailureKind::Deadlock { .. })
            ),
            "replay must reproduce the deadlock: {replay}"
        );
    }

    #[test]
    fn clean_scrub_protocol_explores_without_findings() {
        // Scrubber + scheduler, mutants off: a quick bounded sweep here;
        // the 10k-schedule sweep lives in the workspace-level model_check
        // suite.
        let report = Checker::new(Config {
            max_schedules: 500,
            preemption_bound: Some(2),
            max_steps: 20_000,
        })
        .explore(|| {
            let (mgr, scrubber, tile) = boot_checked(ScrubMutantConfig::default());
            let worker = scrubber.clone();
            let s = presp_check::sync::spawn_named("scrub_caller", move || {
                let _ = worker.scrub_blocking(tile);
            });
            let _snapshot = scrubber.stats();
            s.join().unwrap();
            scrubber.shutdown();
            mgr.shutdown();
        });
        assert!(report.ok(), "{report}");
    }
}
