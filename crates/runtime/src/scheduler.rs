//! The multi-worker DPR scheduler.
//!
//! The old workqueue demonstrator funnelled every request through one
//! worker thread holding one `ReconfigManager` lock, so two requests to
//! *independent* tiles still serialized end to end. This module is the
//! sharded replacement built on the [`crate::tile`] / [`crate::device`]
//! split:
//!
//! * **Per-tile queues, N workers.** Each tile's FIFO lives in its own
//!   shard behind a `tile_queue` mutex; a small `sched_admission` lock
//!   holds only the global ticket counter, the aggregate stats and the
//!   *claimable-head index* — a `ticket → tile` map of every tile whose
//!   queue head is free to claim. Workers claim by popping the index
//!   minimum (O(log tiles), not an O(tiles) scan), then evaluate the
//!   behavioral accelerator result *outside any lock* — accelerator
//!   instances are stateless, so the value is a pure function of the
//!   operation — and pre-fetch the verified bitstream from the
//!   boot-immutable registry into a per-worker arena. Only the short
//!   ICAP/NoC/virtual-time critical section then runs under the shard +
//!   device-core locks.
//! * **The ticket gate.** Every admitted job carries a global ticket and
//!   commits its critical section in strict ticket order. This keeps the
//!   shared virtual timeline — and therefore stats, results, makespan and
//!   the trace log — *identical for any worker count*: `workers = 16`
//!   replays the exact schedule `workers = 1` would produce, while the
//!   expensive behavioral work still overlaps across workers. Liveness
//!   holds because workers always claim the lowest claimable head ticket:
//!   the minimum unretired ticket is always claimed or claimable, so the
//!   gate can never wedge.
//! * **Sharded tracing.** With [`Scheduler::attach_sharded_tracer`] each
//!   worker re-attaches its own trace shard before committing (the
//!   tracer's seq counter survives re-attachment), so concurrent commits
//!   never contend on one sink mutex; draining merges shards back into
//!   seq order, byte-identical to the single-sink log.
//! * **Request coalescing.** A reconfiguration submitted while an
//!   identical `(tile, kind)` one is queued or in flight folds into it:
//!   all waiters are answered by the single underlying load
//!   ([`presp_events::TraceEvent::RequestCoalesced`]).
//! * **The bitstream cache.** The device core fronts registry lookups
//!   with a bounded LRU of verified streams ([`crate::cache`]).
//!
//! * **Supervision** (`policy.supervised`). Workers register every
//!   claim (a recoverable stash of the job) with a supervisor table; a
//!   watchdog thread steals claims whose owner wedged before its commit
//!   slot, returns them to their tile queue *under the same ticket*,
//!   and respawns dead workers out of a bounded restart budget. A claim
//!   guard performs the same healing inline when a worker panics. The
//!   healed timeline is byte-identical to a fault-free run apart from
//!   the explicit `sched.worker_died` / `sched.redispatch` records,
//!   which are emitted at the healed job's own commit slot (gate
//!   ordered), never at the wall-clock moment of the fault.
//! * **Deadlines and admission control.** `policy.deadline_cycles`
//!   stamps every reconfigure/execute with a virtual-time deadline at
//!   submission; a job reaching its commit slot late is cancelled
//!   ([`Error::DeadlineExceeded`]) or degraded to the CPU, accounted in
//!   [`ManagerStats::deadline_misses`]. `policy.queue_capacity` bounds
//!   each tile queue: overflow either refuses the newcomer or sheds the
//!   oldest queued request ([`crate::manager::OverloadPolicy`]), and
//!   `policy.breaker` refuses quarantined tiles at the door. Sheds are
//!   explicit ([`Error::Overloaded`], [`ManagerStats::shed`],
//!   `sched.shed` trace records) instead of latency collapse.
//!
//! Lock order (enforced by the `presp-check` lock-order graph under
//! exploration): `sched_admission` → `tile_queue` on the admission side
//! (never interleaved with the commit-side locks), `gate` →
//! `tile_state` → `core` on the commit side, and `supervisor` → `gate`
//! in the watchdog's steal scan. Everything else the supervision layer
//! touches (fault plan, breaker peek, shed settlement) uses top-level
//! acquisitions only. The committed [`MutantConfig`] variants invert
//! edges of this graph so the model-check suite can prove it notices.

use crate::cache::{BitstreamCache, CacheStats};
use crate::device::{loc, DeviceCore};
use crate::error::Error;
use crate::manager::{ExecPath, ManagerStats, OverloadPolicy, RecoveryPolicy};
use crate::protocol::{self, Precomputed, PreparedBitstream};
use crate::registry::BitstreamRegistry;
use crate::supervisor::{InjectedWorkerPanic, SupervisorStats, WorkerFault, WorkerFaultPlan};
use crate::sync::{Arc, StdSync, SyncFacade};
use crate::tile::TileState;
use presp_accel::catalog::AcceleratorKind;
use presp_accel::{AccelInstance, AccelOp};
use presp_floorplan::{FitPolicy, FragmentationStats};

/// Reply channels of requests that coalesced into an in-flight
/// reconfiguration, collected at completion and answered together.
type CoalescedWaiters<S> = Vec<<S as SyncFacade>::Sender<Result<(), Error>>>;
use presp_events::trace::ClockDomain;
use presp_events::TraceEvent;
use presp_soc::config::TileCoord;
use presp_soc::sim::{AccelRun, Soc};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
// Not a protocol primitive: caches an env read once, immutable after
// init, so there is no schedule-dependent behavior to explore.
use std::sync::OnceLock; // presp-lint: allow — init-once env cache
use std::time::{Duration, Instant};

/// Default capacity of the verified-bitstream LRU on the threaded path.
pub const DEFAULT_CACHE_CAPACITY: usize = 16;

/// Deliberate concurrency-bug switches for checker validation: committed
/// known-bad protocol variants the model-check suite must detect and
/// replay deterministically. All off by default; reachable from the
/// workspace test suites (hence `pub`) but hidden from the API surface.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, Default)]
pub struct MutantConfig {
    /// The worker commits reconfigurations acquiring `core` →
    /// `tile_state`, the reverse of the scrubber's (and every other
    /// path's) `tile_state` → `core`: a cross-daemon lock-order
    /// inversion.
    pub shard_core_inversion: bool,
    /// The worker bumps a run counter *after* replying, outside any lock,
    /// while callers read it after `recv` — no happens-before edge.
    pub unsynced_stats: bool,
    /// The worker's completion path acquires `tile_queue` →
    /// `sched_admission`, the reverse of every admission path's
    /// `sched_admission` → `tile_queue`: a submitter racing a completing
    /// worker deadlocks.
    pub queue_admission_inversion: bool,
    /// A supervised worker marks its claim `committing` while already
    /// holding the commit gate — `gate` → `supervisor`, the reverse of
    /// the watchdog's steal scan (`supervisor` → `gate`): worker and
    /// supervisor deadlock.
    pub supervisor_gate_inversion: bool,
}

/// Wall-clock scheduling metrics, aggregated across all workers.
///
/// These are *measurement-side* counters (queue-wait percentiles are real
/// `Instant` durations, not virtual cycles); they never feed the trace
/// log, which stays a pure function of the submission order.
#[derive(Debug, Clone, Default)]
pub struct SchedulerStats {
    /// Jobs admitted to a tile queue (coalesced submissions excluded).
    pub admitted: u64,
    /// Jobs fully committed and answered.
    pub completed: u64,
    /// Submissions folded into a queued or in-flight reconfiguration.
    pub coalesced: u64,
    /// Largest per-tile backlog observed at admission.
    pub max_queue_depth: u64,
    /// Wall-clock nanoseconds workers spent in the lock-free prepare
    /// stage (behavioral evaluation + bitstream pre-fetch), summed
    /// across workers.
    pub stage_prepare_nanos: u64,
    /// Wall-clock nanoseconds workers spent waiting at the commit-order
    /// ticket gate, summed across workers.
    pub stage_gate_wait_nanos: u64,
    /// Wall-clock nanoseconds workers spent inside the shard + core
    /// commit critical section, summed across workers.
    pub stage_commit_nanos: u64,
    /// Managed columns currently unleased (amorphous floorplanning only;
    /// zero on the fixed-socket path). Snapshotted from the allocator at
    /// [`Scheduler::scheduler_stats`] time.
    pub free_columns: u64,
    /// Longest contiguous run of free managed columns at snapshot time.
    pub largest_free_span: u64,
    /// External-fragmentation ratio in `[0, 1]`: the share of free
    /// columns a request sized to the largest free span cannot use
    /// (`1 − largest_free_span / free_columns`; `0` when nothing is
    /// free or regions are disabled).
    pub external_fragmentation: f64,
    wait_micros: Vec<u64>,
}

impl SchedulerStats {
    fn record_wait(&mut self, waited: Duration) {
        self.wait_micros.push(waited.as_micros() as u64);
    }

    /// Queue-wait percentile in microseconds (`p` in `[0, 100]`), the
    /// time between admission and a worker claiming the job. Zero when
    /// nothing completed yet.
    ///
    /// Nearest-rank definition: the smallest sample such that at least
    /// `p` percent of the samples are ≤ it (rank `⌈p/100·N⌉`,
    /// 1-based). The previous rounded-interpolation index over-reported
    /// small samples — p50 of `[10, 20, 30, 40]` came back 30 instead
    /// of 20.
    pub fn wait_percentile_micros(&self, p: f64) -> u64 {
        if self.wait_micros.is_empty() {
            return 0;
        }
        let mut sorted = self.wait_micros.clone();
        sorted.sort_unstable();
        let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// Number of queue-wait samples recorded.
    pub fn wait_samples(&self) -> usize {
        self.wait_micros.len()
    }
}

/// A request travelling through a tile queue.
enum Payload<S: SyncFacade> {
    Reconfigure {
        kind: AcceleratorKind,
        /// Primary caller plus any submissions tail-coalesced before a
        /// worker claimed the job: all answered by one load.
        done: Vec<S::Sender<Result<(), Error>>>,
    },
    Run {
        op: Box<AccelOp>,
        done: S::Sender<Result<AccelRun, Error>>,
    },
    Execute {
        kind: AcceleratorKind,
        op: Box<AccelOp>,
        done: S::Sender<Result<(AccelRun, ExecPath), Error>>,
    },
}

impl<S: SyncFacade> Payload<S> {
    /// A recoverable copy — cloned reply senders, cloned operation —
    /// kept in the supervisor's claim table so a dead or wedged
    /// worker's job can be redispatched without losing its waiters.
    fn stash(&self) -> Payload<S> {
        match self {
            Payload::Reconfigure { kind, done } => Payload::Reconfigure {
                kind: *kind,
                done: done.iter().map(|tx| S::clone_sender(tx)).collect(),
            },
            Payload::Run { op, done } => Payload::Run {
                op: op.clone(),
                done: S::clone_sender(done),
            },
            Payload::Execute { kind, op, done } => Payload::Execute {
                kind: *kind,
                op: op.clone(),
                done: S::clone_sender(done),
            },
        }
    }
}

/// One healed fault in a job's history, carried inside the rebuilt job
/// so the re-claiming worker can emit the `sched.worker_died` /
/// `sched.redispatch` records at the job's own commit slot — gate
/// ordered, hence byte-identical traces for a given seed no matter when
/// the healing happened on the wall clock.
#[derive(Debug, Clone, Copy)]
struct Redispatch {
    /// True when the previous claimant died (panicked); false when it
    /// wedged and the supervisor stole the claim.
    died: bool,
}

struct Job<S: SyncFacade> {
    ticket: u64,
    tile: TileCoord,
    /// Tile backlog at admission (this job included) — traced in
    /// [`TraceEvent::SchedDispatch`].
    depth: u64,
    admitted: Instant,
    /// Absolute virtual-cycle deadline (`policy.deadline_cycles`),
    /// stamped at submission; `None` when deadlines are disabled.
    deadline_at: Option<u64>,
    /// Healed faults of previous claimants, oldest first.
    redispatch: Vec<Redispatch>,
    payload: Payload<S>,
}

/// A reconfiguration a worker has claimed but not yet answered; identical
/// submissions arriving while the tile queue is empty fold into it.
struct Inflight<S: SyncFacade> {
    kind: AcceleratorKind,
    extra_waiters: Vec<S::Sender<Result<(), Error>>>,
}

/// One tile's FIFO, behind its own `tile_queue` mutex (nested under
/// `sched_admission` whenever both are held).
struct TileQueue<S: SyncFacade> {
    jobs: VecDeque<Job<S>>,
    /// A worker holds this tile's head job; per-tile FIFO order.
    checked_out: bool,
    /// Monotone count of head-job checkouts, for the [`Scheduler::
    /// tile_claims`] probe — latching, unlike `checked_out`, so an
    /// observer can't miss a short-lived claim window.
    claims: u64,
    inflight: Option<Inflight<S>>,
}

// Not derived: `derive(Default)` would demand `S: Default`.
impl<S: SyncFacade> TileQueue<S> {
    fn new() -> TileQueue<S> {
        TileQueue {
            jobs: VecDeque::new(),
            checked_out: false,
            claims: 0,
            inflight: None,
        }
    }
}

/// Everything guarded by the `sched_admission` lock: the global ticket
/// counter, the claimable-head index, the stop flag and the aggregate
/// scheduler stats. Deliberately small — the per-tile FIFOs live in
/// their own shards.
struct Admission {
    next_ticket: u64,
    stopping: bool,
    stats: SchedulerStats,
    /// Claimable heads: `front ticket → tile` for every tile whose queue
    /// is non-empty and not checked out. Invariant maintained at push,
    /// claim and complete; workers pop the minimum, which is what keeps
    /// the ticket gate live.
    heads: BTreeMap<u64, TileCoord>,
}

enum Admitted<S: SyncFacade> {
    /// A fresh job joined the queue — wake a worker.
    Enqueued,
    /// Folded into a queued or in-flight reconfiguration.
    Coalesced,
    /// Refused before queueing; answer the caller directly.
    Refused(Error, S::Sender<Result<(), Error>>),
}

/// A request displaced (or refused) by the bounded-queue admission
/// controller, settled by [`Shared::settle_shed`] after the admission
/// locks are released.
struct Shed<S: SyncFacade> {
    tile: TileCoord,
    /// The displaced ticket; `None` when the newcomer itself was refused
    /// before a ticket was assigned (the `sched.shed` record then traces
    /// the ticket the request would have taken).
    ticket: Option<u64>,
    /// The displaced payload, answered with [`Error::Overloaded`];
    /// `None` when a refused newcomer's waiters are answered on the
    /// submit side instead.
    victim: Option<Payload<S>>,
}

/// Commit-order gate: jobs pass in strict global ticket order, so the
/// virtual-time critical sections replay the single-worker schedule
/// regardless of how many workers overlap their lock-free preparation.
pub(crate) struct Gate {
    next: u64,
    /// Tickets retired out of order (drained at shutdown while a lower
    /// ticket was still in flight).
    retired: BTreeSet<u64>,
    /// Worker-death ordinal counter. `sched.worker_died` records carry
    /// this (not the OS worker slot) and are emitted at the healed job's
    /// commit slot, so the numbering is gate-ordered — deterministic for
    /// a given fault seed regardless of wall-clock timing.
    deaths: u64,
}

impl Gate {
    fn retire(&mut self, ticket: u64) {
        self.retired.insert(ticket);
        while self.retired.remove(&self.next) {
            self.next += 1;
        }
    }
}

/// One tile's concurrent shard: the [`TileState`] under its own lock, the
/// tile's FIFO under its own lock, plus the condvar signalled when a
/// reconfiguration on this tile completes.
pub(crate) struct TileShard<S: SyncFacade> {
    pub(crate) state: S::Mutex<TileState>,
    pub(crate) reconfig_done: S::Condvar,
    queue: S::Mutex<TileQueue<S>>,
}

/// Wall-clock time a worker spent in each pipeline stage for one job;
/// flushed into [`SchedulerStats`] under `sched_admission` at completion.
#[derive(Debug, Clone, Copy, Default)]
struct StageNanos {
    prepare: u64,
    gate_wait: u64,
    commit: u64,
}

/// One claimed-but-uncommitted job in the supervisor's table: enough to
/// rebuild the job under the *same* ticket should its claimant die or
/// wedge.
struct Claim<S: SyncFacade> {
    tile: TileCoord,
    depth: u64,
    deadline_at: Option<u64>,
    /// Healed faults of previous claimants, carried through redispatch.
    redispatch: Vec<Redispatch>,
    /// The claimant reached [`Shared::begin_commit`]; stealing is no
    /// longer safe (the commit may be mid-flight).
    committing: bool,
    /// The supervisor took the claim back; the wedged owner must abandon
    /// the job when it wakes.
    stolen: bool,
    /// The owner parked in [`Shared::park_hung`].
    hung: bool,
    /// Recoverable copy of the job's payload (cloned senders + op).
    stash: Payload<S>,
}

/// Everything behind the `supervisor` mutex.
struct SupervisorState<S: SyncFacade> {
    /// Shutdown (or out-of-workers bailout) in progress; the watchdog
    /// exits and parked workers release their claims.
    stop: bool,
    claims: BTreeMap<u64, Claim<S>>,
    /// Worker slots whose thread died, queued for respawn.
    dead: Vec<usize>,
    /// Worker threads currently able to make progress (parked hung
    /// workers count: a steal returns them to the pool).
    live_workers: usize,
    restarts_left: u32,
    stats: SupervisorStats,
}

/// Arms gate healing for the duration of one claim: if the owning worker
/// unwinds from a panic, the drop handler heals the supervisor table and
/// the commit-order gate from the dying thread. On every normal exit
/// path it is a no-op — the worker settles its own claim through
/// [`Shared::begin_commit`] / [`Shared::end_commit`].
struct ClaimGuard<'a, S: SyncFacade> {
    shared: &'a Shared<S>,
    ticket: u64,
    worker: usize,
}

impl<S: SyncFacade> Drop for ClaimGuard<'_, S> {
    fn drop(&mut self) {
        if !S::panicking() {
            return;
        }
        self.shared.heal_dead_worker(self.ticket, self.worker);
    }
}

/// State shared between submitters, the worker pool and the maintenance
/// daemons (scrubber, defragmenter).
pub(crate) struct Shared<S: SyncFacade> {
    pub(crate) shards: BTreeMap<TileCoord, TileShard<S>>,
    pub(crate) core: S::Mutex<DeviceCore>,
    admission: S::Mutex<Admission>,
    /// Signalled when a job is admitted or a tile becomes claimable.
    work: S::Condvar,
    /// The commit-order ticket gate. `pub(crate)` for the defragmenter:
    /// holding this mutex quiesces every worker's commit critical
    /// section, keeping a compaction plan valid move to move.
    pub(crate) gate: S::Mutex<Gate>,
    /// Signalled when the gate advances.
    gate_cv: S::Condvar,
    /// The boot-immutable registry, shared with the workers' lock-free
    /// prepare stage (the core holds the same handle).
    registry: Arc<BitstreamRegistry>,
    /// The supervision table (`supervisor` lock): registered claims,
    /// dead worker slots and the restart budget.
    supervisor: S::Mutex<SupervisorState<S>>,
    /// Signalled when a claim changes state or a worker dies.
    supervisor_cv: S::Condvar,
    /// Signalled to release workers parked in an injected hang.
    hang_cv: S::Condvar,
    /// The installed worker-software-fault plan (`worker_faults` lock);
    /// `None` injects nothing.
    worker_faults: S::Mutex<Option<WorkerFaultPlan>>,
    pub(crate) policy: RecoveryPolicy,
    mutants: MutantConfig,
    /// Storage the `unsynced_stats` mutant shares without a lock; under
    /// the checker every access is happens-before verified.
    racy_runs: presp_check::RaceCell<u64>,
}

impl<S: SyncFacade> Shared<S> {
    /// Admits a reconfiguration, coalescing where possible. Lock order:
    /// `sched_admission` → `tile_queue`. The second return is a shed the
    /// caller must settle *after* releasing its interest in the reply
    /// channel (see [`Shared::settle_shed`]).
    fn admit_reconfigure(
        &self,
        tile: TileCoord,
        kind: AcceleratorKind,
        deadline_at: Option<u64>,
        done: S::Sender<Result<(), Error>>,
    ) -> (Admitted<S>, Option<Shed<S>>) {
        let mut adm = S::lock(&self.admission);
        if adm.stopping {
            return (Admitted::Refused(Error::ManagerStopped, done), None);
        }
        let Some(shard) = self.shards.get(&tile) else {
            return (
                Admitted::Refused(
                    Error::Soc(presp_soc::Error::NoSuchTile { coord: tile }),
                    done,
                ),
                None,
            );
        };
        let mut tq = S::lock(&shard.queue);
        // Tail coalescing: identical to the youngest queued request —
        // folding preserves per-tile FIFO semantics exactly.
        if let Some(Job {
            payload:
                Payload::Reconfigure {
                    kind: tail,
                    done: waiters,
                },
            ..
        }) = tq.jobs.back_mut()
        {
            if *tail == kind {
                waiters.push(done);
                adm.stats.coalesced += 1;
                return (Admitted::Coalesced, None);
            }
        }
        // In-flight coalescing: nothing queued behind the claimed job, so
        // joining it cannot reorder anything.
        if tq.jobs.is_empty() {
            if let Some(inflight) = tq.inflight.as_mut() {
                if inflight.kind == kind {
                    inflight.extra_waiters.push(done);
                    adm.stats.coalesced += 1;
                    return (Admitted::Coalesced, None);
                }
            }
        }
        let shed = match self.check_capacity(&mut adm, &mut tq, tile) {
            Ok(shed) => shed,
            Err(door) => {
                return (
                    Admitted::Refused(Error::Overloaded { tile }, done),
                    Some(door),
                )
            }
        };
        Self::push(
            &mut adm,
            &mut tq,
            tile,
            Payload::Reconfigure {
                kind,
                done: vec![done],
            },
            deadline_at,
        );
        (Admitted::Enqueued, shed)
    }

    /// Admits a non-coalescable job; the caller answers with the error
    /// when the scheduler is stopping, the tile is unknown or the queue
    /// refused the newcomer — and settles the shed, if any, after.
    fn admit_job(
        &self,
        tile: TileCoord,
        deadline_at: Option<u64>,
        payload: Payload<S>,
    ) -> (Result<(), Error>, Option<Shed<S>>) {
        let mut adm = S::lock(&self.admission);
        if adm.stopping {
            return (Err(Error::ManagerStopped), None);
        }
        let Some(shard) = self.shards.get(&tile) else {
            return (
                Err(Error::Soc(presp_soc::Error::NoSuchTile { coord: tile })),
                None,
            );
        };
        let mut tq = S::lock(&shard.queue);
        let shed = match self.check_capacity(&mut adm, &mut tq, tile) {
            Ok(shed) => shed,
            Err(door) => return (Err(Error::Overloaded { tile }), Some(door)),
        };
        Self::push(&mut adm, &mut tq, tile, payload, deadline_at);
        (Ok(()), shed)
    }

    /// Bounded-queue admission check, `sched_admission` + `tile_queue`
    /// held (no new lock edges). Coalesced submissions never reach here —
    /// folding does not grow the queue, so it is always allowed at
    /// capacity — and a claimed job does not count against the bound.
    /// `Err` means the newcomer itself must be refused.
    fn check_capacity(
        &self,
        adm: &mut Admission,
        tq: &mut TileQueue<S>,
        tile: TileCoord,
    ) -> Result<Option<Shed<S>>, Shed<S>> {
        let cap = self.policy.queue_capacity;
        if cap == 0 || (tq.jobs.len() as u64) < cap {
            return Ok(None);
        }
        match self.policy.overload {
            OverloadPolicy::RejectNew => Err(Shed {
                tile,
                ticket: None,
                victim: None,
            }),
            OverloadPolicy::ShedOldest => {
                let victim = tq.jobs.pop_front().expect("full queue has a front");
                adm.heads.remove(&victim.ticket);
                if !tq.checked_out {
                    if let Some(front) = tq.jobs.front() {
                        adm.heads.insert(front.ticket, tile);
                    }
                }
                Ok(Some(Shed {
                    tile,
                    ticket: Some(victim.ticket),
                    victim: Some(victim.payload),
                }))
            }
        }
    }

    /// Assigns the next global ticket and appends the job; ticket
    /// assignment is atomic with the queue push (both locks held), which
    /// the gate's liveness depends on.
    fn push(
        adm: &mut Admission,
        tq: &mut TileQueue<S>,
        tile: TileCoord,
        payload: Payload<S>,
        deadline_at: Option<u64>,
    ) {
        let ticket = adm.next_ticket;
        adm.next_ticket += 1;
        let depth = tq.jobs.len() as u64 + 1;
        if tq.jobs.is_empty() && !tq.checked_out {
            adm.heads.insert(ticket, tile);
        }
        tq.jobs.push_back(Job {
            ticket,
            tile,
            depth,
            admitted: Instant::now(),
            deadline_at,
            redispatch: Vec::new(),
            payload,
        });
        adm.stats.admitted += 1;
        adm.stats.max_queue_depth = adm.stats.max_queue_depth.max(depth);
    }

    /// Claims the job with the globally lowest claimable head ticket by
    /// popping the admission index minimum. Always picking the minimum is
    /// what keeps the ticket gate live: the oldest unretired job is never
    /// passed over for long.
    fn claim(&self, adm: &mut Admission) -> Option<Job<S>> {
        let (ticket, tile) = adm.heads.pop_first()?;
        let shard = self.shards.get(&tile).expect("indexed tile exists");
        let mut tq = S::lock(&shard.queue);
        tq.checked_out = true;
        tq.claims += 1;
        let job = tq.jobs.pop_front().expect("indexed head job exists");
        debug_assert_eq!(job.ticket, ticket, "head index out of sync");
        if let Payload::Reconfigure { kind, .. } = &job.payload {
            // Preserve an existing entry: a redispatched claim must keep
            // the waiters that coalesced into its first claim.
            if tq.inflight.is_none() {
                tq.inflight = Some(Inflight {
                    kind: *kind,
                    extra_waiters: Vec::new(),
                });
            }
        }
        adm.stats.record_wait(job.admitted.elapsed());
        Some(job)
    }

    /// Returns the tile to claimable state, re-indexes its next head,
    /// flushes the worker's stage timings and collects any waiters that
    /// coalesced into the in-flight reconfiguration. The boolean reports
    /// whether a queued job became claimable — the only case workers need
    /// waking for (waking the whole pool per completion measurably hurts
    /// on small hosts).
    fn complete(&self, tile: TileCoord, stages: StageNanos) -> (CoalescedWaiters<S>, bool) {
        let shard = self.shards.get(&tile).expect("completed tile exists");
        if self.mutants.queue_admission_inversion {
            // MUTANT: nested acquisition opposite to every admission
            // path's sched_admission → tile_queue.
            let mut tq = S::lock(&shard.queue); // presp-analyze: mutant
            let mut adm = S::lock(&self.admission); // presp-analyze: mutant
            Self::finish(&mut adm, &mut tq, tile, stages)
        } else {
            let mut adm = S::lock(&self.admission);
            let mut tq = S::lock(&shard.queue);
            Self::finish(&mut adm, &mut tq, tile, stages)
        }
    }

    fn finish(
        adm: &mut Admission,
        tq: &mut TileQueue<S>,
        tile: TileCoord,
        stages: StageNanos,
    ) -> (CoalescedWaiters<S>, bool) {
        tq.checked_out = false;
        let reindexed = if let Some(job) = tq.jobs.front() {
            adm.heads.insert(job.ticket, tile);
            true
        } else {
            false
        };
        let extras = tq
            .inflight
            .take()
            .map(|inflight| inflight.extra_waiters)
            .unwrap_or_default();
        adm.stats.completed += 1;
        adm.stats.stage_prepare_nanos += stages.prepare;
        adm.stats.stage_gate_wait_nanos += stages.gate_wait;
        adm.stats.stage_commit_nanos += stages.commit;
        (extras, reindexed)
    }

    // ---- supervision ---------------------------------------------------
    // Every method below uses top-level lock acquisitions only, except
    // `redispatch_claim` (the declared admission-side edge
    // `sched_admission` → `tile_queue`); the `supervisor` → `gate` edge
    // lives in `supervisor_loop`'s steal scan.

    /// The fault (if any) scripted for this claim of `ticket`. `None`
    /// without supervision, without a plan, or on a redispatched
    /// re-claim (faults fire once per ticket).
    fn draw_fault(&self, ticket: u64) -> Option<WorkerFault> {
        if !self.policy.supervised {
            return None;
        }
        S::lock(&self.worker_faults).as_mut()?.decide(ticket)
    }

    /// Registers a claim (recoverable stash + metadata) with the
    /// supervisor, so a dead or wedged claimant can be healed.
    fn register_claim(&self, job: &Job<S>) {
        let mut sup = S::lock(&self.supervisor);
        sup.claims.insert(
            job.ticket,
            Claim {
                tile: job.tile,
                depth: job.depth,
                deadline_at: job.deadline_at,
                redispatch: job.redispatch.clone(),
                committing: false,
                stolen: false,
                hung: false,
                stash: job.payload.stash(),
            },
        );
    }

    /// Marks the claim as committing — the watchdog will no longer steal
    /// it. Returns `false` when the supervisor already stole the claim;
    /// the worker must abandon the job (its redispatched copy is someone
    /// else's now).
    fn begin_commit(&self, ticket: u64) -> bool {
        let mut sup = S::lock(&self.supervisor);
        match sup.claims.get_mut(&ticket) {
            Some(claim) if !claim.stolen => {
                claim.committing = true;
                true
            }
            _ => false,
        }
    }

    /// Retires a settled claim after its reply went out.
    fn end_commit(&self, ticket: u64) {
        S::lock(&self.supervisor).claims.remove(&ticket);
    }

    /// Parks a wedged worker on `ticket` until the supervisor steals the
    /// claim or shutdown releases it. On return the job is no longer this
    /// worker's problem and it may resume its claim loop.
    fn park_hung(&self, ticket: u64) {
        {
            let mut sup = S::lock(&self.supervisor);
            match sup.claims.get_mut(&ticket) {
                Some(claim) => claim.hung = true,
                None => return,
            }
        }
        S::notify_all(&self.supervisor_cv);
        let mut sup = S::lock(&self.supervisor);
        loop {
            let released = match sup.claims.get(&ticket) {
                None => true,
                Some(claim) => claim.stolen,
            };
            if released {
                return;
            }
            if sup.stop {
                // Shutdown raced the park: settle the claim ourselves.
                let claim = sup.claims.remove(&ticket).expect("present above");
                drop(sup);
                {
                    let mut gate = S::lock_recover(&self.gate);
                    gate.retire(ticket);
                }
                S::notify_all(&self.gate_cv);
                answer_stopped::<S>(claim.stash);
                return;
            }
            sup = S::wait(&self.hang_cv, sup);
        }
    }

    /// Heals the scheduler after the worker owning `ticket` died: queues
    /// the slot for respawn and either frees the tile (the claim already
    /// committed) or returns the stash to its tile queue under the same
    /// ticket. Runs on the dying thread mid-unwind (via [`ClaimGuard`]),
    /// so every lock acquisition is poison-tolerant.
    fn heal_dead_worker(&self, ticket: u64, worker: usize) {
        let claim = {
            let mut sup = S::lock_recover(&self.supervisor);
            sup.stats.worker_deaths += 1;
            sup.live_workers = sup.live_workers.saturating_sub(1);
            sup.dead.push(worker);
            sup.claims.remove(&ticket)
        };
        S::notify_all(&self.supervisor_cv);
        let Some(claim) = claim else { return };
        if claim.stolen {
            return;
        }
        let committed = { S::lock_recover(&self.gate).next > ticket };
        if committed {
            // Died between retiring the ticket and completing: the
            // protocol work happened, only the tile bookkeeping (and the
            // reply, which the panic already consumed) is outstanding.
            self.release_tile(claim.tile);
        } else {
            self.redispatch_claim(ticket, claim, true);
        }
    }

    /// Frees a tile whose claimed job committed but whose claimant died
    /// before completing. Coalesced in-flight waiters are answered with
    /// [`Error::ManagerStopped`] — their load's fate is unknowable once
    /// the replying worker is gone.
    fn release_tile(&self, tile: TileCoord) {
        let Some(shard) = self.shards.get(&tile) else {
            return;
        };
        let (extras, claimable) = {
            let mut adm = S::lock_recover(&self.admission);
            let mut tq = S::lock_recover(&shard.queue);
            if !tq.checked_out {
                return;
            }
            Self::finish(&mut adm, &mut tq, tile, StageNanos::default())
        };
        if claimable {
            S::notify_all(&self.work);
        }
        for tx in extras {
            let _ = S::send(&tx, Err(Error::ManagerStopped));
        }
    }

    /// Returns a stolen or orphaned claim to the *front* of its tile
    /// queue under the same ticket, preserving per-tile FIFO and the
    /// global gate order. When the scheduler is already stopping the
    /// ticket is retired and the waiters answered instead.
    fn redispatch_claim(&self, ticket: u64, claim: Claim<S>, died: bool) {
        {
            let mut sup = S::lock_recover(&self.supervisor);
            sup.stats.redispatches += 1;
        }
        let Claim {
            tile,
            depth,
            deadline_at,
            mut redispatch,
            stash,
            ..
        } = claim;
        redispatch.push(Redispatch { died });
        let mut stash = Some(stash);
        {
            let mut adm = S::lock_recover(&self.admission);
            if !adm.stopping {
                if let Some(shard) = self.shards.get(&tile) {
                    let mut tq = S::lock_recover(&shard.queue);
                    tq.checked_out = false;
                    adm.heads.insert(ticket, tile);
                    tq.jobs.push_front(Job {
                        ticket,
                        tile,
                        depth,
                        admitted: Instant::now(),
                        deadline_at,
                        redispatch,
                        payload: stash.take().expect("taken once"),
                    });
                }
            }
        }
        match stash {
            Some(stash) => {
                {
                    let mut gate = S::lock_recover(&self.gate);
                    gate.retire(ticket);
                }
                S::notify_all(&self.gate_cv);
                answer_stopped::<S>(stash);
            }
            None => S::notify_all(&self.work),
        }
    }

    /// Flips the scheduler to stopping: clears the claimable index,
    /// drains every tile queue, retires the drained tickets (in-flight
    /// workers still pass the gate) and answers their waiters with
    /// [`Error::ManagerStopped`]. Idempotent; shared between shutdown
    /// and the supervisor's out-of-workers bailout.
    fn drain_to_stop(&self) {
        let drained: Vec<Job<S>> = {
            let mut adm = S::lock_recover(&self.admission);
            adm.stopping = true;
            adm.heads.clear();
            let mut out = Vec::new();
            for shard in self.shards.values() {
                let mut tq = S::lock_recover(&shard.queue);
                out.extend(tq.jobs.drain(..));
            }
            out
        };
        {
            let mut gate = S::lock_recover(&self.gate);
            for job in &drained {
                gate.retire(job.ticket);
            }
        }
        S::notify_all(&self.gate_cv);
        for job in drained {
            answer_stopped::<S>(job.payload);
        }
    }

    // ---- deadlines & admission control ---------------------------------

    /// The absolute virtual-cycle deadline for a request admitted now;
    /// `None` when deadlines are disabled.
    fn deadline_from_now(&self) -> Option<u64> {
        if self.policy.deadline_cycles == 0 {
            return None;
        }
        let horizon = { S::lock(&self.core).soc().horizon() };
        Some(horizon + self.policy.deadline_cycles)
    }

    /// Circuit breaker: whether `tile` must be refused at the queue
    /// door. A solo top-level peek, taken before any admission lock, so
    /// the breaker adds no lock-order edges.
    fn breaker_trips(&self, tile: TileCoord) -> bool {
        self.policy.breaker
            && self
                .shards
                .get(&tile)
                .is_some_and(|shard| S::lock(&shard.state).is_quarantined())
    }

    /// Settles a shed outside the admission locks: retires the displaced
    /// ticket, bumps [`ManagerStats::shed`], emits the `sched.shed`
    /// record at the current horizon and answers the displaced waiters
    /// with [`Error::Overloaded`]. Door refusals (no ticket assigned)
    /// trace the ticket the request would have taken.
    fn settle_shed(&self, shed: Shed<S>) {
        let ticket = match shed.ticket {
            Some(ticket) => ticket,
            None => S::lock(&self.admission).next_ticket,
        };
        if shed.ticket.is_some() {
            {
                let mut gate = S::lock(&self.gate);
                gate.retire(ticket);
            }
            S::notify_all(&self.gate_cv);
        }
        {
            let mut core = S::lock(&self.core);
            core.stats_mut().shed += 1;
            let now = core.soc().horizon();
            core.soc_mut()
                .tracer_mut()
                .instant(ClockDomain::SocCycles, now, || TraceEvent::RequestShed {
                    tile: loc(shed.tile),
                    ticket,
                });
        }
        if let Some(victim) = shed.victim {
            answer_overloaded::<S>(victim, shed.tile);
        }
    }
}

/// Answers every waiter of a payload with [`Error::ManagerStopped`].
fn answer_stopped<S: SyncFacade>(payload: Payload<S>) {
    match payload {
        Payload::Reconfigure { done, .. } => {
            for tx in done {
                let _ = S::send(&tx, Err(Error::ManagerStopped));
            }
        }
        Payload::Run { done, .. } => {
            let _ = S::send(&done, Err(Error::ManagerStopped));
        }
        Payload::Execute { done, .. } => {
            let _ = S::send(&done, Err(Error::ManagerStopped));
        }
    }
}

/// Answers every waiter of a shed payload with [`Error::Overloaded`].
fn answer_overloaded<S: SyncFacade>(payload: Payload<S>, tile: TileCoord) {
    match payload {
        Payload::Reconfigure { done, .. } => {
            for tx in done {
                let _ = S::send(&tx, Err(Error::Overloaded { tile }));
            }
        }
        Payload::Run { done, .. } => {
            let _ = S::send(&done, Err(Error::Overloaded { tile }));
        }
        Payload::Execute { done, .. } => {
            let _ = S::send(&done, Err(Error::Overloaded { tile }));
        }
    }
}

/// An admitted request's completion handle.
///
/// Submission APIs return immediately; `wait` blocks for the worker's
/// reply. Dropping a `Pending` abandons the request (the worker's reply
/// goes nowhere, the work still happens).
pub struct Pending<S: SyncFacade, T: Send + 'static> {
    rx: S::Receiver<Result<T, Error>>,
}

impl<S: SyncFacade, T: Send + 'static> Pending<S, T> {
    /// Blocks until the request is answered.
    ///
    /// # Errors
    ///
    /// [`Error::ManagerStopped`] when the scheduler shut down before
    /// answering, plus whatever the request itself produced.
    pub fn wait(self) -> Result<T, Error> {
        S::recv(&self.rx).ok_or(Error::ManagerStopped)?
    }

    /// A handle that is already answered (refused-at-submit requests).
    fn ready(result: Result<T, Error>) -> Pending<S, T> {
        let (tx, rx) = S::channel();
        let _ = S::send(&tx, result);
        Pending { rx }
    }
}

/// The sharded, multi-worker front-end to the DPR protocol.
///
/// Cloning is cheap; clones share the same queues, shards and device
/// core. See the [module docs](self) for the scheduling model.
/// Join handles for the worker pool, taken once at shutdown.
type WorkerHandles<S> =
    Arc<<S as SyncFacade>::Mutex<Option<Vec<<S as SyncFacade>::JoinHandle<()>>>>>;

pub struct Scheduler<S: SyncFacade = StdSync> {
    pub(crate) shared: Arc<Shared<S>>,
    workers: WorkerHandles<S>,
}

impl<S: SyncFacade> Clone for Scheduler<S> {
    fn clone(&self) -> Scheduler<S> {
        Scheduler {
            shared: Arc::clone(&self.shared),
            workers: Arc::clone(&self.workers),
        }
    }
}

impl<S: SyncFacade> Scheduler<S> {
    /// Boots `workers` worker threads over a SoC and registry. One shard
    /// is created per tile in the SoC's configuration, so requests to
    /// any grid coordinate flow through the same protocol (and fail with
    /// the same errors) as on the deterministic manager.
    pub(crate) fn boot(
        soc: Soc,
        registry: BitstreamRegistry,
        policy: RecoveryPolicy,
        workers: usize,
        cache_capacity: usize,
        mutants: MutantConfig,
    ) -> Scheduler<S> {
        let registry = Arc::new(registry);
        let shards: BTreeMap<TileCoord, TileShard<S>> = soc
            .config()
            .iter()
            .map(|(coord, _)| {
                (
                    coord,
                    TileShard {
                        state: S::mutex_labeled("tile_state", TileState::new(coord)),
                        reconfig_done: S::condvar(),
                        queue: S::mutex_labeled("tile_queue", TileQueue::new()),
                    },
                )
            })
            .collect();
        let admission = Admission {
            next_ticket: 0,
            stopping: false,
            stats: SchedulerStats::default(),
            heads: BTreeMap::new(),
        };
        let shared = Arc::new(Shared {
            shards,
            core: S::mutex_labeled(
                "core",
                DeviceCore::new_shared(
                    soc,
                    Arc::clone(&registry),
                    BitstreamCache::new(cache_capacity),
                ),
            ),
            admission: S::mutex_labeled("sched_admission", admission),
            work: S::condvar(),
            gate: S::mutex_labeled(
                "gate",
                Gate {
                    next: 0,
                    retired: BTreeSet::new(),
                    deaths: 0,
                },
            ),
            gate_cv: S::condvar(),
            registry,
            supervisor: S::mutex_labeled(
                "supervisor",
                SupervisorState {
                    stop: false,
                    claims: BTreeMap::new(),
                    dead: Vec::new(),
                    live_workers: workers.max(1),
                    restarts_left: policy.restart_budget,
                    stats: SupervisorStats::default(),
                },
            ),
            supervisor_cv: S::condvar(),
            hang_cv: S::condvar(),
            worker_faults: S::mutex_labeled("worker_faults", None),
            policy,
            mutants,
            racy_runs: presp_check::RaceCell::new("racy_runs", 0),
        });
        let handles: Vec<_> = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                S::spawn(
                    match i {
                        0 => "presp-worker-0",
                        1 => "presp-worker-1",
                        2 => "presp-worker-2",
                        3 => "presp-worker-3",
                        _ => "presp-worker-n",
                    },
                    move || worker_loop(&shared, i),
                )
            })
            .collect();
        let workers_handle: WorkerHandles<S> = Arc::new(S::mutex_labeled("worker", Some(handles)));
        if shared.policy.supervised {
            let sup_shared = Arc::clone(&shared);
            let sup_workers = Arc::clone(&workers_handle);
            let handle = S::spawn("presp-supervisor", move || {
                supervisor_loop(&sup_shared, &sup_workers);
            });
            if let Some(handles) = S::lock(&workers_handle).as_mut() {
                handles.push(handle);
            }
        }
        Scheduler {
            shared,
            workers: workers_handle,
        }
    }

    /// Admits a reconfiguration request, coalescing it into an identical
    /// queued or in-flight one when possible. With `policy.breaker` a
    /// quarantined tile is refused at the door; a full bounded queue
    /// refuses or sheds per `policy.overload`.
    pub fn submit_reconfigure(&self, tile: TileCoord, kind: AcceleratorKind) -> Pending<S, ()> {
        let (tx, rx) = S::channel();
        if self.shared.breaker_trips(tile) {
            self.shared.settle_shed(Shed {
                tile,
                ticket: None,
                victim: None,
            });
            let _ = S::send(&tx, Err(Error::TileQuarantined { tile }));
            return Pending { rx };
        }
        let deadline_at = self.shared.deadline_from_now();
        let (admitted, shed) = self.shared.admit_reconfigure(tile, kind, deadline_at, tx);
        match admitted {
            Admitted::Enqueued => S::notify_all(&self.shared.work),
            Admitted::Coalesced => {}
            Admitted::Refused(e, tx) => {
                let _ = S::send(&tx, Err(e));
            }
        }
        if let Some(shed) = shed {
            self.shared.settle_shed(shed);
        }
        Pending { rx }
    }

    /// Admits an accelerator invocation on `tile`. Runs never carry a
    /// deadline — a missed deadline is a reconfiguration-ledger outcome
    /// and plain runs are outside that ledger.
    pub fn submit_run(&self, tile: TileCoord, op: AccelOp) -> Pending<S, AccelRun> {
        if self.shared.breaker_trips(tile) {
            self.shared.settle_shed(Shed {
                tile,
                ticket: None,
                victim: None,
            });
            return Pending::ready(Err(Error::TileQuarantined { tile }));
        }
        let (tx, rx) = S::channel();
        let (admitted, shed) = self.shared.admit_job(
            tile,
            None,
            Payload::Run {
                op: Box::new(op),
                done: tx,
            },
        );
        let pending = match admitted {
            Ok(()) => {
                S::notify_all(&self.shared.work);
                Pending { rx }
            }
            Err(e) => Pending::ready(Err(e)),
        };
        if let Some(shed) = shed {
            self.shared.settle_shed(shed);
        }
        pending
    }

    /// Admits an ensure-loaded-then-run request on `tile`.
    pub fn submit_execute(
        &self,
        tile: TileCoord,
        kind: AcceleratorKind,
        op: AccelOp,
    ) -> Pending<S, (AccelRun, ExecPath)> {
        if self.shared.breaker_trips(tile) {
            self.shared.settle_shed(Shed {
                tile,
                ticket: None,
                victim: None,
            });
            return Pending::ready(Err(Error::TileQuarantined { tile }));
        }
        let deadline_at = self.shared.deadline_from_now();
        let (tx, rx) = S::channel();
        let (admitted, shed) = self.shared.admit_job(
            tile,
            deadline_at,
            Payload::Execute {
                kind,
                op: Box::new(op),
                done: tx,
            },
        );
        let pending = match admitted {
            Ok(()) => {
                S::notify_all(&self.shared.work);
                Pending { rx }
            }
            Err(e) => Pending::ready(Err(e)),
        };
        if let Some(shed) = shed {
            self.shared.settle_shed(shed);
        }
        pending
    }

    /// Waits (bounded) for a reconfiguration to complete on `tile`, or
    /// fails fast when the tile is quarantined. Used by blocking callers
    /// that found the tile mid-swap.
    pub(crate) fn wait_for_reconfig(&self, tile: TileCoord) -> Result<(), Error> {
        let shard = self
            .shared
            .shards
            .get(&tile)
            .ok_or(Error::Soc(presp_soc::Error::NoSuchTile { coord: tile }))?;
        let state = S::lock(&shard.state);
        if state.is_quarantined() {
            return Err(Error::TileQuarantined { tile });
        }
        let _unused = S::wait_timeout(&shard.reconfig_done, state, Duration::from_millis(50));
        Ok(())
    }

    /// Monotone count of head-job checkouts on `tile`. Latching probe for
    /// open-loop harnesses that must order a burst after a pinning
    /// request has actually been picked up: sample before submitting,
    /// then spin until the count moves — a short-lived claim window can't
    /// be missed the way polling an instantaneous "claimed" flag could.
    /// Unknown tiles read as zero.
    pub fn tile_claims(&self, tile: TileCoord) -> u64 {
        self.shared
            .shards
            .get(&tile)
            .map_or(0, |shard| S::lock(&shard.queue).claims)
    }

    /// Aggregate manager statistics. Post-mortem path: recovers from a
    /// poisoned core lock.
    pub fn stats(&self) -> ManagerStats {
        S::lock_recover(&self.shared.core).stats()
    }

    /// Wall-clock scheduling metrics, plus a fragmentation snapshot when
    /// amorphous floorplanning is enabled. Recovers from poisoned locks.
    /// Two-phase: the admission guard is scoped closed before the core
    /// lock is taken, so this read path adds no `sched_admission` →
    /// `core` lock-order edge.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        let mut stats = {
            let adm = S::lock_recover(&self.shared.admission);
            adm.stats.clone()
        };
        let core = S::lock_recover(&self.shared.core);
        if let Some(frag) = core.allocator().map(|a| a.stats()) {
            stats.free_columns = frag.free_columns as u64;
            stats.largest_free_span = frag.largest_free_span as u64;
            stats.external_fragmentation = frag.external_fragmentation();
        }
        stats
    }

    /// Switches the device core from fixed sockets to amorphous
    /// floorplanning over the whole fabric. Must run before the first
    /// load; see the device core's `enable_regions`.
    ///
    /// # Errors
    ///
    /// [`presp_soc::Error::RegionConflict`] when any tile already loaded.
    pub fn enable_regions(&self, policy: FitPolicy) -> Result<(), Error> {
        S::lock(&self.shared.core).enable_regions(policy, None)
    }

    /// [`Scheduler::enable_regions`] confined to the column window
    /// `window` — the PR share of the fabric, with the static system
    /// outside it.
    ///
    /// # Errors
    ///
    /// [`presp_soc::Error::RegionConflict`] when any tile already loaded.
    pub fn enable_regions_within(
        &self,
        policy: FitPolicy,
        window: std::ops::Range<u32>,
    ) -> Result<(), Error> {
        S::lock(&self.shared.core).enable_regions(policy, Some(window))
    }

    /// Fragmentation snapshot of the region allocator; `None` on the
    /// fixed-socket path.
    pub fn fragmentation(&self) -> Option<FragmentationStats> {
        S::lock_recover(&self.shared.core)
            .allocator()
            .map(|a| a.stats())
    }

    /// The live region lease of `tile` (amorphous floorplanning only);
    /// `None` for unknown tiles, unloaded tiles, or the fixed-socket
    /// path.
    pub fn tile_lease(&self, tile: TileCoord) -> Option<presp_floorplan::RegionLease> {
        self.shared
            .shards
            .get(&tile)
            .and_then(|shard| S::lock(&shard.state).lease().cloned())
    }

    /// Hit/miss counters of the verified-bitstream cache.
    pub fn cache_stats(&self) -> CacheStats {
        S::lock_recover(&self.shared.core).cache_stats()
    }

    /// Latest completion cycle on the shared virtual clock. Recovers from
    /// a poisoned core lock.
    pub fn makespan(&self) -> u64 {
        S::lock_recover(&self.shared.core).soc().horizon()
    }

    /// Attaches a trace sink to the underlying SoC. Post-mortem path like
    /// [`Scheduler::stats`]: recovers from a poisoned core lock so traces
    /// remain reachable after a worker crash.
    pub fn attach_tracer(&self, sink: presp_events::SharedSink) {
        S::lock_recover(&self.shared.core)
            .soc_mut()
            .attach_tracer(sink);
    }

    /// Attaches a sharded trace sink: worker `i` commits through shard
    /// `i mod sink.len()`, so concurrent commits never contend on one
    /// sink mutex. The tracer's seq counter survives per-commit shard
    /// re-attachment and commits are gate-serialized, so
    /// [`presp_events::ShardedSink::drain_merged`] reproduces the exact
    /// single-sink log byte for byte at any worker count.
    pub fn attach_sharded_tracer(&self, sink: &presp_events::ShardedSink) {
        let mut core = S::lock_recover(&self.shared.core);
        core.set_trace_shards((0..sink.len()).map(|i| sink.shard(i)).collect());
        // Attach shard 0 immediately so emissions before the first
        // worker commit (boot-time spans, scrubber passes) are recorded.
        core.soc_mut().attach_tracer(sink.shard(0));
    }

    /// Installs (or disarms, with `None`) a fault plan on the underlying
    /// SoC. Spec-driven harnesses arm a seeded plan before driving a
    /// workload and disarm it before a confirmation sweep; quiesce the
    /// workload first — swapping the plan mid-request changes which hook
    /// draws the in-flight request sees.
    pub fn set_fault_plan(&self, plan: Option<presp_fpga::fault::FaultPlan>) {
        S::lock_recover(&self.shared.core)
            .soc_mut()
            .set_fault_plan(plan);
    }

    /// Faults the installed plan has injected so far (all zero when no
    /// plan is armed). Post-mortem path: recovers from a poisoned core
    /// lock.
    pub fn injected_faults(&self) -> presp_fpga::fault::InjectedFaults {
        S::lock_recover(&self.shared.core)
            .soc()
            .fault_plan()
            .map(presp_fpga::fault::FaultPlan::injected)
            .unwrap_or_default()
    }

    /// Tiles currently quarantined, in coordinate order. Post-mortem
    /// path: recovers from poisoned shard locks.
    pub fn quarantined_tiles(&self) -> Vec<TileCoord> {
        self.shared
            .shards
            .iter()
            .filter(|(_, shard)| S::lock_recover(&shard.state).is_quarantined())
            .map(|(&coord, _)| coord)
            .collect()
    }

    /// Caller-side unlocked read the `unsynced_stats` mutant races with.
    #[doc(hidden)]
    pub fn unsynced_runs(&self) -> u64 {
        self.shared.racy_runs.read()
    }

    /// Installs (or disarms, with `None`) a worker-software-fault plan.
    /// Only a supervised scheduler (`policy.supervised`) consults the
    /// plan; arm it before driving a workload.
    pub fn set_worker_fault_plan(&self, plan: Option<WorkerFaultPlan>) {
        *S::lock_recover(&self.shared.worker_faults) = plan;
    }

    /// Supervision counters, with the installed fault plan's injection
    /// counters folded in. Post-mortem path: recovers from poisoned
    /// locks.
    pub fn supervisor_stats(&self) -> SupervisorStats {
        let mut stats = S::lock_recover(&self.shared.supervisor).stats;
        if let Some(plan) = S::lock_recover(&self.shared.worker_faults).as_ref() {
            stats.merge_injections(plan.injected());
        }
        stats
    }

    /// Tickets admitted but neither committed nor retired, plus claims
    /// still registered with the supervisor. Zero on any quiesced
    /// scheduler — the "no orphaned tickets" invariant the supervision
    /// layer preserves across worker deaths, hangs and sheds.
    pub fn orphaned_tickets(&self) -> u64 {
        let claims = S::lock_recover(&self.shared.supervisor).claims.len() as u64;
        let next_ticket = S::lock_recover(&self.shared.admission).next_ticket;
        let gate_next = S::lock_recover(&self.shared.gate).next;
        claims + next_ticket.saturating_sub(gate_next)
    }

    /// Stops the workers and joins them: pending unclaimed jobs are
    /// answered with [`Error::ManagerStopped`], their tickets retired so
    /// in-flight workers still pass the gate; hung claims are released
    /// the same way and the supervisor thread is told to exit.
    /// Idempotent and tolerant of poisoned locks.
    pub fn shutdown(&self) {
        self.shared.drain_to_stop();
        S::notify_all(&self.shared.work);
        // Supervised teardown: release wedged workers and their claims.
        let wedged: Vec<(u64, Payload<S>)> = {
            let mut sup = S::lock_recover(&self.shared.supervisor);
            sup.stop = true;
            let hung: Vec<u64> = sup
                .claims
                .iter()
                .filter(|(_, c)| c.hung && !c.committing && !c.stolen)
                .map(|(&ticket, _)| ticket)
                .collect();
            hung.into_iter()
                .map(|ticket| {
                    let claim = sup.claims.remove(&ticket).expect("listed above");
                    (ticket, claim.stash)
                })
                .collect()
        };
        S::notify_all(&self.shared.supervisor_cv);
        S::notify_all(&self.shared.hang_cv);
        if !wedged.is_empty() {
            {
                let mut gate = S::lock_recover(&self.shared.gate);
                for (ticket, _) in &wedged {
                    gate.retire(*ticket);
                }
            }
            S::notify_all(&self.shared.gate_cv);
            for (_, stash) in wedged {
                answer_stopped::<S>(stash);
            }
        }
        // Take the handles in a standalone statement: the workers-lock
        // guard must drop before joining, or a supervisor respawn racing
        // shutdown would deadlock pushing into the held lock.
        let handles = S::lock_recover(&self.workers).take();
        if let Some(handles) = handles {
            for handle in handles {
                let _ = S::join(handle);
            }
        }
        // Unblock any thread parked in a blocking wait loop.
        for shard in self.shared.shards.values() {
            S::notify_all(&shard.reconfig_done);
        }
    }
}

/// Emulated behavioral-evaluation latency, from
/// `PRESP_BENCH_EVAL_DELAY_MICROS`. The throughput benchmark sets this to
/// stand in for the wall-clock cost a real device or RTL evaluation would
/// have during the lock-free prepare stage: blocking time overlaps across
/// workers even on a single-core host, so the measurement reflects the
/// lock structure rather than the machine's core count. Unset (the
/// default for every test and production path) this is free.
fn bench_eval_delay() -> Option<Duration> {
    static DELAY: OnceLock<Option<Duration>> = OnceLock::new();
    *DELAY.get_or_init(|| {
        std::env::var("PRESP_BENCH_EVAL_DELAY_MICROS")
            .ok()?
            .parse()
            .ok()
            .map(Duration::from_micros)
    })
}

/// A per-worker pool of word buffers recycled across prepared bitstream
/// clones, so the steady-state prepare stage allocates nothing: the
/// buffer travels into the prepared `Arc<Bitstream>` and comes back via
/// [`presp_fpga::bitstream::Bitstream::into_words`] when the commit did
/// not retain the copy.
#[derive(Default)]
struct PrepareArena {
    pool: Vec<Vec<u32>>,
}

impl PrepareArena {
    /// How many idle buffers a worker keeps; one in flight + one spare.
    const KEEP: usize = 2;

    fn take(&mut self) -> Vec<u32> {
        self.pool.pop().unwrap_or_default()
    }

    fn give(&mut self, buf: Vec<u32>) {
        if self.pool.len() < Self::KEEP {
            self.pool.push(buf);
        }
    }
}

/// A committed job's reply, sent after all locks are released.
enum Reply<S: SyncFacade> {
    Reconfigure {
        kind: AcceleratorKind,
        done: Vec<S::Sender<Result<(), Error>>>,
        result: Result<(), Error>,
    },
    Run {
        done: S::Sender<Result<AccelRun, Error>>,
        result: Result<AccelRun, Error>,
    },
    Execute {
        done: S::Sender<Result<(AccelRun, ExecPath), Error>>,
        result: Result<(AccelRun, ExecPath), Error>,
    },
}

fn worker_loop<S: SyncFacade>(shared: &Shared<S>, worker: usize) {
    let mut arena = PrepareArena::default();
    let supervised = shared.policy.supervised;
    loop {
        // -- claim: pop the lowest claimable head ticket ----------------
        let job = {
            let mut adm = S::lock(&shared.admission);
            loop {
                if let Some(job) = shared.claim(&mut adm) {
                    break job;
                }
                if adm.stopping {
                    return;
                }
                adm = S::wait(&shared.work, adm);
            }
        };
        let (ticket, tile, depth) = (job.ticket, job.tile, job.depth);
        let shard = shared
            .shards
            .get(&tile)
            .expect("shard exists for admitted tile");
        if supervised {
            shared.register_claim(&job);
        }
        // Heals the gate should this thread unwind while owning the
        // claim; a no-op on every normal exit path.
        let _claim_guard = supervised.then(|| ClaimGuard {
            shared,
            ticket,
            worker,
        });
        let fault = shared.draw_fault(ticket);
        if matches!(fault, Some(WorkerFault::Panic)) {
            // Mid-prepare, before any protocol lock: the claim guard and
            // the supervisor do all the healing.
            std::panic::panic_any(InjectedWorkerPanic);
        }
        if let Some(WorkerFault::Stall { micros }) = fault {
            // A slow host thread; the commit gate absorbs the delay.
            S::stall(Duration::from_micros(micros));
        }
        let prepare_started = Instant::now();
        // -- prepare: evaluate the behavioral result outside any lock ---
        // Accelerator instances are stateless and `execute` re-checks
        // kind compatibility itself, so this is a pure function of the
        // operation; the protocol only consumes it after its own driver
        // checks pass.
        let precomputed: Precomputed = match &job.payload {
            Payload::Run { op, .. } | Payload::Execute { op, .. } => {
                if let Some(delay) = bench_eval_delay() {
                    // Wall-clock pacing only, never set under the model
                    // checker; no synchronization.
                    std::thread::sleep(delay); // presp-lint: allow — bench pacing
                }
                Some(AccelInstance::new(op.kind()).execute(op))
            }
            Payload::Reconfigure { .. } => None,
        };
        // -- prepare: pre-fetch the verified bitstream outside the core
        // lock. The registry is immutable after boot, so the verified
        // clone (into a recycled arena buffer) is exactly what the
        // commit-time cache miss would have produced; lookup errors are
        // left for the commit path to reproduce. A brief solo peek at
        // the tile state skips the work when the driver is already
        // loaded or the tile is out of service.
        let mut prepared: PreparedBitstream = match &job.payload {
            Payload::Reconfigure { kind, .. } | Payload::Execute { kind, .. } => {
                let skip = {
                    let state = S::lock(&shard.state);
                    state.is_quarantined() || state.services(*kind)
                };
                if skip {
                    None
                } else {
                    shared
                        .registry
                        .lookup(tile, *kind)
                        .ok()
                        .map(|stream| Arc::new(stream.clone_reusing(arena.take())))
                }
            }
            Payload::Run { .. } => None,
        };
        let is_reconfigure = matches!(job.payload, Payload::Reconfigure { .. });
        if matches!(fault, Some(WorkerFault::Hang)) {
            // Wedge before the commit slot. The supervisor steals the
            // claim and redispatches the stash under the same ticket;
            // this thread abandons its copy of the job on return.
            shared.park_hung(ticket);
            continue;
        }
        let gate_started = Instant::now();
        // -- gate: commit critical sections in strict ticket order ------
        // (The commit flag is settled before the gate binding below so the
        // acquisition stays a statement-level `let` — the static analyzer's
        // guard model is lexical and must witness `gate` live across the
        // nested `tile_state`/`core` acquisitions.)
        if supervised {
            if shared.mutants.supervisor_gate_inversion {
                // MUTANT: flags the claim as committing while already
                // holding the gate — the reverse of the supervisor's steal
                // scan (`supervisor` → `gate`).
                let gate = S::lock(&shared.gate); // presp-analyze: mutant
                let mut sup = S::lock(&shared.supervisor); // presp-analyze: mutant
                if let Some(claim) = sup.claims.get_mut(&ticket) {
                    claim.committing = true;
                }
                drop(sup);
                drop(gate);
            } else if !shared.begin_commit(ticket) {
                // The supervisor stole this claim while we prepared; its
                // redispatched copy is someone else's job now.
                continue;
            }
        }
        let mut gate = S::lock(&shared.gate);
        while gate.next != ticket {
            gate = S::wait(&shared.gate_cv, gate);
        }
        let commit_started = Instant::now();
        let reply: Reply<S> = {
            let (mut state, mut core) = if shared.mutants.shard_core_inversion && is_reconfigure {
                // MUTANT: nested acquisition opposite to the scrubber's
                // (and submit path's) tile_state → core.
                let core = S::lock(&shared.core); // presp-analyze: mutant
                let state = S::lock(&shard.state); // presp-analyze: mutant
                (state, core)
            } else {
                let state = S::lock(&shard.state);
                let core = S::lock(&shared.core);
                (state, core)
            };
            // Route this commit's trace records to the worker's own
            // shard (seq survives re-attachment; merge restores order).
            if let Some(sink) = core.trace_shard(worker) {
                core.soc_mut().tracer_mut().attach(sink);
            }
            let now = core.soc().horizon();
            // Healed faults of earlier claimants are recorded here, at
            // the job's own commit slot: gate-ordered, so the merged
            // trace is deterministic for a given fault seed no matter
            // when the healing happened on the wall clock.
            for (i, past) in job.redispatch.iter().enumerate() {
                if past.died {
                    let ordinal = gate.deaths;
                    gate.deaths += 1;
                    core.soc_mut()
                        .tracer_mut()
                        .instant(ClockDomain::SocCycles, now, || TraceEvent::WorkerDied {
                            worker: ordinal,
                            ticket,
                        });
                }
                core.soc_mut()
                    .tracer_mut()
                    .instant(ClockDomain::SocCycles, now, || {
                        TraceEvent::TicketRedispatched {
                            tile: loc(tile),
                            ticket,
                            attempt: (i + 1) as u64,
                        }
                    });
            }
            core.soc_mut()
                .tracer_mut()
                .instant(ClockDomain::SocCycles, now, || TraceEvent::SchedDispatch {
                    tile: loc(tile),
                    ticket,
                    depth,
                });
            let at = state.idle_at();
            // Deadline check at the commit slot: the request's virtual
            // start is where the tile timeline and global horizon meet.
            let begin = at.max(now);
            let late = job
                .deadline_at
                .map_or(0, |deadline| begin.saturating_sub(deadline));
            let deadline_missed = late > 0;
            if deadline_missed {
                // The miss is the request's single ledger outcome: the
                // protocol call that would count it is skipped.
                core.stats_mut().reconfig_requests += 1;
                core.stats_mut().deadline_misses += 1;
                core.soc_mut()
                    .tracer_mut()
                    .instant(ClockDomain::SocCycles, begin, || {
                        TraceEvent::DeadlineMissed {
                            tile: loc(tile),
                            ticket,
                            late,
                        }
                    });
            }
            match job.payload {
                Payload::Reconfigure { kind, done } if deadline_missed => Reply::Reconfigure {
                    kind,
                    done,
                    result: Err(Error::DeadlineExceeded { tile }),
                },
                Payload::Reconfigure { kind, done } => Reply::Reconfigure {
                    kind,
                    done,
                    result: protocol::request_reconfiguration_at(
                        &mut state,
                        &mut core,
                        &shared.policy,
                        kind,
                        at,
                        &mut prepared,
                    )
                    .map(|_| ()),
                },
                Payload::Run { op, done } => Reply::Run {
                    done,
                    result: protocol::run_at(&mut state, &mut core, &op, at, precomputed),
                },
                Payload::Execute { kind, op, done } if deadline_missed => Reply::Execute {
                    done,
                    result: if shared.policy.cpu_fallback {
                        // Too late for the accelerator path; degrade to
                        // the CPU so application work still completes.
                        core.soc_mut()
                            .tracer_mut()
                            .instant(ClockDomain::SocCycles, begin, || TraceEvent::CpuFallback {
                                kind: kind.name(),
                            });
                        let run = protocol::run_on_cpu_at(&mut core, &op, begin, precomputed);
                        if run.is_ok() {
                            core.stats_mut().fallback_runs += 1;
                        }
                        run.map(|run| (run, ExecPath::CpuFallback))
                    } else {
                        Err(Error::DeadlineExceeded { tile })
                    },
                },
                Payload::Execute { kind, op, done } => Reply::Execute {
                    done,
                    result: protocol::run_with_fallback_at(
                        &mut state,
                        &mut core,
                        &shared.policy,
                        kind,
                        &op,
                        at,
                        precomputed,
                        &mut prepared,
                    ),
                },
            }
        };
        gate.retire(ticket);
        drop(gate);
        S::notify_all(&shared.gate_cv);
        let stages = StageNanos {
            prepare: (gate_started - prepare_started).as_nanos() as u64,
            gate_wait: (commit_started - gate_started).as_nanos() as u64,
            commit: commit_started.elapsed().as_nanos() as u64,
        };
        // Recycle the prepared buffer when the commit did not retain the
        // copy (cache hit, services short-circuit, or an error path).
        if let Some(arc) = prepared.take() {
            if let Ok(stream) = Arc::try_unwrap(arc) {
                arena.give(stream.into_words());
            }
        }
        if matches!(reply, Reply::Reconfigure { .. } | Reply::Execute { .. }) {
            S::notify_all(&shard.reconfig_done);
        }
        // -- complete: free the tile, collect coalesced waiters ---------
        let (extra_waiters, claimable) = shared.complete(tile, stages);
        if claimable {
            S::notify_all(&shared.work);
        }
        // -- reply ------------------------------------------------------
        match reply {
            Reply::Reconfigure { kind, done, result } => {
                let folded = (done.len() - 1 + extra_waiters.len()) as u64;
                if folded > 0 {
                    let mut core = S::lock(&shared.core);
                    core.stats_mut().reconfig_requests += folded;
                    core.stats_mut().coalesced += folded;
                    let now = core.soc().horizon();
                    core.soc_mut()
                        .tracer_mut()
                        .instant(ClockDomain::SocCycles, now, || {
                            TraceEvent::RequestCoalesced {
                                tile: loc(tile),
                                kind: kind.name(),
                                waiters: folded,
                            }
                        });
                }
                for tx in done.into_iter().chain(extra_waiters) {
                    let _ = S::send(&tx, result.clone());
                }
            }
            Reply::Run { done, result } => {
                let _ = S::send(&done, result);
            }
            Reply::Execute { done, result } => {
                let _ = S::send(&done, result);
                if shared.mutants.unsynced_stats {
                    // MUTANT: bookkeeping after the reply, outside any
                    // lock — races with `unsynced_runs()`.
                    let n = shared.racy_runs.read();
                    shared.racy_runs.write(n + 1);
                }
            }
        }
        if supervised {
            shared.end_commit(ticket);
        }
    }
}

/// One watchdog action, decided under the `supervisor` lock and executed
/// outside it.
enum Duty<S: SyncFacade> {
    /// Shutdown: exit the watchdog.
    Stop,
    /// Respawn a dead worker into the given slot.
    Respawn(usize),
    /// Steal a wedged claim (already removed from the table) and
    /// redispatch it under its ticket.
    Steal(u64, Claim<S>),
    /// Out of workers and out of restart budget: drain so waiters get
    /// [`Error::ManagerStopped`] instead of hanging forever.
    Drain,
}

/// The supervisor thread: respawns dead workers out of the restart
/// budget and steals claims wedged in front of the commit gate. Only the
/// ticket the gate is blocked on is ever scanned — that is the one claim
/// whose owner being wedged stalls the whole scheduler — making the scan
/// `supervisor` → `gate`, the one declared supervision lock edge.
fn supervisor_loop<S: SyncFacade>(shared: &Arc<Shared<S>>, workers: &WorkerHandles<S>) {
    /// Watchdog poll interval when nothing signals. Under the model
    /// checker the timeout fires at quiescence instead, which is exactly
    /// "every live worker is parked" — the wedge the watchdog exists
    /// to break.
    const POLL: Duration = Duration::from_millis(2);
    loop {
        let duty: Duty<S> = {
            let mut sup = S::lock(&shared.supervisor);
            loop {
                // Dead slots drain ahead of the stop flag: a death is
                // queued before its redispatched reply can land, so
                // draining here makes the respawn count a deterministic
                // min(deaths, budget) even when shutdown races the poll.
                // (A worker respawned during shutdown sees `stopping`
                // and exits immediately.)
                if let Some(slot) = sup.dead.pop() {
                    if sup.restarts_left > 0 {
                        sup.restarts_left -= 1;
                        sup.live_workers += 1;
                        sup.stats.worker_respawns += 1;
                        break Duty::Respawn(slot);
                    }
                    if sup.live_workers == 0 && !sup.stop {
                        break Duty::Drain;
                    }
                    // Budget exhausted but other workers survive: the
                    // pool shrinks and the dead claim was already healed.
                    continue;
                }
                if sup.stop {
                    break Duty::Stop;
                }
                let blocking = { S::lock(&shared.gate).next };
                let wedged = sup
                    .claims
                    .get(&blocking)
                    .is_some_and(|claim| claim.hung && !claim.committing && !claim.stolen);
                if wedged {
                    let claim = sup.claims.remove(&blocking).expect("checked above");
                    break Duty::Steal(blocking, claim);
                }
                let (guard, _timed_out) = S::wait_timeout(&shared.supervisor_cv, sup, POLL);
                sup = guard;
            }
        };
        match duty {
            Duty::Stop => return,
            Duty::Respawn(slot) => {
                let sh = Arc::clone(shared);
                let handle = S::spawn("presp-worker-r", move || worker_loop(&sh, slot));
                // `None` means shutdown already took the handles; the
                // respawned worker then sees `stopping` and exits on its
                // own, just unjoined.
                if let Some(handles) = S::lock_recover(workers).as_mut() {
                    handles.push(handle);
                }
            }
            Duty::Steal(ticket, claim) => {
                // Release the wedged owner; it observes its claim gone
                // and abandons the job, rejoining the worker pool.
                S::notify_all(&shared.hang_cv);
                shared.redispatch_claim(ticket, claim, false);
            }
            Duty::Drain => {
                shared.drain_to_stop();
                S::lock_recover(&shared.supervisor).stop = true;
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_percentile_is_nearest_rank() {
        let mut stats = SchedulerStats::default();
        stats.wait_micros.extend([40, 10, 30, 20]);
        assert_eq!(stats.wait_percentile_micros(0.0), 10);
        assert_eq!(stats.wait_percentile_micros(25.0), 10);
        // The old rounded-interpolation index reported 30 here.
        assert_eq!(stats.wait_percentile_micros(50.0), 20);
        assert_eq!(stats.wait_percentile_micros(75.0), 30);
        assert_eq!(stats.wait_percentile_micros(99.0), 40);
        assert_eq!(stats.wait_percentile_micros(100.0), 40);
    }

    #[test]
    fn wait_percentile_handles_empty_and_singleton() {
        assert_eq!(SchedulerStats::default().wait_percentile_micros(50.0), 0);
        let mut one = SchedulerStats::default();
        one.wait_micros.push(7);
        assert_eq!(one.wait_percentile_micros(0.0), 7);
        assert_eq!(one.wait_percentile_micros(50.0), 7);
        assert_eq!(one.wait_percentile_micros(100.0), 7);
    }
}
