//! The multi-worker DPR scheduler.
//!
//! The old workqueue demonstrator funnelled every request through one
//! worker thread holding one `ReconfigManager` lock, so two requests to
//! *independent* tiles still serialized end to end. This module is the
//! sharded replacement built on the [`crate::tile`] / [`crate::device`]
//! split:
//!
//! * **Per-tile queues, N workers.** Each tile's FIFO lives in its own
//!   shard behind a `tile_queue` mutex; a small `sched_admission` lock
//!   holds only the global ticket counter, the aggregate stats and the
//!   *claimable-head index* — a `ticket → tile` map of every tile whose
//!   queue head is free to claim. Workers claim by popping the index
//!   minimum (O(log tiles), not an O(tiles) scan), then evaluate the
//!   behavioral accelerator result *outside any lock* — accelerator
//!   instances are stateless, so the value is a pure function of the
//!   operation — and pre-fetch the verified bitstream from the
//!   boot-immutable registry into a per-worker arena. Only the short
//!   ICAP/NoC/virtual-time critical section then runs under the shard +
//!   device-core locks.
//! * **The ticket gate.** Every admitted job carries a global ticket and
//!   commits its critical section in strict ticket order. This keeps the
//!   shared virtual timeline — and therefore stats, results, makespan and
//!   the trace log — *identical for any worker count*: `workers = 16`
//!   replays the exact schedule `workers = 1` would produce, while the
//!   expensive behavioral work still overlaps across workers. Liveness
//!   holds because workers always claim the lowest claimable head ticket:
//!   the minimum unretired ticket is always claimed or claimable, so the
//!   gate can never wedge.
//! * **Sharded tracing.** With [`Scheduler::attach_sharded_tracer`] each
//!   worker re-attaches its own trace shard before committing (the
//!   tracer's seq counter survives re-attachment), so concurrent commits
//!   never contend on one sink mutex; draining merges shards back into
//!   seq order, byte-identical to the single-sink log.
//! * **Request coalescing.** A reconfiguration submitted while an
//!   identical `(tile, kind)` one is queued or in flight folds into it:
//!   all waiters are answered by the single underlying load
//!   ([`presp_events::TraceEvent::RequestCoalesced`]).
//! * **The bitstream cache.** The device core fronts registry lookups
//!   with a bounded LRU of verified streams ([`crate::cache`]).
//!
//! Lock order (enforced by the `presp-check` lock-order graph under
//! exploration): `sched_admission` → `tile_queue` on the admission side
//! (never interleaved with the commit-side locks), and `gate` →
//! `tile_state` → `core` on the commit side. The committed
//! [`MutantConfig`] variants invert edges of this graph so the
//! model-check suite can prove it notices.

use crate::cache::{BitstreamCache, CacheStats};
use crate::device::{loc, DeviceCore};
use crate::error::Error;
use crate::manager::{ExecPath, ManagerStats, RecoveryPolicy};
use crate::protocol::{self, Precomputed, PreparedBitstream};
use crate::registry::BitstreamRegistry;
use crate::sync::{Arc, StdSync, SyncFacade};
use crate::tile::TileState;
use presp_accel::catalog::AcceleratorKind;
use presp_accel::{AccelInstance, AccelOp};

/// Reply channels of requests that coalesced into an in-flight
/// reconfiguration, collected at completion and answered together.
type CoalescedWaiters<S> = Vec<<S as SyncFacade>::Sender<Result<(), Error>>>;
use presp_events::trace::ClockDomain;
use presp_events::TraceEvent;
use presp_soc::config::TileCoord;
use presp_soc::sim::{AccelRun, Soc};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
// Not a protocol primitive: caches an env read once, immutable after
// init, so there is no schedule-dependent behavior to explore.
use std::sync::OnceLock; // presp-lint: allow — init-once env cache
use std::time::{Duration, Instant};

/// Default capacity of the verified-bitstream LRU on the threaded path.
pub const DEFAULT_CACHE_CAPACITY: usize = 16;

/// Deliberate concurrency-bug switches for checker validation: committed
/// known-bad protocol variants the model-check suite must detect and
/// replay deterministically. All off by default; reachable from the
/// workspace test suites (hence `pub`) but hidden from the API surface.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, Default)]
pub struct MutantConfig {
    /// The worker commits reconfigurations acquiring `core` →
    /// `tile_state`, the reverse of the scrubber's (and every other
    /// path's) `tile_state` → `core`: a cross-daemon lock-order
    /// inversion.
    pub shard_core_inversion: bool,
    /// The worker bumps a run counter *after* replying, outside any lock,
    /// while callers read it after `recv` — no happens-before edge.
    pub unsynced_stats: bool,
    /// The worker's completion path acquires `tile_queue` →
    /// `sched_admission`, the reverse of every admission path's
    /// `sched_admission` → `tile_queue`: a submitter racing a completing
    /// worker deadlocks.
    pub queue_admission_inversion: bool,
}

/// Wall-clock scheduling metrics, aggregated across all workers.
///
/// These are *measurement-side* counters (queue-wait percentiles are real
/// `Instant` durations, not virtual cycles); they never feed the trace
/// log, which stays a pure function of the submission order.
#[derive(Debug, Clone, Default)]
pub struct SchedulerStats {
    /// Jobs admitted to a tile queue (coalesced submissions excluded).
    pub admitted: u64,
    /// Jobs fully committed and answered.
    pub completed: u64,
    /// Submissions folded into a queued or in-flight reconfiguration.
    pub coalesced: u64,
    /// Largest per-tile backlog observed at admission.
    pub max_queue_depth: u64,
    /// Wall-clock nanoseconds workers spent in the lock-free prepare
    /// stage (behavioral evaluation + bitstream pre-fetch), summed
    /// across workers.
    pub stage_prepare_nanos: u64,
    /// Wall-clock nanoseconds workers spent waiting at the commit-order
    /// ticket gate, summed across workers.
    pub stage_gate_wait_nanos: u64,
    /// Wall-clock nanoseconds workers spent inside the shard + core
    /// commit critical section, summed across workers.
    pub stage_commit_nanos: u64,
    wait_micros: Vec<u64>,
}

impl SchedulerStats {
    fn record_wait(&mut self, waited: Duration) {
        self.wait_micros.push(waited.as_micros() as u64);
    }

    /// Queue-wait percentile in microseconds (`p` in `[0, 100]`), the
    /// time between admission and a worker claiming the job. Zero when
    /// nothing completed yet.
    pub fn wait_percentile_micros(&self, p: f64) -> u64 {
        if self.wait_micros.is_empty() {
            return 0;
        }
        let mut sorted = self.wait_micros.clone();
        sorted.sort_unstable();
        let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Number of queue-wait samples recorded.
    pub fn wait_samples(&self) -> usize {
        self.wait_micros.len()
    }
}

/// A request travelling through a tile queue.
enum Payload<S: SyncFacade> {
    Reconfigure {
        kind: AcceleratorKind,
        /// Primary caller plus any submissions tail-coalesced before a
        /// worker claimed the job: all answered by one load.
        done: Vec<S::Sender<Result<(), Error>>>,
    },
    Run {
        op: Box<AccelOp>,
        done: S::Sender<Result<AccelRun, Error>>,
    },
    Execute {
        kind: AcceleratorKind,
        op: Box<AccelOp>,
        done: S::Sender<Result<(AccelRun, ExecPath), Error>>,
    },
}

struct Job<S: SyncFacade> {
    ticket: u64,
    tile: TileCoord,
    /// Tile backlog at admission (this job included) — traced in
    /// [`TraceEvent::SchedDispatch`].
    depth: u64,
    admitted: Instant,
    payload: Payload<S>,
}

/// A reconfiguration a worker has claimed but not yet answered; identical
/// submissions arriving while the tile queue is empty fold into it.
struct Inflight<S: SyncFacade> {
    kind: AcceleratorKind,
    extra_waiters: Vec<S::Sender<Result<(), Error>>>,
}

/// One tile's FIFO, behind its own `tile_queue` mutex (nested under
/// `sched_admission` whenever both are held).
struct TileQueue<S: SyncFacade> {
    jobs: VecDeque<Job<S>>,
    /// A worker holds this tile's head job; per-tile FIFO order.
    checked_out: bool,
    inflight: Option<Inflight<S>>,
}

// Not derived: `derive(Default)` would demand `S: Default`.
impl<S: SyncFacade> TileQueue<S> {
    fn new() -> TileQueue<S> {
        TileQueue {
            jobs: VecDeque::new(),
            checked_out: false,
            inflight: None,
        }
    }
}

/// Everything guarded by the `sched_admission` lock: the global ticket
/// counter, the claimable-head index, the stop flag and the aggregate
/// scheduler stats. Deliberately small — the per-tile FIFOs live in
/// their own shards.
struct Admission {
    next_ticket: u64,
    stopping: bool,
    stats: SchedulerStats,
    /// Claimable heads: `front ticket → tile` for every tile whose queue
    /// is non-empty and not checked out. Invariant maintained at push,
    /// claim and complete; workers pop the minimum, which is what keeps
    /// the ticket gate live.
    heads: BTreeMap<u64, TileCoord>,
}

enum Admitted<S: SyncFacade> {
    /// A fresh job joined the queue — wake a worker.
    Enqueued,
    /// Folded into a queued or in-flight reconfiguration.
    Coalesced,
    /// Refused before queueing; answer the caller directly.
    Refused(Error, S::Sender<Result<(), Error>>),
}

/// Commit-order gate: jobs pass in strict global ticket order, so the
/// virtual-time critical sections replay the single-worker schedule
/// regardless of how many workers overlap their lock-free preparation.
struct Gate {
    next: u64,
    /// Tickets retired out of order (drained at shutdown while a lower
    /// ticket was still in flight).
    retired: BTreeSet<u64>,
}

impl Gate {
    fn retire(&mut self, ticket: u64) {
        self.retired.insert(ticket);
        while self.retired.remove(&self.next) {
            self.next += 1;
        }
    }
}

/// One tile's concurrent shard: the [`TileState`] under its own lock, the
/// tile's FIFO under its own lock, plus the condvar signalled when a
/// reconfiguration on this tile completes.
pub(crate) struct TileShard<S: SyncFacade> {
    pub(crate) state: S::Mutex<TileState>,
    pub(crate) reconfig_done: S::Condvar,
    queue: S::Mutex<TileQueue<S>>,
}

/// Wall-clock time a worker spent in each pipeline stage for one job;
/// flushed into [`SchedulerStats`] under `sched_admission` at completion.
#[derive(Debug, Clone, Copy, Default)]
struct StageNanos {
    prepare: u64,
    gate_wait: u64,
    commit: u64,
}

/// State shared between submitters, the worker pool and the scrubber.
pub(crate) struct Shared<S: SyncFacade> {
    pub(crate) shards: BTreeMap<TileCoord, TileShard<S>>,
    pub(crate) core: S::Mutex<DeviceCore>,
    admission: S::Mutex<Admission>,
    /// Signalled when a job is admitted or a tile becomes claimable.
    work: S::Condvar,
    gate: S::Mutex<Gate>,
    /// Signalled when the gate advances.
    gate_cv: S::Condvar,
    /// The boot-immutable registry, shared with the workers' lock-free
    /// prepare stage (the core holds the same handle).
    registry: Arc<BitstreamRegistry>,
    pub(crate) policy: RecoveryPolicy,
    mutants: MutantConfig,
    /// Storage the `unsynced_stats` mutant shares without a lock; under
    /// the checker every access is happens-before verified.
    racy_runs: presp_check::RaceCell<u64>,
}

impl<S: SyncFacade> Shared<S> {
    /// Admits a reconfiguration, coalescing where possible. Lock order:
    /// `sched_admission` → `tile_queue`.
    fn admit_reconfigure(
        &self,
        tile: TileCoord,
        kind: AcceleratorKind,
        done: S::Sender<Result<(), Error>>,
    ) -> Admitted<S> {
        let mut adm = S::lock(&self.admission);
        if adm.stopping {
            return Admitted::Refused(Error::ManagerStopped, done);
        }
        let Some(shard) = self.shards.get(&tile) else {
            return Admitted::Refused(
                Error::Soc(presp_soc::Error::NoSuchTile { coord: tile }),
                done,
            );
        };
        let mut tq = S::lock(&shard.queue);
        // Tail coalescing: identical to the youngest queued request —
        // folding preserves per-tile FIFO semantics exactly.
        if let Some(Job {
            payload:
                Payload::Reconfigure {
                    kind: tail,
                    done: waiters,
                },
            ..
        }) = tq.jobs.back_mut()
        {
            if *tail == kind {
                waiters.push(done);
                adm.stats.coalesced += 1;
                return Admitted::Coalesced;
            }
        }
        // In-flight coalescing: nothing queued behind the claimed job, so
        // joining it cannot reorder anything.
        if tq.jobs.is_empty() {
            if let Some(inflight) = tq.inflight.as_mut() {
                if inflight.kind == kind {
                    inflight.extra_waiters.push(done);
                    adm.stats.coalesced += 1;
                    return Admitted::Coalesced;
                }
            }
        }
        Self::push(
            &mut adm,
            &mut tq,
            tile,
            Payload::Reconfigure {
                kind,
                done: vec![done],
            },
        );
        Admitted::Enqueued
    }

    /// Admits a non-coalescable job; the caller answers with the error
    /// when the scheduler is stopping or the tile is unknown.
    fn admit_job(&self, tile: TileCoord, payload: Payload<S>) -> Result<(), Error> {
        let mut adm = S::lock(&self.admission);
        if adm.stopping {
            return Err(Error::ManagerStopped);
        }
        let Some(shard) = self.shards.get(&tile) else {
            return Err(Error::Soc(presp_soc::Error::NoSuchTile { coord: tile }));
        };
        let mut tq = S::lock(&shard.queue);
        Self::push(&mut adm, &mut tq, tile, payload);
        Ok(())
    }

    /// Assigns the next global ticket and appends the job; ticket
    /// assignment is atomic with the queue push (both locks held), which
    /// the gate's liveness depends on.
    fn push(adm: &mut Admission, tq: &mut TileQueue<S>, tile: TileCoord, payload: Payload<S>) {
        let ticket = adm.next_ticket;
        adm.next_ticket += 1;
        let depth = tq.jobs.len() as u64 + 1;
        if tq.jobs.is_empty() && !tq.checked_out {
            adm.heads.insert(ticket, tile);
        }
        tq.jobs.push_back(Job {
            ticket,
            tile,
            depth,
            admitted: Instant::now(),
            payload,
        });
        adm.stats.admitted += 1;
        adm.stats.max_queue_depth = adm.stats.max_queue_depth.max(depth);
    }

    /// Claims the job with the globally lowest claimable head ticket by
    /// popping the admission index minimum. Always picking the minimum is
    /// what keeps the ticket gate live: the oldest unretired job is never
    /// passed over for long.
    fn claim(&self, adm: &mut Admission) -> Option<Job<S>> {
        let (ticket, tile) = adm.heads.pop_first()?;
        let shard = self.shards.get(&tile).expect("indexed tile exists");
        let mut tq = S::lock(&shard.queue);
        tq.checked_out = true;
        let job = tq.jobs.pop_front().expect("indexed head job exists");
        debug_assert_eq!(job.ticket, ticket, "head index out of sync");
        if let Payload::Reconfigure { kind, .. } = &job.payload {
            tq.inflight = Some(Inflight {
                kind: *kind,
                extra_waiters: Vec::new(),
            });
        }
        adm.stats.record_wait(job.admitted.elapsed());
        Some(job)
    }

    /// Returns the tile to claimable state, re-indexes its next head,
    /// flushes the worker's stage timings and collects any waiters that
    /// coalesced into the in-flight reconfiguration. The boolean reports
    /// whether a queued job became claimable — the only case workers need
    /// waking for (waking the whole pool per completion measurably hurts
    /// on small hosts).
    fn complete(&self, tile: TileCoord, stages: StageNanos) -> (CoalescedWaiters<S>, bool) {
        let shard = self.shards.get(&tile).expect("completed tile exists");
        if self.mutants.queue_admission_inversion {
            // MUTANT: nested acquisition opposite to every admission
            // path's sched_admission → tile_queue.
            let mut tq = S::lock(&shard.queue); // presp-analyze: mutant
            let mut adm = S::lock(&self.admission); // presp-analyze: mutant
            Self::finish(&mut adm, &mut tq, tile, stages)
        } else {
            let mut adm = S::lock(&self.admission);
            let mut tq = S::lock(&shard.queue);
            Self::finish(&mut adm, &mut tq, tile, stages)
        }
    }

    fn finish(
        adm: &mut Admission,
        tq: &mut TileQueue<S>,
        tile: TileCoord,
        stages: StageNanos,
    ) -> (CoalescedWaiters<S>, bool) {
        tq.checked_out = false;
        let reindexed = if let Some(job) = tq.jobs.front() {
            adm.heads.insert(job.ticket, tile);
            true
        } else {
            false
        };
        let extras = tq
            .inflight
            .take()
            .map(|inflight| inflight.extra_waiters)
            .unwrap_or_default();
        adm.stats.completed += 1;
        adm.stats.stage_prepare_nanos += stages.prepare;
        adm.stats.stage_gate_wait_nanos += stages.gate_wait;
        adm.stats.stage_commit_nanos += stages.commit;
        (extras, reindexed)
    }
}

/// An admitted request's completion handle.
///
/// Submission APIs return immediately; `wait` blocks for the worker's
/// reply. Dropping a `Pending` abandons the request (the worker's reply
/// goes nowhere, the work still happens).
pub struct Pending<S: SyncFacade, T: Send + 'static> {
    rx: S::Receiver<Result<T, Error>>,
}

impl<S: SyncFacade, T: Send + 'static> Pending<S, T> {
    /// Blocks until the request is answered.
    ///
    /// # Errors
    ///
    /// [`Error::ManagerStopped`] when the scheduler shut down before
    /// answering, plus whatever the request itself produced.
    pub fn wait(self) -> Result<T, Error> {
        S::recv(&self.rx).ok_or(Error::ManagerStopped)?
    }

    /// A handle that is already answered (refused-at-submit requests).
    fn ready(result: Result<T, Error>) -> Pending<S, T> {
        let (tx, rx) = S::channel();
        let _ = S::send(&tx, result);
        Pending { rx }
    }
}

/// The sharded, multi-worker front-end to the DPR protocol.
///
/// Cloning is cheap; clones share the same queues, shards and device
/// core. See the [module docs](self) for the scheduling model.
/// Join handles for the worker pool, taken once at shutdown.
type WorkerHandles<S> =
    Arc<<S as SyncFacade>::Mutex<Option<Vec<<S as SyncFacade>::JoinHandle<()>>>>>;

pub struct Scheduler<S: SyncFacade = StdSync> {
    pub(crate) shared: Arc<Shared<S>>,
    workers: WorkerHandles<S>,
}

impl<S: SyncFacade> Clone for Scheduler<S> {
    fn clone(&self) -> Scheduler<S> {
        Scheduler {
            shared: Arc::clone(&self.shared),
            workers: Arc::clone(&self.workers),
        }
    }
}

impl<S: SyncFacade> Scheduler<S> {
    /// Boots `workers` worker threads over a SoC and registry. One shard
    /// is created per tile in the SoC's configuration, so requests to
    /// any grid coordinate flow through the same protocol (and fail with
    /// the same errors) as on the deterministic manager.
    pub(crate) fn boot(
        soc: Soc,
        registry: BitstreamRegistry,
        policy: RecoveryPolicy,
        workers: usize,
        cache_capacity: usize,
        mutants: MutantConfig,
    ) -> Scheduler<S> {
        let registry = Arc::new(registry);
        let shards: BTreeMap<TileCoord, TileShard<S>> = soc
            .config()
            .iter()
            .map(|(coord, _)| {
                (
                    coord,
                    TileShard {
                        state: S::mutex_labeled("tile_state", TileState::new(coord)),
                        reconfig_done: S::condvar(),
                        queue: S::mutex_labeled("tile_queue", TileQueue::new()),
                    },
                )
            })
            .collect();
        let admission = Admission {
            next_ticket: 0,
            stopping: false,
            stats: SchedulerStats::default(),
            heads: BTreeMap::new(),
        };
        let shared = Arc::new(Shared {
            shards,
            core: S::mutex_labeled(
                "core",
                DeviceCore::new_shared(
                    soc,
                    Arc::clone(&registry),
                    BitstreamCache::new(cache_capacity),
                ),
            ),
            admission: S::mutex_labeled("sched_admission", admission),
            work: S::condvar(),
            gate: S::mutex_labeled(
                "gate",
                Gate {
                    next: 0,
                    retired: BTreeSet::new(),
                },
            ),
            gate_cv: S::condvar(),
            registry,
            policy,
            mutants,
            racy_runs: presp_check::RaceCell::new("racy_runs", 0),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                S::spawn(
                    match i {
                        0 => "presp-worker-0",
                        1 => "presp-worker-1",
                        2 => "presp-worker-2",
                        3 => "presp-worker-3",
                        _ => "presp-worker-n",
                    },
                    move || worker_loop(&shared, i),
                )
            })
            .collect();
        Scheduler {
            shared,
            workers: Arc::new(S::mutex_labeled("worker", Some(handles))),
        }
    }

    /// Admits a reconfiguration request, coalescing it into an identical
    /// queued or in-flight one when possible.
    pub fn submit_reconfigure(&self, tile: TileCoord, kind: AcceleratorKind) -> Pending<S, ()> {
        let (tx, rx) = S::channel();
        match self.shared.admit_reconfigure(tile, kind, tx) {
            Admitted::Enqueued => S::notify_all(&self.shared.work),
            Admitted::Coalesced => {}
            Admitted::Refused(e, tx) => {
                let _ = S::send(&tx, Err(e));
            }
        }
        Pending { rx }
    }

    /// Admits an accelerator invocation on `tile`.
    pub fn submit_run(&self, tile: TileCoord, op: AccelOp) -> Pending<S, AccelRun> {
        let (tx, rx) = S::channel();
        match self.shared.admit_job(
            tile,
            Payload::Run {
                op: Box::new(op),
                done: tx,
            },
        ) {
            Ok(()) => {
                S::notify_all(&self.shared.work);
                Pending { rx }
            }
            Err(e) => Pending::ready(Err(e)),
        }
    }

    /// Admits an ensure-loaded-then-run request on `tile`.
    pub fn submit_execute(
        &self,
        tile: TileCoord,
        kind: AcceleratorKind,
        op: AccelOp,
    ) -> Pending<S, (AccelRun, ExecPath)> {
        let (tx, rx) = S::channel();
        match self.shared.admit_job(
            tile,
            Payload::Execute {
                kind,
                op: Box::new(op),
                done: tx,
            },
        ) {
            Ok(()) => {
                S::notify_all(&self.shared.work);
                Pending { rx }
            }
            Err(e) => Pending::ready(Err(e)),
        }
    }

    /// Waits (bounded) for a reconfiguration to complete on `tile`, or
    /// fails fast when the tile is quarantined. Used by blocking callers
    /// that found the tile mid-swap.
    pub(crate) fn wait_for_reconfig(&self, tile: TileCoord) -> Result<(), Error> {
        let shard = self
            .shared
            .shards
            .get(&tile)
            .ok_or(Error::Soc(presp_soc::Error::NoSuchTile { coord: tile }))?;
        let state = S::lock(&shard.state);
        if state.is_quarantined() {
            return Err(Error::TileQuarantined { tile });
        }
        let _unused = S::wait_timeout(&shard.reconfig_done, state, Duration::from_millis(50));
        Ok(())
    }

    /// Aggregate manager statistics. Post-mortem path: recovers from a
    /// poisoned core lock.
    pub fn stats(&self) -> ManagerStats {
        S::lock_recover(&self.shared.core).stats()
    }

    /// Wall-clock scheduling metrics. Recovers from a poisoned lock.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        S::lock_recover(&self.shared.admission).stats.clone()
    }

    /// Hit/miss counters of the verified-bitstream cache.
    pub fn cache_stats(&self) -> CacheStats {
        S::lock_recover(&self.shared.core).cache_stats()
    }

    /// Latest completion cycle on the shared virtual clock. Recovers from
    /// a poisoned core lock.
    pub fn makespan(&self) -> u64 {
        S::lock_recover(&self.shared.core).soc().horizon()
    }

    /// Attaches a trace sink to the underlying SoC. Post-mortem path like
    /// [`Scheduler::stats`]: recovers from a poisoned core lock so traces
    /// remain reachable after a worker crash.
    pub fn attach_tracer(&self, sink: presp_events::SharedSink) {
        S::lock_recover(&self.shared.core)
            .soc_mut()
            .attach_tracer(sink);
    }

    /// Attaches a sharded trace sink: worker `i` commits through shard
    /// `i mod sink.len()`, so concurrent commits never contend on one
    /// sink mutex. The tracer's seq counter survives per-commit shard
    /// re-attachment and commits are gate-serialized, so
    /// [`presp_events::ShardedSink::drain_merged`] reproduces the exact
    /// single-sink log byte for byte at any worker count.
    pub fn attach_sharded_tracer(&self, sink: &presp_events::ShardedSink) {
        let mut core = S::lock_recover(&self.shared.core);
        core.set_trace_shards((0..sink.len()).map(|i| sink.shard(i)).collect());
        // Attach shard 0 immediately so emissions before the first
        // worker commit (boot-time spans, scrubber passes) are recorded.
        core.soc_mut().attach_tracer(sink.shard(0));
    }

    /// Installs (or disarms, with `None`) a fault plan on the underlying
    /// SoC. Spec-driven harnesses arm a seeded plan before driving a
    /// workload and disarm it before a confirmation sweep; quiesce the
    /// workload first — swapping the plan mid-request changes which hook
    /// draws the in-flight request sees.
    pub fn set_fault_plan(&self, plan: Option<presp_fpga::fault::FaultPlan>) {
        S::lock_recover(&self.shared.core)
            .soc_mut()
            .set_fault_plan(plan);
    }

    /// Faults the installed plan has injected so far (all zero when no
    /// plan is armed). Post-mortem path: recovers from a poisoned core
    /// lock.
    pub fn injected_faults(&self) -> presp_fpga::fault::InjectedFaults {
        S::lock_recover(&self.shared.core)
            .soc()
            .fault_plan()
            .map(presp_fpga::fault::FaultPlan::injected)
            .unwrap_or_default()
    }

    /// Tiles currently quarantined, in coordinate order. Post-mortem
    /// path: recovers from poisoned shard locks.
    pub fn quarantined_tiles(&self) -> Vec<TileCoord> {
        self.shared
            .shards
            .iter()
            .filter(|(_, shard)| S::lock_recover(&shard.state).is_quarantined())
            .map(|(&coord, _)| coord)
            .collect()
    }

    /// Caller-side unlocked read the `unsynced_stats` mutant races with.
    #[doc(hidden)]
    pub fn unsynced_runs(&self) -> u64 {
        self.shared.racy_runs.read()
    }

    /// Stops the workers and joins them: pending unclaimed jobs are
    /// answered with [`Error::ManagerStopped`], their tickets retired so
    /// in-flight workers still pass the gate. Idempotent and tolerant of
    /// poisoned locks.
    pub fn shutdown(&self) {
        let drained: Vec<Job<S>> = {
            let mut adm = S::lock_recover(&self.shared.admission);
            adm.stopping = true;
            adm.heads.clear();
            let mut out = Vec::new();
            for shard in self.shared.shards.values() {
                let mut tq = S::lock_recover(&shard.queue);
                out.extend(tq.jobs.drain(..));
            }
            out
        };
        S::notify_all(&self.shared.work);
        {
            let mut gate = S::lock_recover(&self.shared.gate);
            for job in &drained {
                gate.retire(job.ticket);
            }
        }
        S::notify_all(&self.shared.gate_cv);
        for job in drained {
            match job.payload {
                Payload::Reconfigure { done, .. } => {
                    for tx in done {
                        let _ = S::send(&tx, Err(Error::ManagerStopped));
                    }
                }
                Payload::Run { done, .. } => {
                    let _ = S::send(&done, Err(Error::ManagerStopped));
                }
                Payload::Execute { done, .. } => {
                    let _ = S::send(&done, Err(Error::ManagerStopped));
                }
            }
        }
        if let Some(handles) = S::lock_recover(&self.workers).take() {
            for handle in handles {
                let _ = S::join(handle);
            }
        }
        // Unblock any thread parked in a blocking wait loop.
        for shard in self.shared.shards.values() {
            S::notify_all(&shard.reconfig_done);
        }
    }
}

/// Emulated behavioral-evaluation latency, from
/// `PRESP_BENCH_EVAL_DELAY_MICROS`. The throughput benchmark sets this to
/// stand in for the wall-clock cost a real device or RTL evaluation would
/// have during the lock-free prepare stage: blocking time overlaps across
/// workers even on a single-core host, so the measurement reflects the
/// lock structure rather than the machine's core count. Unset (the
/// default for every test and production path) this is free.
fn bench_eval_delay() -> Option<Duration> {
    static DELAY: OnceLock<Option<Duration>> = OnceLock::new();
    *DELAY.get_or_init(|| {
        std::env::var("PRESP_BENCH_EVAL_DELAY_MICROS")
            .ok()?
            .parse()
            .ok()
            .map(Duration::from_micros)
    })
}

/// A per-worker pool of word buffers recycled across prepared bitstream
/// clones, so the steady-state prepare stage allocates nothing: the
/// buffer travels into the prepared `Arc<Bitstream>` and comes back via
/// [`presp_fpga::bitstream::Bitstream::into_words`] when the commit did
/// not retain the copy.
#[derive(Default)]
struct PrepareArena {
    pool: Vec<Vec<u32>>,
}

impl PrepareArena {
    /// How many idle buffers a worker keeps; one in flight + one spare.
    const KEEP: usize = 2;

    fn take(&mut self) -> Vec<u32> {
        self.pool.pop().unwrap_or_default()
    }

    fn give(&mut self, buf: Vec<u32>) {
        if self.pool.len() < Self::KEEP {
            self.pool.push(buf);
        }
    }
}

/// A committed job's reply, sent after all locks are released.
enum Reply<S: SyncFacade> {
    Reconfigure {
        kind: AcceleratorKind,
        done: Vec<S::Sender<Result<(), Error>>>,
        result: Result<(), Error>,
    },
    Run {
        done: S::Sender<Result<AccelRun, Error>>,
        result: Result<AccelRun, Error>,
    },
    Execute {
        done: S::Sender<Result<(AccelRun, ExecPath), Error>>,
        result: Result<(AccelRun, ExecPath), Error>,
    },
}

fn worker_loop<S: SyncFacade>(shared: &Shared<S>, worker: usize) {
    let mut arena = PrepareArena::default();
    loop {
        // -- claim: pop the lowest claimable head ticket ----------------
        let job = {
            let mut adm = S::lock(&shared.admission);
            loop {
                if let Some(job) = shared.claim(&mut adm) {
                    break job;
                }
                if adm.stopping {
                    return;
                }
                adm = S::wait(&shared.work, adm);
            }
        };
        let (ticket, tile, depth) = (job.ticket, job.tile, job.depth);
        let shard = shared
            .shards
            .get(&tile)
            .expect("shard exists for admitted tile");
        let prepare_started = Instant::now();
        // -- prepare: evaluate the behavioral result outside any lock ---
        // Accelerator instances are stateless and `execute` re-checks
        // kind compatibility itself, so this is a pure function of the
        // operation; the protocol only consumes it after its own driver
        // checks pass.
        let precomputed: Precomputed = match &job.payload {
            Payload::Run { op, .. } | Payload::Execute { op, .. } => {
                if let Some(delay) = bench_eval_delay() {
                    // Wall-clock pacing only, never set under the model
                    // checker; no synchronization.
                    std::thread::sleep(delay); // presp-lint: allow — bench pacing
                }
                Some(AccelInstance::new(op.kind()).execute(op))
            }
            Payload::Reconfigure { .. } => None,
        };
        // -- prepare: pre-fetch the verified bitstream outside the core
        // lock. The registry is immutable after boot, so the verified
        // clone (into a recycled arena buffer) is exactly what the
        // commit-time cache miss would have produced; lookup errors are
        // left for the commit path to reproduce. A brief solo peek at
        // the tile state skips the work when the driver is already
        // loaded or the tile is out of service.
        let mut prepared: PreparedBitstream = match &job.payload {
            Payload::Reconfigure { kind, .. } | Payload::Execute { kind, .. } => {
                let skip = {
                    let state = S::lock(&shard.state);
                    state.is_quarantined() || state.services(*kind)
                };
                if skip {
                    None
                } else {
                    shared
                        .registry
                        .lookup(tile, *kind)
                        .ok()
                        .map(|stream| Arc::new(stream.clone_reusing(arena.take())))
                }
            }
            Payload::Run { .. } => None,
        };
        let is_reconfigure = matches!(job.payload, Payload::Reconfigure { .. });
        let gate_started = Instant::now();
        // -- gate: commit critical sections in strict ticket order ------
        let mut gate = S::lock(&shared.gate);
        while gate.next != ticket {
            gate = S::wait(&shared.gate_cv, gate);
        }
        let commit_started = Instant::now();
        let reply: Reply<S> = {
            let (mut state, mut core) = if shared.mutants.shard_core_inversion && is_reconfigure {
                // MUTANT: nested acquisition opposite to the scrubber's
                // (and submit path's) tile_state → core.
                let core = S::lock(&shared.core); // presp-analyze: mutant
                let state = S::lock(&shard.state); // presp-analyze: mutant
                (state, core)
            } else {
                let state = S::lock(&shard.state);
                let core = S::lock(&shared.core);
                (state, core)
            };
            // Route this commit's trace records to the worker's own
            // shard (seq survives re-attachment; merge restores order).
            if let Some(sink) = core.trace_shard(worker) {
                core.soc_mut().tracer_mut().attach(sink);
            }
            let now = core.soc().horizon();
            core.soc_mut()
                .tracer_mut()
                .instant(ClockDomain::SocCycles, now, || TraceEvent::SchedDispatch {
                    tile: loc(tile),
                    ticket,
                    depth,
                });
            let at = state.idle_at();
            match job.payload {
                Payload::Reconfigure { kind, done } => Reply::Reconfigure {
                    kind,
                    done,
                    result: protocol::request_reconfiguration_at(
                        &mut state,
                        &mut core,
                        &shared.policy,
                        kind,
                        at,
                        &mut prepared,
                    )
                    .map(|_| ()),
                },
                Payload::Run { op, done } => Reply::Run {
                    done,
                    result: protocol::run_at(&mut state, &mut core, &op, at, precomputed),
                },
                Payload::Execute { kind, op, done } => Reply::Execute {
                    done,
                    result: protocol::run_with_fallback_at(
                        &mut state,
                        &mut core,
                        &shared.policy,
                        kind,
                        &op,
                        at,
                        precomputed,
                        &mut prepared,
                    ),
                },
            }
        };
        gate.retire(ticket);
        drop(gate);
        S::notify_all(&shared.gate_cv);
        let stages = StageNanos {
            prepare: (gate_started - prepare_started).as_nanos() as u64,
            gate_wait: (commit_started - gate_started).as_nanos() as u64,
            commit: commit_started.elapsed().as_nanos() as u64,
        };
        // Recycle the prepared buffer when the commit did not retain the
        // copy (cache hit, services short-circuit, or an error path).
        if let Some(arc) = prepared.take() {
            if let Ok(stream) = Arc::try_unwrap(arc) {
                arena.give(stream.into_words());
            }
        }
        if matches!(reply, Reply::Reconfigure { .. } | Reply::Execute { .. }) {
            S::notify_all(&shard.reconfig_done);
        }
        // -- complete: free the tile, collect coalesced waiters ---------
        let (extra_waiters, claimable) = shared.complete(tile, stages);
        if claimable {
            S::notify_all(&shared.work);
        }
        // -- reply ------------------------------------------------------
        match reply {
            Reply::Reconfigure { kind, done, result } => {
                let folded = (done.len() - 1 + extra_waiters.len()) as u64;
                if folded > 0 {
                    let mut core = S::lock(&shared.core);
                    core.stats_mut().reconfig_requests += folded;
                    core.stats_mut().coalesced += folded;
                    let now = core.soc().horizon();
                    core.soc_mut()
                        .tracer_mut()
                        .instant(ClockDomain::SocCycles, now, || {
                            TraceEvent::RequestCoalesced {
                                tile: loc(tile),
                                kind: kind.name(),
                                waiters: folded,
                            }
                        });
                }
                for tx in done.into_iter().chain(extra_waiters) {
                    let _ = S::send(&tx, result.clone());
                }
            }
            Reply::Run { done, result } => {
                let _ = S::send(&done, result);
            }
            Reply::Execute { done, result } => {
                let _ = S::send(&done, result);
                if shared.mutants.unsynced_stats {
                    // MUTANT: bookkeeping after the reply, outside any
                    // lock — races with `unsynced_runs()`.
                    let n = shared.racy_runs.read();
                    shared.racy_runs.write(n + 1);
                }
            }
        }
    }
}
