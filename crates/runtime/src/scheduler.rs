//! The multi-worker DPR scheduler.
//!
//! The old workqueue demonstrator funnelled every request through one
//! worker thread holding one `ReconfigManager` lock, so two requests to
//! *independent* tiles still serialized end to end. This module is the
//! sharded replacement built on the [`crate::tile`] / [`crate::device`]
//! split:
//!
//! * **Per-tile queues, N workers.** Each tile has its own FIFO; a pool
//!   of workers claims jobs (one in flight per tile) and evaluates the
//!   behavioral accelerator result *outside any lock* — accelerator
//!   instances are stateless, so the value is a pure function of the
//!   operation. Only the short ICAP/NoC/virtual-time critical section
//!   then runs under the shard + device-core locks.
//! * **The ticket gate.** Every admitted job carries a global ticket and
//!   commits its critical section in strict ticket order. This keeps the
//!   shared virtual timeline — and therefore stats, results, makespan and
//!   the trace log — *identical for any worker count*: `workers = 4`
//!   replays the exact schedule `workers = 1` would produce, while the
//!   expensive behavioral work still overlaps across workers. Liveness
//!   holds because workers always claim the lowest pending head ticket:
//!   the minimum unretired ticket is always claimed or claimable, so the
//!   gate can never wedge.
//! * **Request coalescing.** A reconfiguration submitted while an
//!   identical `(tile, kind)` one is queued or in flight folds into it:
//!   all waiters are answered by the single underlying load
//!   ([`presp_events::TraceEvent::RequestCoalesced`]).
//! * **The bitstream cache.** The device core fronts registry lookups
//!   with a bounded LRU of verified streams ([`crate::cache`]).
//!
//! Lock order (enforced by the `presp-check` lock-order graph under
//! exploration): `gate` → `tile_state` → `core`; `sched_queue` is taken
//! alone or before `core`. The committed [`MutantConfig`] variants invert
//! edges of this graph so the model-check suite can prove it notices.

use crate::cache::{BitstreamCache, CacheStats};
use crate::device::{loc, DeviceCore};
use crate::error::Error;
use crate::manager::{ExecPath, ManagerStats, RecoveryPolicy};
use crate::protocol::{self, Precomputed};
use crate::registry::BitstreamRegistry;
use crate::sync::{Arc, StdSync, SyncFacade};
use crate::tile::TileState;
use presp_accel::catalog::AcceleratorKind;
use presp_accel::{AccelInstance, AccelOp};
use presp_events::trace::ClockDomain;
use presp_events::TraceEvent;
use presp_soc::config::TileCoord;
use presp_soc::sim::{AccelRun, Soc};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
// Not a protocol primitive: caches an env read once, immutable after
// init, so there is no schedule-dependent behavior to explore.
use std::sync::OnceLock; // presp-lint: allow — init-once env cache
use std::time::{Duration, Instant};

/// Default capacity of the verified-bitstream LRU on the threaded path.
pub const DEFAULT_CACHE_CAPACITY: usize = 16;

/// Deliberate concurrency-bug switches for checker validation: committed
/// known-bad protocol variants the model-check suite must detect and
/// replay deterministically. All off by default; reachable from the
/// workspace test suites (hence `pub`) but hidden from the API surface.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, Default)]
pub struct MutantConfig {
    /// The worker commits reconfigurations acquiring `core` →
    /// `tile_state`, the reverse of the scrubber's (and every other
    /// path's) `tile_state` → `core`: a cross-daemon lock-order
    /// inversion.
    pub shard_core_inversion: bool,
    /// The worker bumps a run counter *after* replying, outside any lock,
    /// while callers read it after `recv` — no happens-before edge.
    pub unsynced_stats: bool,
}

/// Wall-clock scheduling metrics, aggregated across all workers.
///
/// These are *measurement-side* counters (queue-wait percentiles are real
/// `Instant` durations, not virtual cycles); they never feed the trace
/// log, which stays a pure function of the submission order.
#[derive(Debug, Clone, Default)]
pub struct SchedulerStats {
    /// Jobs admitted to a tile queue (coalesced submissions excluded).
    pub admitted: u64,
    /// Jobs fully committed and answered.
    pub completed: u64,
    /// Submissions folded into a queued or in-flight reconfiguration.
    pub coalesced: u64,
    /// Largest per-tile backlog observed at admission.
    pub max_queue_depth: u64,
    wait_micros: Vec<u64>,
}

impl SchedulerStats {
    fn record_wait(&mut self, waited: Duration) {
        self.wait_micros.push(waited.as_micros() as u64);
    }

    /// Queue-wait percentile in microseconds (`p` in `[0, 100]`), the
    /// time between admission and a worker claiming the job. Zero when
    /// nothing completed yet.
    pub fn wait_percentile_micros(&self, p: f64) -> u64 {
        if self.wait_micros.is_empty() {
            return 0;
        }
        let mut sorted = self.wait_micros.clone();
        sorted.sort_unstable();
        let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Number of queue-wait samples recorded.
    pub fn wait_samples(&self) -> usize {
        self.wait_micros.len()
    }
}

/// A request travelling through a tile queue.
enum Payload<S: SyncFacade> {
    Reconfigure {
        kind: AcceleratorKind,
        /// Primary caller plus any submissions tail-coalesced before a
        /// worker claimed the job: all answered by one load.
        done: Vec<S::Sender<Result<(), Error>>>,
    },
    Run {
        op: Box<AccelOp>,
        done: S::Sender<Result<AccelRun, Error>>,
    },
    Execute {
        kind: AcceleratorKind,
        op: Box<AccelOp>,
        done: S::Sender<Result<(AccelRun, ExecPath), Error>>,
    },
}

struct Job<S: SyncFacade> {
    ticket: u64,
    tile: TileCoord,
    /// Tile backlog at admission (this job included) — traced in
    /// [`TraceEvent::SchedDispatch`].
    depth: u64,
    admitted: Instant,
    payload: Payload<S>,
}

/// A reconfiguration a worker has claimed but not yet answered; identical
/// submissions arriving while the tile queue is empty fold into it.
struct Inflight<S: SyncFacade> {
    kind: AcceleratorKind,
    extra_waiters: Vec<S::Sender<Result<(), Error>>>,
}

struct TileQueue<S: SyncFacade> {
    jobs: VecDeque<Job<S>>,
    /// A worker holds this tile's head job; per-tile FIFO order.
    checked_out: bool,
    inflight: Option<Inflight<S>>,
}

// Not derived: `derive(Default)` would demand `S: Default`.
impl<S: SyncFacade> TileQueue<S> {
    fn new() -> TileQueue<S> {
        TileQueue {
            jobs: VecDeque::new(),
            checked_out: false,
            inflight: None,
        }
    }
}

/// Everything guarded by the `sched_queue` lock.
struct SchedQueue<S: SyncFacade> {
    tiles: BTreeMap<TileCoord, TileQueue<S>>,
    next_ticket: u64,
    stopping: bool,
    stats: SchedulerStats,
}

enum Admitted<S: SyncFacade> {
    /// A fresh job joined the queue — wake a worker.
    Enqueued,
    /// Folded into a queued or in-flight reconfiguration.
    Coalesced,
    /// Refused before queueing; answer the caller directly.
    Refused(Error, S::Sender<Result<(), Error>>),
}

impl<S: SyncFacade> SchedQueue<S> {
    fn admit_reconfigure(
        &mut self,
        tile: TileCoord,
        kind: AcceleratorKind,
        done: S::Sender<Result<(), Error>>,
    ) -> Admitted<S> {
        if self.stopping {
            return Admitted::Refused(Error::ManagerStopped, done);
        }
        let Some(tq) = self.tiles.get_mut(&tile) else {
            return Admitted::Refused(
                Error::Soc(presp_soc::Error::NoSuchTile { coord: tile }),
                done,
            );
        };
        // Tail coalescing: identical to the youngest queued request —
        // folding preserves per-tile FIFO semantics exactly.
        if let Some(Job {
            payload:
                Payload::Reconfigure {
                    kind: tail,
                    done: waiters,
                },
            ..
        }) = tq.jobs.back_mut()
        {
            if *tail == kind {
                waiters.push(done);
                self.stats.coalesced += 1;
                return Admitted::Coalesced;
            }
        }
        // In-flight coalescing: nothing queued behind the claimed job, so
        // joining it cannot reorder anything.
        if tq.jobs.is_empty() {
            if let Some(inflight) = tq.inflight.as_mut() {
                if inflight.kind == kind {
                    inflight.extra_waiters.push(done);
                    self.stats.coalesced += 1;
                    return Admitted::Coalesced;
                }
            }
        }
        self.push(
            tile,
            Payload::Reconfigure {
                kind,
                done: vec![done],
            },
        );
        Admitted::Enqueued
    }

    /// Admits a non-coalescable job; returns `false` (caller answers with
    /// the error) when the scheduler is stopping or the tile is unknown.
    fn admit_job(&mut self, tile: TileCoord, payload: Payload<S>) -> Result<(), Error> {
        if self.stopping {
            return Err(Error::ManagerStopped);
        }
        if !self.tiles.contains_key(&tile) {
            return Err(Error::Soc(presp_soc::Error::NoSuchTile { coord: tile }));
        }
        self.push(tile, payload);
        Ok(())
    }

    fn push(&mut self, tile: TileCoord, payload: Payload<S>) {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        let tq = self.tiles.get_mut(&tile).expect("tile checked by caller");
        let depth = tq.jobs.len() as u64 + 1;
        tq.jobs.push_back(Job {
            ticket,
            tile,
            depth,
            admitted: Instant::now(),
            payload,
        });
        self.stats.admitted += 1;
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(depth);
    }

    /// Claims the head job with the globally lowest ticket among tiles
    /// with no job already in flight. Always picking the minimum is what
    /// keeps the ticket gate live: the oldest unretired job is never
    /// passed over for long.
    fn claim(&mut self) -> Option<Job<S>> {
        let tile = self
            .tiles
            .iter()
            .filter(|(_, tq)| !tq.checked_out)
            .filter_map(|(coord, tq)| tq.jobs.front().map(|job| (job.ticket, *coord)))
            .min()
            .map(|(_, coord)| coord)?;
        let tq = self.tiles.get_mut(&tile).expect("tile found above");
        tq.checked_out = true;
        let job = tq.jobs.pop_front().expect("head job found above");
        if let Payload::Reconfigure { kind, .. } = &job.payload {
            tq.inflight = Some(Inflight {
                kind: *kind,
                extra_waiters: Vec::new(),
            });
        }
        self.stats.record_wait(job.admitted.elapsed());
        Some(job)
    }

    /// Returns the tile to claimable state and collects any waiters that
    /// coalesced into the in-flight reconfiguration.
    fn complete(&mut self, tile: TileCoord) -> Vec<S::Sender<Result<(), Error>>> {
        let tq = self.tiles.get_mut(&tile).expect("completed tile exists");
        tq.checked_out = false;
        let extras = tq
            .inflight
            .take()
            .map(|inflight| inflight.extra_waiters)
            .unwrap_or_default();
        self.stats.completed += 1;
        extras
    }
}

/// Commit-order gate: jobs pass in strict global ticket order, so the
/// virtual-time critical sections replay the single-worker schedule
/// regardless of how many workers overlap their lock-free preparation.
struct Gate {
    next: u64,
    /// Tickets retired out of order (drained at shutdown while a lower
    /// ticket was still in flight).
    retired: BTreeSet<u64>,
}

impl Gate {
    fn retire(&mut self, ticket: u64) {
        self.retired.insert(ticket);
        while self.retired.remove(&self.next) {
            self.next += 1;
        }
    }
}

/// One tile's concurrent shard: the [`TileState`] under its own lock plus
/// the condvar signalled when a reconfiguration on this tile completes.
pub(crate) struct TileShard<S: SyncFacade> {
    pub(crate) state: S::Mutex<TileState>,
    pub(crate) reconfig_done: S::Condvar,
}

/// State shared between submitters, the worker pool and the scrubber.
pub(crate) struct Shared<S: SyncFacade> {
    pub(crate) shards: BTreeMap<TileCoord, TileShard<S>>,
    pub(crate) core: S::Mutex<DeviceCore>,
    queue: S::Mutex<SchedQueue<S>>,
    /// Signalled when a job is admitted or a tile becomes claimable.
    work: S::Condvar,
    gate: S::Mutex<Gate>,
    /// Signalled when the gate advances.
    gate_cv: S::Condvar,
    pub(crate) policy: RecoveryPolicy,
    mutants: MutantConfig,
    /// Storage the `unsynced_stats` mutant shares without a lock; under
    /// the checker every access is happens-before verified.
    racy_runs: presp_check::RaceCell<u64>,
}

/// An admitted request's completion handle.
///
/// Submission APIs return immediately; `wait` blocks for the worker's
/// reply. Dropping a `Pending` abandons the request (the worker's reply
/// goes nowhere, the work still happens).
pub struct Pending<S: SyncFacade, T: Send + 'static> {
    rx: S::Receiver<Result<T, Error>>,
}

impl<S: SyncFacade, T: Send + 'static> Pending<S, T> {
    /// Blocks until the request is answered.
    ///
    /// # Errors
    ///
    /// [`Error::ManagerStopped`] when the scheduler shut down before
    /// answering, plus whatever the request itself produced.
    pub fn wait(self) -> Result<T, Error> {
        S::recv(&self.rx).ok_or(Error::ManagerStopped)?
    }

    /// A handle that is already answered (refused-at-submit requests).
    fn ready(result: Result<T, Error>) -> Pending<S, T> {
        let (tx, rx) = S::channel();
        let _ = S::send(&tx, result);
        Pending { rx }
    }
}

/// The sharded, multi-worker front-end to the DPR protocol.
///
/// Cloning is cheap; clones share the same queues, shards and device
/// core. See the [module docs](self) for the scheduling model.
/// Join handles for the worker pool, taken once at shutdown.
type WorkerHandles<S> =
    Arc<<S as SyncFacade>::Mutex<Option<Vec<<S as SyncFacade>::JoinHandle<()>>>>>;

pub struct Scheduler<S: SyncFacade = StdSync> {
    pub(crate) shared: Arc<Shared<S>>,
    workers: WorkerHandles<S>,
}

impl<S: SyncFacade> Clone for Scheduler<S> {
    fn clone(&self) -> Scheduler<S> {
        Scheduler {
            shared: Arc::clone(&self.shared),
            workers: Arc::clone(&self.workers),
        }
    }
}

impl<S: SyncFacade> Scheduler<S> {
    /// Boots `workers` worker threads over a SoC and registry. One shard
    /// is created per tile in the SoC's configuration, so requests to
    /// any grid coordinate flow through the same protocol (and fail with
    /// the same errors) as on the deterministic manager.
    pub(crate) fn boot(
        soc: Soc,
        registry: BitstreamRegistry,
        policy: RecoveryPolicy,
        workers: usize,
        cache_capacity: usize,
        mutants: MutantConfig,
    ) -> Scheduler<S> {
        let shards: BTreeMap<TileCoord, TileShard<S>> = soc
            .config()
            .iter()
            .map(|(coord, _)| {
                (
                    coord,
                    TileShard {
                        state: S::mutex_labeled("tile_state", TileState::new(coord)),
                        reconfig_done: S::condvar(),
                    },
                )
            })
            .collect();
        let queue = SchedQueue {
            tiles: shards.keys().map(|&t| (t, TileQueue::new())).collect(),
            next_ticket: 0,
            stopping: false,
            stats: SchedulerStats::default(),
        };
        let shared = Arc::new(Shared {
            shards,
            core: S::mutex_labeled(
                "core",
                DeviceCore::new(soc, registry, BitstreamCache::new(cache_capacity)),
            ),
            queue: S::mutex_labeled("sched_queue", queue),
            work: S::condvar(),
            gate: S::mutex_labeled(
                "gate",
                Gate {
                    next: 0,
                    retired: BTreeSet::new(),
                },
            ),
            gate_cv: S::condvar(),
            policy,
            mutants,
            racy_runs: presp_check::RaceCell::new("racy_runs", 0),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                S::spawn(
                    match i {
                        0 => "presp-worker-0",
                        1 => "presp-worker-1",
                        2 => "presp-worker-2",
                        3 => "presp-worker-3",
                        _ => "presp-worker-n",
                    },
                    move || worker_loop(&shared),
                )
            })
            .collect();
        Scheduler {
            shared,
            workers: Arc::new(S::mutex_labeled("worker", Some(handles))),
        }
    }

    /// Admits a reconfiguration request, coalescing it into an identical
    /// queued or in-flight one when possible.
    pub fn submit_reconfigure(&self, tile: TileCoord, kind: AcceleratorKind) -> Pending<S, ()> {
        let (tx, rx) = S::channel();
        let admitted = {
            let mut q = S::lock(&self.shared.queue);
            q.admit_reconfigure(tile, kind, tx)
        };
        match admitted {
            Admitted::Enqueued => S::notify_all(&self.shared.work),
            Admitted::Coalesced => {}
            Admitted::Refused(e, tx) => {
                let _ = S::send(&tx, Err(e));
            }
        }
        Pending { rx }
    }

    /// Admits an accelerator invocation on `tile`.
    pub fn submit_run(&self, tile: TileCoord, op: AccelOp) -> Pending<S, AccelRun> {
        let (tx, rx) = S::channel();
        let admitted = {
            let mut q = S::lock(&self.shared.queue);
            q.admit_job(
                tile,
                Payload::Run {
                    op: Box::new(op),
                    done: tx,
                },
            )
        };
        match admitted {
            Ok(()) => {
                S::notify_all(&self.shared.work);
                Pending { rx }
            }
            Err(e) => Pending::ready(Err(e)),
        }
    }

    /// Admits an ensure-loaded-then-run request on `tile`.
    pub fn submit_execute(
        &self,
        tile: TileCoord,
        kind: AcceleratorKind,
        op: AccelOp,
    ) -> Pending<S, (AccelRun, ExecPath)> {
        let (tx, rx) = S::channel();
        let admitted = {
            let mut q = S::lock(&self.shared.queue);
            q.admit_job(
                tile,
                Payload::Execute {
                    kind,
                    op: Box::new(op),
                    done: tx,
                },
            )
        };
        match admitted {
            Ok(()) => {
                S::notify_all(&self.shared.work);
                Pending { rx }
            }
            Err(e) => Pending::ready(Err(e)),
        }
    }

    /// Waits (bounded) for a reconfiguration to complete on `tile`, or
    /// fails fast when the tile is quarantined. Used by blocking callers
    /// that found the tile mid-swap.
    pub(crate) fn wait_for_reconfig(&self, tile: TileCoord) -> Result<(), Error> {
        let shard = self
            .shared
            .shards
            .get(&tile)
            .ok_or(Error::Soc(presp_soc::Error::NoSuchTile { coord: tile }))?;
        let state = S::lock(&shard.state);
        if state.is_quarantined() {
            return Err(Error::TileQuarantined { tile });
        }
        let _unused = S::wait_timeout(&shard.reconfig_done, state, Duration::from_millis(50));
        Ok(())
    }

    /// Aggregate manager statistics. Post-mortem path: recovers from a
    /// poisoned core lock.
    pub fn stats(&self) -> ManagerStats {
        S::lock_recover(&self.shared.core).stats()
    }

    /// Wall-clock scheduling metrics. Recovers from a poisoned lock.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        S::lock_recover(&self.shared.queue).stats.clone()
    }

    /// Hit/miss counters of the verified-bitstream cache.
    pub fn cache_stats(&self) -> CacheStats {
        S::lock_recover(&self.shared.core).cache_stats()
    }

    /// Latest completion cycle on the shared virtual clock. Recovers from
    /// a poisoned core lock.
    pub fn makespan(&self) -> u64 {
        S::lock_recover(&self.shared.core).soc().horizon()
    }

    /// Attaches a trace sink to the underlying SoC. Post-mortem path like
    /// [`Scheduler::stats`]: recovers from a poisoned core lock so traces
    /// remain reachable after a worker crash.
    pub fn attach_tracer(&self, sink: presp_events::SharedSink) {
        S::lock_recover(&self.shared.core)
            .soc_mut()
            .attach_tracer(sink);
    }

    /// Installs (or disarms, with `None`) a fault plan on the underlying
    /// SoC. Spec-driven harnesses arm a seeded plan before driving a
    /// workload and disarm it before a confirmation sweep; quiesce the
    /// workload first — swapping the plan mid-request changes which hook
    /// draws the in-flight request sees.
    pub fn set_fault_plan(&self, plan: Option<presp_fpga::fault::FaultPlan>) {
        S::lock_recover(&self.shared.core)
            .soc_mut()
            .set_fault_plan(plan);
    }

    /// Faults the installed plan has injected so far (all zero when no
    /// plan is armed). Post-mortem path: recovers from a poisoned core
    /// lock.
    pub fn injected_faults(&self) -> presp_fpga::fault::InjectedFaults {
        S::lock_recover(&self.shared.core)
            .soc()
            .fault_plan()
            .map(presp_fpga::fault::FaultPlan::injected)
            .unwrap_or_default()
    }

    /// Tiles currently quarantined, in coordinate order. Post-mortem
    /// path: recovers from poisoned shard locks.
    pub fn quarantined_tiles(&self) -> Vec<TileCoord> {
        self.shared
            .shards
            .iter()
            .filter(|(_, shard)| S::lock_recover(&shard.state).is_quarantined())
            .map(|(&coord, _)| coord)
            .collect()
    }

    /// Caller-side unlocked read the `unsynced_stats` mutant races with.
    #[doc(hidden)]
    pub fn unsynced_runs(&self) -> u64 {
        self.shared.racy_runs.read()
    }

    /// Stops the workers and joins them: pending unclaimed jobs are
    /// answered with [`Error::ManagerStopped`], their tickets retired so
    /// in-flight workers still pass the gate. Idempotent and tolerant of
    /// poisoned locks.
    pub fn shutdown(&self) {
        let drained: Vec<Job<S>> = {
            let mut q = S::lock_recover(&self.shared.queue);
            q.stopping = true;
            let mut out = Vec::new();
            for tq in q.tiles.values_mut() {
                out.extend(tq.jobs.drain(..));
            }
            out
        };
        S::notify_all(&self.shared.work);
        {
            let mut gate = S::lock_recover(&self.shared.gate);
            for job in &drained {
                gate.retire(job.ticket);
            }
        }
        S::notify_all(&self.shared.gate_cv);
        for job in drained {
            match job.payload {
                Payload::Reconfigure { done, .. } => {
                    for tx in done {
                        let _ = S::send(&tx, Err(Error::ManagerStopped));
                    }
                }
                Payload::Run { done, .. } => {
                    let _ = S::send(&done, Err(Error::ManagerStopped));
                }
                Payload::Execute { done, .. } => {
                    let _ = S::send(&done, Err(Error::ManagerStopped));
                }
            }
        }
        if let Some(handles) = S::lock_recover(&self.workers).take() {
            for handle in handles {
                let _ = S::join(handle);
            }
        }
        // Unblock any thread parked in a blocking wait loop.
        for shard in self.shared.shards.values() {
            S::notify_all(&shard.reconfig_done);
        }
    }
}

/// Emulated behavioral-evaluation latency, from
/// `PRESP_BENCH_EVAL_DELAY_MICROS`. The throughput benchmark sets this to
/// stand in for the wall-clock cost a real device or RTL evaluation would
/// have during the lock-free prepare stage: blocking time overlaps across
/// workers even on a single-core host, so the measurement reflects the
/// lock structure rather than the machine's core count. Unset (the
/// default for every test and production path) this is free.
fn bench_eval_delay() -> Option<Duration> {
    static DELAY: OnceLock<Option<Duration>> = OnceLock::new();
    *DELAY.get_or_init(|| {
        std::env::var("PRESP_BENCH_EVAL_DELAY_MICROS")
            .ok()?
            .parse()
            .ok()
            .map(Duration::from_micros)
    })
}

/// A committed job's reply, sent after all locks are released.
enum Reply<S: SyncFacade> {
    Reconfigure {
        kind: AcceleratorKind,
        done: Vec<S::Sender<Result<(), Error>>>,
        result: Result<(), Error>,
    },
    Run {
        done: S::Sender<Result<AccelRun, Error>>,
        result: Result<AccelRun, Error>,
    },
    Execute {
        done: S::Sender<Result<(AccelRun, ExecPath), Error>>,
        result: Result<(AccelRun, ExecPath), Error>,
    },
}

fn worker_loop<S: SyncFacade>(shared: &Shared<S>) {
    loop {
        // -- claim: pop the lowest-ticket head job of a free tile -------
        let job = {
            let mut q = S::lock(&shared.queue);
            loop {
                if let Some(job) = q.claim() {
                    break job;
                }
                if q.stopping {
                    return;
                }
                q = S::wait(&shared.work, q);
            }
        };
        let (ticket, tile, depth) = (job.ticket, job.tile, job.depth);
        // -- prepare: evaluate the behavioral result outside any lock ---
        // Accelerator instances are stateless and `execute` re-checks
        // kind compatibility itself, so this is a pure function of the
        // operation; the protocol only consumes it after its own driver
        // checks pass.
        let precomputed: Precomputed = match &job.payload {
            Payload::Run { op, .. } | Payload::Execute { op, .. } => {
                if let Some(delay) = bench_eval_delay() {
                    // Wall-clock pacing only, never set under the model
                    // checker; no synchronization.
                    std::thread::sleep(delay); // presp-lint: allow — bench pacing
                }
                Some(AccelInstance::new(op.kind()).execute(op))
            }
            Payload::Reconfigure { .. } => None,
        };
        let shard = shared
            .shards
            .get(&tile)
            .expect("shard exists for admitted tile");
        let is_reconfigure = matches!(job.payload, Payload::Reconfigure { .. });
        // -- gate: commit critical sections in strict ticket order ------
        let mut gate = S::lock(&shared.gate);
        while gate.next != ticket {
            gate = S::wait(&shared.gate_cv, gate);
        }
        let reply: Reply<S> = {
            let (mut state, mut core) = if shared.mutants.shard_core_inversion && is_reconfigure {
                // MUTANT: nested acquisition opposite to the scrubber's
                // (and submit path's) tile_state → core.
                let core = S::lock(&shared.core);
                let state = S::lock(&shard.state);
                (state, core)
            } else {
                let state = S::lock(&shard.state);
                let core = S::lock(&shared.core);
                (state, core)
            };
            let now = core.soc().horizon();
            core.soc_mut()
                .tracer_mut()
                .instant(ClockDomain::SocCycles, now, || TraceEvent::SchedDispatch {
                    tile: loc(tile),
                    ticket,
                    depth,
                });
            let at = state.idle_at();
            match job.payload {
                Payload::Reconfigure { kind, done } => Reply::Reconfigure {
                    kind,
                    done,
                    result: protocol::request_reconfiguration_at(
                        &mut state,
                        &mut core,
                        &shared.policy,
                        kind,
                        at,
                    )
                    .map(|_| ()),
                },
                Payload::Run { op, done } => Reply::Run {
                    done,
                    result: protocol::run_at(&mut state, &mut core, &op, at, precomputed),
                },
                Payload::Execute { kind, op, done } => Reply::Execute {
                    done,
                    result: protocol::run_with_fallback_at(
                        &mut state,
                        &mut core,
                        &shared.policy,
                        kind,
                        &op,
                        at,
                        precomputed,
                    ),
                },
            }
        };
        gate.retire(ticket);
        drop(gate);
        S::notify_all(&shared.gate_cv);
        if matches!(reply, Reply::Reconfigure { .. } | Reply::Execute { .. }) {
            S::notify_all(&shard.reconfig_done);
        }
        // -- complete: free the tile, collect coalesced waiters ---------
        let extra_waiters = {
            let mut q = S::lock(&shared.queue);
            q.complete(tile)
        };
        S::notify_all(&shared.work);
        // -- reply ------------------------------------------------------
        match reply {
            Reply::Reconfigure { kind, done, result } => {
                let folded = (done.len() - 1 + extra_waiters.len()) as u64;
                if folded > 0 {
                    let mut core = S::lock(&shared.core);
                    core.stats_mut().reconfig_requests += folded;
                    core.stats_mut().coalesced += folded;
                    let now = core.soc().horizon();
                    core.soc_mut()
                        .tracer_mut()
                        .instant(ClockDomain::SocCycles, now, || {
                            TraceEvent::RequestCoalesced {
                                tile: loc(tile),
                                kind: kind.name(),
                                waiters: folded,
                            }
                        });
                }
                for tx in done.into_iter().chain(extra_waiters) {
                    let _ = S::send(&tx, result.clone());
                }
            }
            Reply::Run { done, result } => {
                let _ = S::send(&done, result);
            }
            Reply::Execute { done, result } => {
                let _ = S::send(&done, result);
                if shared.mutants.unsynced_stats {
                    // MUTANT: bookkeeping after the reply, outside any
                    // lock — races with `unsynced_runs()`.
                    let n = shared.racy_runs.read();
                    shared.racy_runs.write(n + 1);
                }
            }
        }
    }
}
