//! The DPR protocol, factored over a tile shard and the device core.
//!
//! These functions are the one implementation of the Section V protocol
//! (wait-for-idle → decouple → DFXC → re-couple → driver swap, with
//! retry/backoff/quarantine recovery and ECC scrubbing) shared by both
//! runtimes: the deterministic [`crate::manager::ReconfigManager`] calls
//! them with its directly-owned shards, and the OS-threaded
//! [`crate::scheduler::Scheduler`] calls them while holding the per-tile
//! shard lock and the device-core lock. Every trace event, counter
//! update and virtual-time decision lives here, so both paths are
//! byte-identical by construction.
//!
//! The `precomputed` parameters carry a behavioral result evaluated
//! *outside* the locks (accelerator instances are stateless, so the
//! value is a pure function of the operation); passing `None` evaluates
//! it in place, which is what the deterministic manager does.

use crate::device::{loc, DeviceCore};
use crate::error::Error;
use crate::manager::{ExecPath, RecoveryPolicy};
use crate::sync::Arc;
use crate::tile::{TileHealth, TileState};
use presp_accel::catalog::AcceleratorKind;
use presp_accel::{AccelOp, AccelValue};
use presp_events::trace::ClockDomain;
use presp_events::{backoff, TraceEvent};
use presp_floorplan::RegionMove;
use presp_fpga::bitstream::Bitstream;
use presp_fpga::fabric::Device;
use presp_fpga::fault::FaultPlan;
use presp_soc::sim::{csr, AccelRun, ReconfigRun, ScrubReport};

/// A behavioral result evaluated ahead of time, outside any lock.
/// `None` means "evaluate in place".
pub(crate) type Precomputed = Option<Result<AccelValue, presp_accel::Error>>;

/// A verified bitstream fetched ahead of time, outside any lock (the
/// registry is immutable after boot, so a prepared copy cannot go
/// stale). `None` means "fetch in place, under the core lock" — the
/// deterministic manager's path. Consumed at most once, on the first
/// cache miss of the request.
pub(crate) type PreparedBitstream = Option<crate::sync::Arc<presp_fpga::bitstream::Bitstream>>;

/// Ensures `kind` is loaded in the shard's tile, reconfiguring if
/// needed, with the request arriving at cycle `at`. See
/// [`crate::manager::ReconfigManager::request_reconfiguration_at`] for
/// the full contract.
pub(crate) fn request_reconfiguration_at(
    tile_state: &mut TileState,
    core: &mut DeviceCore,
    policy: &RecoveryPolicy,
    kind: AcceleratorKind,
    at: u64,
    prepared: &mut PreparedBitstream,
) -> Result<Option<ReconfigRun>, Error> {
    let tile = tile_state.coord();
    core.stats_mut().reconfig_requests += 1;
    if tile_state.is_quarantined() {
        core.stats_mut().rejected += 1;
        return Err(Error::TileQuarantined { tile });
    }
    if tile_state.services(kind) {
        core.stats_mut().cache_hits += 1;
        core.soc_mut()
            .tracer_mut()
            .instant(ClockDomain::SocCycles, at, || {
                TraceEvent::BitstreamCacheHit {
                    tile: loc(tile),
                    kind: kind.name(),
                }
            });
        return Ok(None);
    }
    // A pair that was never registered — or whose stored stream fails
    // its integrity re-check — is a permanent error; transient
    // staleness is injected per attempt below.
    if let Err(e) = core.fetch_bitstream_with(tile, kind, at, prepared) {
        core.stats_mut().rejected += 1;
        return Err(e);
    }
    // Wait for the accelerator in the tile to complete its execution.
    let idle = at.max(tile_state.idle_at());
    // Unregister the outgoing driver: from here until probe, other
    // threads' submissions fail fast instead of touching a tile that is
    // being rewritten.
    tile_state.remove_driver();
    let mut decoupled_at: Option<u64> = None;
    let mut when = idle;
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        match attempt_load(tile_state, core, kind, when, &mut decoupled_at, prepared) {
            Ok(reconf) => {
                let coupled = match core
                    .soc_mut()
                    .csr_write_at(tile, csr::DECOUPLE, 0, reconf.end)
                {
                    Ok(t) => t,
                    Err(e) => {
                        core.stats_mut().rejected += 1;
                        return Err(e.into());
                    }
                };
                core.soc_mut().tracer_mut().emit(
                    ClockDomain::SocCycles,
                    reconf.start,
                    coupled - reconf.start,
                    || TraceEvent::ReconfigAttempt {
                        tile: loc(tile),
                        kind: kind.name(),
                        attempt: u64::from(attempts),
                        ok: true,
                    },
                );
                tile_state.probe_driver(kind);
                tile_state.set_idle_at(coupled);
                tile_state.clear_failures();
                // Every frame of the region was rewritten (and its
                // golden image refreshed): the tile is healthy again.
                tile_state.set_health(TileHealth::Healthy);
                if let Some(mark) = tile_state.take_oversized_mark() {
                    core.stats_mut().oversized_admitted += 1;
                    if core.repack_moves() > mark {
                        core.stats_mut().repack_admitted += 1;
                    }
                }
                core.stats_mut().reconfigurations += 1;
                core.stats_mut().reconfig_cycles += coupled - idle;
                return Ok(Some(ReconfigRun {
                    end: coupled,
                    ..reconf
                }));
            }
            Err(e) if is_transient(&e) => {
                let failed_at = core.soc().horizon().max(when);
                core.soc_mut().tracer_mut().emit(
                    ClockDomain::SocCycles,
                    when,
                    failed_at - when,
                    || TraceEvent::ReconfigAttempt {
                        tile: loc(tile),
                        kind: kind.name(),
                        attempt: u64::from(attempts),
                        ok: false,
                    },
                );
                if attempts > policy.max_retries {
                    return give_up(tile_state, core, policy, kind, attempts);
                }
                core.stats_mut().retries += 1;
                let backoff = backoff::exponential(
                    policy.backoff_cycles,
                    policy.backoff_multiplier,
                    attempts,
                );
                core.soc_mut().tracer_mut().emit(
                    ClockDomain::SocCycles,
                    failed_at,
                    backoff,
                    || TraceEvent::RetryBackoff {
                        tile: loc(tile),
                        attempt: u64::from(attempts),
                        cycles: backoff,
                    },
                );
                when = failed_at.saturating_add(backoff);
            }
            Err(e) => {
                core.stats_mut().rejected += 1;
                return Err(e);
            }
        }
    }
}

/// One load attempt: (re-)read the registry (through the cache), decouple
/// if this is the first attempt, and trigger the DFXC.
fn attempt_load(
    tile_state: &mut TileState,
    core: &mut DeviceCore,
    kind: AcceleratorKind,
    when: u64,
    decoupled_at: &mut Option<u64>,
    prepared: &mut PreparedBitstream,
) -> Result<ReconfigRun, Error> {
    let tile = tile_state.coord();
    // Fault hook: a stale registry read fails this attempt at the
    // software level; the retry re-reads the registry.
    if core
        .soc_mut()
        .fault_plan_mut()
        .is_some_and(FaultPlan::next_registry_miss)
    {
        return Err(Error::BitstreamNotRegistered { tile, kind });
    }
    let bitstream = core.fetch_bitstream_with(tile, kind, when, prepared)?;
    let start = match *decoupled_at {
        // Still decoupled from the previous failed attempt.
        Some(t) => t.max(when),
        None => {
            let t = core.soc_mut().csr_write_at(tile, csr::DECOUPLE, 1, when)?;
            *decoupled_at = Some(t);
            t
        }
    };
    let placed = place_bitstream(tile_state, core, &bitstream, start)?;
    Ok(core.soc_mut().reconfigure_at(tile, kind, &placed, start)?)
}

/// Amorphous-floorplanning placement: maps the fetched bitstream onto
/// the tile's region lease, switching the lease when the footprint's
/// column-kind pattern changed, and relocates the stream to the leased
/// base column. The fixed-socket path (allocator disabled) returns the
/// stream untouched.
///
/// Ordering is deliberate: a replacement span is allocated *before* the
/// old one's frames are erased, so a refused allocation leaves the
/// tile's current configuration intact (the old lease is re-seeded at
/// its original base, which was never released to anyone else).
fn place_bitstream(
    tile_state: &mut TileState,
    core: &mut DeviceCore,
    bitstream: &Arc<Bitstream>,
    at: u64,
) -> Result<Arc<Bitstream>, Error> {
    if core.allocator().is_none() {
        return Ok(Arc::clone(bitstream));
    }
    let tile = tile_state.coord();
    let footprint = bitstream.footprint()?;
    let device = core.soc().part().device();
    let base = footprint.base_column();
    let width = footprint.width();
    if (base + width) as usize > device.columns() {
        return Err(presp_fpga::Error::BadFrameAddress {
            detail: format!(
                "footprint [{base}, {}) exceeds the device's {} columns",
                base + width,
                device.columns()
            ),
        }
        .into());
    }
    let pattern: Vec<_> = (base..base + width)
        .map(|c| device.column_kind(c as usize))
        .collect();
    // Fast path: the live lease already provides exactly this span
    // shape — relocate straight into it.
    if let Some(lease) = tile_state.lease() {
        if lease.kinds == pattern {
            let delta = i64::from(lease.base) - i64::from(base);
            return relocate_to(bitstream, &device, delta);
        }
    }
    // Lease switch: return the old span to the allocator, claim a new
    // one, then vacate the old frames from the fabric.
    let old = tile_state.take_lease();
    let allocated = match core.allocator_mut() {
        Some(alloc) => {
            if let Some(old) = &old {
                alloc.release(old.id);
            }
            alloc.allocate(&pattern)
        }
        None => return Ok(Arc::clone(bitstream)),
    };
    match allocated {
        Some(lease) => {
            if old.is_some() {
                // The lease moved: erase and retire the frames earlier
                // loads wrote at the old base before the new span is
                // written, keeping the tile's region a single span.
                core.soc_mut().release_tile_region(tile, at)?;
            }
            let delta = i64::from(lease.base) - i64::from(base);
            tile_state.set_lease(Some(lease));
            relocate_to(bitstream, &device, delta)
        }
        None => {
            // No free span fits. Re-seed the old lease — its span was
            // released above and handed out to nobody since, so the
            // reservation cannot fail — stamp the tile's oversized
            // watermark and refuse. Deliberately not transient:
            // retrying without repacking cannot succeed.
            if let Some(old) = old {
                let restored = core
                    .allocator_mut()
                    .and_then(|a| a.reserve_at(old.base, &old.kinds));
                tile_state.set_lease(restored);
            }
            core.stats_mut().oversized_rejected += 1;
            let mark = core.repack_moves();
            tile_state.mark_oversized(mark);
            Err(Error::RegionUnavailable { tile, width })
        }
    }
}

/// Relocates `bitstream` by `delta` columns; zero is a free clone.
fn relocate_to(
    bitstream: &Arc<Bitstream>,
    device: &Device,
    delta: i64,
) -> Result<Arc<Bitstream>, Error> {
    if delta == 0 {
        return Ok(Arc::clone(bitstream));
    }
    Ok(Arc::new(bitstream.relocate(device, delta)?))
}

/// Plans a defragmentation pass over the live leases: the allocator's
/// greedy left-slide compaction, in application order. Empty when
/// amorphous floorplanning is disabled or the fabric is already packed.
pub(crate) fn plan_repack(core: &DeviceCore) -> Vec<RegionMove> {
    core.allocator()
        .map(|a| a.plan_compaction())
        .unwrap_or_default()
}

/// Executes one planned compaction move on the tile owning the lease.
///
/// The allocator commits first — [`presp_floorplan::region::RegionAllocator::apply_move`]
/// validates the destination against every live lease, including
/// frame-less ones the fabric cannot see — and is rolled back if the
/// physical move is refused. The physical half (decouple → lockstep
/// frame/ECC/golden move → re-couple) is skipped for a lease that never
/// loaded; otherwise the tile's idle horizon advances past the
/// re-couple, so the move occupies the tile's own timeline as well as
/// the shared ICAP. Returns the number of frames physically moved.
pub(crate) fn repack_move(
    tile_state: &mut TileState,
    core: &mut DeviceCore,
    mv: &RegionMove,
    at: u64,
) -> Result<u64, Error> {
    let tile = tile_state.coord();
    let owned = tile_state
        .lease()
        .is_some_and(|l| l.id == mv.id && l.base == mv.from);
    if !owned {
        return Err(Error::Soc(presp_soc::Error::RegionConflict {
            coord: tile,
            detail: format!("tile does not own lease {} at column {}", mv.id, mv.from),
        }));
    }
    if let Some(alloc) = core.allocator_mut() {
        alloc.apply_move(mv.id, mv.to).map_err(|e| {
            Error::Soc(presp_soc::Error::RegionConflict {
                coord: tile,
                detail: e.to_string(),
            })
        })?;
    }
    let physical = if core.soc().tile_region(tile).is_empty() {
        // Never loaded: a pure bookkeeping slide.
        Ok(0)
    } else {
        move_frames(tile_state, core, mv.delta(), at)
    };
    match physical {
        Ok(frames) => {
            if let Some(mut lease) = tile_state.take_lease() {
                lease.base = mv.to;
                tile_state.set_lease(Some(lease));
            }
            core.record_repack_move();
            Ok(frames)
        }
        Err(e) => {
            // Roll the allocator back; the source span is still free.
            if let Some(alloc) = core.allocator_mut() {
                let _ = alloc.apply_move(mv.id, mv.from);
            }
            Err(e)
        }
    }
}

/// The physical half of [`repack_move`]: decouple the tile, slide its
/// frames (with ECC and golden images in lockstep), re-couple.
fn move_frames(
    tile_state: &mut TileState,
    core: &mut DeviceCore,
    delta: i64,
    at: u64,
) -> Result<u64, Error> {
    let tile = tile_state.coord();
    let start = at.max(tile_state.idle_at());
    let decoupled = core.soc_mut().csr_write_at(tile, csr::DECOUPLE, 1, start)?;
    let run = core.soc_mut().move_tile_region_at(tile, delta, decoupled)?;
    let coupled = core
        .soc_mut()
        .csr_write_at(tile, csr::DECOUPLE, 0, run.end)?;
    tile_state.set_idle_at(coupled);
    Ok(run.frames as u64)
}

/// Whether a failed attempt is worth retrying: data corruption caught
/// in flight and stale software state are; protocol violations and
/// wrong-device bitstreams are not.
fn is_transient(e: &Error) -> bool {
    match e {
        Error::BitstreamNotRegistered { .. } => true,
        Error::Soc(presp_soc::Error::Fpga(fe)) => matches!(
            fe,
            presp_fpga::Error::CrcMismatch { .. } | presp_fpga::Error::MalformedBitstream { .. }
        ),
        _ => false,
    }
}

/// Ends a request whose every attempt failed: the tile stays decoupled
/// (isolated), its failure streak grows, and repeated exhaustion
/// quarantines it.
fn give_up(
    tile_state: &mut TileState,
    core: &mut DeviceCore,
    policy: &RecoveryPolicy,
    kind: AcceleratorKind,
    attempts: u32,
) -> Result<Option<ReconfigRun>, Error> {
    let tile = tile_state.coord();
    core.stats_mut().retries_exhausted += 1;
    let now = core.soc().horizon();
    tile_state.set_idle_at(now);
    let streak = tile_state.record_failure();
    if streak >= policy.quarantine_after && tile_state.quarantine() {
        core.stats_mut().quarantines += 1;
        core.soc_mut()
            .tracer_mut()
            .instant(ClockDomain::SocCycles, now, || TraceEvent::Quarantine {
                tile: loc(tile),
                entered: true,
            });
    }
    Err(Error::RetriesExhausted {
        tile,
        kind,
        attempts,
    })
}

/// Runs `op` on the shard's tile at cycle `at`. See
/// [`crate::manager::ReconfigManager::run_at`].
pub(crate) fn run_at(
    tile_state: &mut TileState,
    core: &mut DeviceCore,
    op: &AccelOp,
    at: u64,
    precomputed: Precomputed,
) -> Result<AccelRun, Error> {
    let tile = tile_state.coord();
    let active = tile_state.active_driver().ok_or(Error::NoDriver {
        tile,
        needed: op.kind(),
    })?;
    if !op.runs_on(active) {
        return Err(Error::NoDriver {
            tile,
            needed: op.kind(),
        });
    }
    let start = at.max(tile_state.idle_at());
    let run = match precomputed {
        Some(outcome) => core
            .soc_mut()
            .run_accelerator_prepared_at(tile, op, start, outcome)?,
        None => core.soc_mut().run_accelerator_at(tile, op, start)?,
    };
    tile_state.set_idle_at(run.end);
    core.stats_mut().runs += 1;
    Ok(run)
}

/// Runs `op` in software on the CPU tile at cycle `at`.
pub(crate) fn run_on_cpu_at(
    core: &mut DeviceCore,
    op: &AccelOp,
    at: u64,
    precomputed: Precomputed,
) -> Result<AccelRun, Error> {
    Ok(match precomputed {
        Some(outcome) => core.soc_mut().run_on_cpu_prepared_at(op, at, outcome)?,
        None => core.soc_mut().run_on_cpu_at(op, at)?,
    })
}

/// Reconfigure-then-run with CPU degradation. See
/// [`crate::manager::ReconfigManager::run_with_fallback_at`].
#[allow(clippy::too_many_arguments)] // mirrors the manager API's full knob set
pub(crate) fn run_with_fallback_at(
    tile_state: &mut TileState,
    core: &mut DeviceCore,
    policy: &RecoveryPolicy,
    kind: AcceleratorKind,
    op: &AccelOp,
    at: u64,
    precomputed: Precomputed,
    prepared: &mut PreparedBitstream,
) -> Result<(AccelRun, ExecPath), Error> {
    let attempted = request_reconfiguration_at(tile_state, core, policy, kind, at, prepared)
        .map(|_| ())
        .and_then(|()| run_at(tile_state, core, op, at, precomputed.clone()));
    match attempted {
        Ok(run) => Ok((run, ExecPath::Accelerator)),
        Err(e) if e.is_degradable() && policy.cpu_fallback => {
            // Start the software run after the failed recovery
            // concluded on this tile's timeline.
            let start = at.max(tile_state.idle_at());
            core.soc_mut()
                .tracer_mut()
                .instant(ClockDomain::SocCycles, start, || TraceEvent::CpuFallback {
                    kind: kind.name(),
                });
            let run = run_on_cpu_at(core, op, start, precomputed)?;
            core.stats_mut().fallback_runs += 1;
            Ok((run, ExecPath::CpuFallback))
        }
        Err(e) => Err(e),
    }
}

/// Scrubs the shard's tile starting no earlier than `at`. See
/// [`crate::manager::ReconfigManager::scrub_tile_at`].
pub(crate) fn scrub_tile_at(
    tile_state: &mut TileState,
    core: &mut DeviceCore,
    at: u64,
) -> Result<ScrubReport, Error> {
    let tile = tile_state.coord();
    if tile_state.is_quarantined() {
        return Err(Error::TileQuarantined { tile });
    }
    let region = core.soc().tile_region(tile);
    tile_state.set_health(TileHealth::Scrubbing);
    let report = match core.soc_mut().scrub_frames_at(&region, at) {
        Ok(report) => report,
        Err(e) => {
            tile_state.set_health(TileHealth::Healthy);
            return Err(e.into());
        }
    };
    core.stats_mut().scrub_passes += 1;
    core.stats_mut().frames_repaired += report.corrected.len() as u64;
    if !report.uncorrectable.is_empty() {
        // An uncorrectable upset: the fabric cannot be trusted, so the
        // tile leaves service exactly like a retry-exhausted tile — the
        // driver is unloaded and further requests degrade to the CPU.
        tile_state.remove_driver();
        if tile_state.quarantine() {
            core.stats_mut().quarantines += 1;
            core.stats_mut().scrub_quarantines += 1;
            let now = core.soc().horizon();
            core.soc_mut()
                .tracer_mut()
                .instant(ClockDomain::SocCycles, now, || TraceEvent::Quarantine {
                    tile: loc(tile),
                    entered: true,
                });
        }
    } else if report.corrected.is_empty() {
        tile_state.set_health(TileHealth::Healthy);
    } else {
        tile_state.set_health(TileHealth::Degraded);
    }
    Ok(report)
}

/// Restores the tile's region from its golden image. See
/// [`crate::manager::ReconfigManager::restore_golden`].
pub(crate) fn restore_golden(
    tile_state: &mut TileState,
    core: &mut DeviceCore,
) -> Result<usize, Error> {
    let frames = core.soc_mut().restore_golden(tile_state.coord())?;
    tile_state.set_health(TileHealth::Healthy);
    Ok(frames)
}

/// Releases the tile from quarantine; returns whether it was quarantined.
/// See [`crate::manager::ReconfigManager::release_quarantine`].
pub(crate) fn release_quarantine(tile_state: &mut TileState, core: &mut DeviceCore) -> bool {
    let released = tile_state.release_quarantine();
    if released {
        let now = core.soc().horizon();
        core.soc_mut()
            .tracer_mut()
            .instant(ClockDomain::SocCycles, now, || TraceEvent::Quarantine {
                tile: loc(tile_state.coord()),
                entered: false,
            });
    }
    released
}
