//! The size-driven P&R parallelism algorithm (Section IV, Table I).
//!
//! A DPR design is classified from its size metrics `(κ, α_av, γ)` — Eq. (1)
//! of the paper — and the class selects the implementation strategy:
//!
//! |                | γ < 1      | γ ≈ 1           | γ > 1               |
//! |----------------|------------|-----------------|---------------------|
//! | κ ≈ α_av       | impossible | serial          | fully-parallel      |
//! | κ ≫ α_av       | serial     | semi-parallel   | semi/fully-parallel |
//! | κ ≪ α_av       | impossible | serial          | fully-parallel      |

use crate::error::Error;
use presp_cad::flow::Strategy;
use presp_cad::spec::DprDesignSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// γ is "≈ 1" within this band.
pub const GAMMA_BAND: (f64, f64) = (0.85, 1.15);
/// κ ≈ α_av when κ/α_av falls inside this band; above it κ ≫ α_av, below
/// it κ ≪ α_av.
pub const KAPPA_ALPHA_BAND: (f64, f64) = (0.4, 2.5);
/// τ used for semi-parallel schedules (the paper sets τ = 2 throughout its
/// evaluation).
pub const SEMI_PARALLEL_TAU: usize = 2;

/// The five size classes of Section IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SizeClass {
    /// κ ≫ α_av, γ < 1: large static, small total reconfigurable area.
    Class1_1,
    /// κ ≫ α_av, γ > 1: large static exceeded by the reconfigurable total.
    Class1_2,
    /// κ ≫ α_av, γ ≈ 1: static ≈ reconfigurable total.
    Class1_3,
    /// κ ≈ α_av or κ ≪ α_av, γ > 1: small static, large reconfigurable
    /// modules.
    Class2_1,
    /// κ ≈ α_av or κ ≪ α_av, γ ≈ 1: a single reconfigurable module.
    Class2_2,
}

impl fmt::Display for SizeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SizeClass::Class1_1 => "1.1",
            SizeClass::Class1_2 => "1.2",
            SizeClass::Class1_3 => "1.3",
            SizeClass::Class2_1 => "2.1",
            SizeClass::Class2_2 => "2.2",
        };
        write!(f, "class {s}")
    }
}

/// Classifies a design from its `(κ, α_av, γ)` profile.
///
/// # Errors
///
/// Returns [`Error::ImpossibleProfile`] for the blank Table I cells (γ < 1
/// with κ not ≫ α_av) and [`Error::BadDesign`] for designs with no
/// reconfigurable modules.
pub fn classify(spec: &DprDesignSpec) -> Result<SizeClass, Error> {
    if spec.reconfigurable().is_empty() {
        return Err(Error::BadDesign {
            detail: "design has no reconfigurable modules".into(),
        });
    }
    let (kappa, alpha_av, gamma) = spec.size_metrics();
    let ratio = kappa / alpha_av;
    let static_dominates = ratio > KAPPA_ALPHA_BAND.1;
    let gamma_low = gamma < GAMMA_BAND.0;
    let gamma_high = gamma > GAMMA_BAND.1;

    if static_dominates {
        Ok(if gamma_low {
            SizeClass::Class1_1
        } else if gamma_high {
            SizeClass::Class1_2
        } else {
            SizeClass::Class1_3
        })
    } else {
        // κ ≈ α_av or κ ≪ α_av.
        if gamma_low {
            return Err(Error::ImpossibleProfile {
                kappa,
                alpha_av,
                gamma,
            });
        }
        Ok(if gamma_high {
            SizeClass::Class2_1
        } else {
            SizeClass::Class2_2
        })
    }
}

/// Applies Table I: picks the P&R strategy for a classified design.
///
/// For Class 1.2 the table allows semi- or fully-parallel; the paper's
/// evaluation (Table IV, SoC_A) shows fully-parallel winning, so that is
/// what the algorithm selects. Class 2.2 designs hold a single
/// reconfigurable module and "can only be implemented in a serial mode".
///
/// # Errors
///
/// Propagates classification errors.
pub fn choose_strategy(spec: &DprDesignSpec) -> Result<(SizeClass, Strategy), Error> {
    let class = classify(spec)?;
    let strategy = match class {
        SizeClass::Class1_1 => Strategy::Serial,
        SizeClass::Class1_2 => Strategy::FullyParallel,
        // For γ ≈ 1, κ/α_av ≈ N, so Class 1.3 (κ ≫ α_av) implies N ≥ 3 and
        // τ = 2 is always a genuine grouping.
        SizeClass::Class1_3 => Strategy::SemiParallel {
            tau: SEMI_PARALLEL_TAU,
        },
        SizeClass::Class2_1 => Strategy::FullyParallel,
        SizeClass::Class2_2 => Strategy::Serial,
    };
    Ok((class, strategy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use presp_cad::flow::Strategy; // disambiguate from proptest's Strategy trait
    use presp_fpga::part::FpgaPart;
    use presp_fpga::resources::Resources;
    use proptest::prelude::*;

    fn spec(static_luts: u64, rms: &[u64]) -> DprDesignSpec {
        let mut b =
            DprDesignSpec::builder("t", FpgaPart::Vc707).static_part(Resources::luts(static_luts));
        for (i, &l) in rms.iter().enumerate() {
            b = b.reconfigurable(format!("rm{i}"), Resources::luts(l));
        }
        b.build().unwrap()
    }

    #[test]
    fn characterization_socs_classify_as_in_the_paper() {
        // SOC_1: 16 MACs — Class 1.1 → serial.
        let soc1 = spec(82_267, &[2_450; 16]);
        assert_eq!(classify(&soc1).unwrap(), SizeClass::Class1_1);
        assert_eq!(choose_strategy(&soc1).unwrap().1, Strategy::Serial);

        // SOC_2: conv2d/gemm/fft/sort — Class 1.2 → fully-parallel.
        let soc2 = spec(82_267, &[36_741, 30_617, 33_690, 20_468]);
        assert_eq!(classify(&soc2).unwrap(), SizeClass::Class1_2);
        assert_eq!(choose_strategy(&soc2).unwrap().1, Strategy::FullyParallel);

        // SOC_3: conv2d/gemm/sort — Class 1.3 → semi-parallel (τ=2).
        let soc3 = spec(82_267, &[36_741, 30_617, 20_468]);
        assert_eq!(classify(&soc3).unwrap(), SizeClass::Class1_3);
        assert_eq!(
            choose_strategy(&soc3).unwrap().1,
            Strategy::SemiParallel { tau: 2 }
        );

        // SOC_4: CPU moved into the reconfigurable part — Class 2.1 →
        // fully-parallel.
        let soc4 = spec(40_723, &[36_741, 30_617, 33_690, 20_468, 41_544]);
        assert_eq!(classify(&soc4).unwrap(), SizeClass::Class2_1);
        assert_eq!(choose_strategy(&soc4).unwrap().1, Strategy::FullyParallel);
    }

    #[test]
    fn single_rm_design_is_class_2_2_serial() {
        let s = spec(30_000, &[31_000]);
        assert_eq!(classify(&s).unwrap(), SizeClass::Class2_2);
        assert_eq!(choose_strategy(&s).unwrap().1, Strategy::Serial);
    }

    #[test]
    fn impossible_profile_is_rejected() {
        // Small static with γ < 1 cannot be realized with equal-size RMs,
        // but a synthetic spec can state it; the classifier must reject it.
        let s = spec(50_000, &[20_000]);
        // γ = 0.4 < 0.85 and κ/α_av = 50/66 ≈ 0.76 (≈ band).
        assert!(matches!(classify(&s), Err(Error::ImpossibleProfile { .. })));
    }

    #[test]
    fn no_rms_is_a_bad_design() {
        let s = DprDesignSpec::builder("t", FpgaPart::Vc707)
            .static_part(Resources::luts(1_000))
            .build()
            .unwrap();
        assert!(matches!(classify(&s), Err(Error::BadDesign { .. })));
    }

    #[test]
    fn two_equal_rms_matching_the_static_are_class_2_2() {
        // For γ ≈ 1, κ/α_av ≈ N: with N = 2 the static cannot dominate the
        // average module, so the design lands in group 2 and runs serially.
        let s = spec(82_267, &[41_000, 40_000]);
        assert_eq!(classify(&s).unwrap(), SizeClass::Class2_2);
        assert_eq!(choose_strategy(&s).unwrap().1, Strategy::Serial);
    }

    #[test]
    fn class_1_3_needs_three_or_more_rms() {
        let s = spec(82_267, &[28_000, 27_000, 26_000]);
        assert_eq!(classify(&s).unwrap(), SizeClass::Class1_3);
        assert_eq!(
            choose_strategy(&s).unwrap().1,
            Strategy::SemiParallel { tau: 2 }
        );
    }

    // --- Table I band boundaries -----------------------------------------
    //
    // Both bands are inclusive: γ is "≈ 1" for γ ∈ [0.85, 1.15] exactly,
    // and the static part "dominates" only for κ/α_av strictly above 2.5.
    // With Eq. (1)'s metrics κ/α_av = N·S/ΣR and γ = ΣR/S, so boundary
    // values are pinned with integer LUT counts whose single-division
    // results round to the same doubles as the band literals.

    #[test]
    fn gamma_at_lower_band_edge_is_inside_the_band() {
        // γ = 85 000 / 100 000 rounds to the same double as the 0.85
        // literal, so `gamma < GAMMA_BAND.0` must be false: γ ≈ 1.
        let group2 = spec(100_000, &[85_000]);
        assert_eq!(classify(&group2).unwrap(), SizeClass::Class2_2);
        assert_eq!(choose_strategy(&group2).unwrap().1, Strategy::Serial);
        // Same γ with the static dominating (N = 4 → κ/α_av ≈ 4.7).
        let group1 = spec(100_000, &[21_250; 4]);
        assert_eq!(classify(&group1).unwrap(), SizeClass::Class1_3);
        assert_eq!(
            choose_strategy(&group1).unwrap().1,
            Strategy::SemiParallel { tau: 2 }
        );
    }

    #[test]
    fn gamma_at_upper_band_edge_is_inside_the_band() {
        // γ = 115 000 / 100 000 == the 1.15 literal: still ≈ 1.
        let group2 = spec(100_000, &[115_000]);
        assert_eq!(classify(&group2).unwrap(), SizeClass::Class2_2);
        let group1 = spec(100_000, &[28_750; 4]);
        assert_eq!(classify(&group1).unwrap(), SizeClass::Class1_3);
    }

    #[test]
    fn gamma_just_outside_the_band_changes_class() {
        // One LUT below the band: γ < 0.85.
        assert!(matches!(
            classify(&spec(100_000, &[84_999])),
            Err(Error::ImpossibleProfile { .. })
        ));
        assert_eq!(
            classify(&spec(100_000, &[21_249, 21_250, 21_250, 21_250])).unwrap(),
            SizeClass::Class1_1
        );
        // One LUT above the band: γ > 1.15.
        assert_eq!(
            classify(&spec(100_000, &[115_001])).unwrap(),
            SizeClass::Class2_1
        );
        assert_eq!(
            classify(&spec(100_000, &[28_751, 28_750, 28_750, 28_750])).unwrap(),
            SizeClass::Class1_2
        );
    }

    #[test]
    fn kappa_alpha_ratio_at_upper_band_edge_does_not_dominate() {
        // κ/α_av = 3·50 000 / 60 000 = 2.5 exactly: the band is inclusive,
        // so the static part does NOT dominate and (γ = 1.2 > 1.15) the
        // design is Class 2.1, not 1.2.
        let s = spec(50_000, &[20_000; 3]);
        assert_eq!(classify(&s).unwrap(), SizeClass::Class2_1);
        // One static LUT more tips the ratio above 2.5: Class 1.2.
        let s = spec(50_001, &[20_000; 3]);
        assert_eq!(classify(&s).unwrap(), SizeClass::Class1_2);
    }

    #[test]
    fn kappa_alpha_ratio_at_lower_band_edge_behaves_like_the_middle_band() {
        // κ/α_av = 10 000 / 25 000 = 0.4 exactly (N = 1): κ ≪ α_av and
        // κ ≈ α_av share a Table I row, so the inclusive lower edge must
        // classify identically to a mid-band profile with the same γ.
        let edge = spec(10_000, &[25_000]);
        let mid = spec(20_000, &[50_000]); // ratio 1.0, same γ = 2.5
        assert_eq!(classify(&edge).unwrap(), SizeClass::Class2_1);
        assert_eq!(classify(&edge).unwrap(), classify(&mid).unwrap());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn classifier_is_total_on_realizable_designs(
            static_luts in 20_000u64..120_000,
            rms in proptest::collection::vec(2_000u64..45_000, 1..8),
        ) {
            let total: u64 = static_luts + rms.iter().sum::<u64>();
            prop_assume!(total < 300_000);
            let s = spec(static_luts, &rms);
            match classify(&s) {
                Ok(_class) => {
                    // The chosen strategy must be executable.
                    let (_, strategy) = choose_strategy(&s).unwrap();
                    let tau = strategy.tau(rms.len());
                    prop_assert!(tau >= 1 && tau <= rms.len());
                }
                Err(Error::ImpossibleProfile { gamma, kappa, alpha_av }) => {
                    // Only the blank Table I cells may be rejected.
                    prop_assert!(gamma < GAMMA_BAND.0);
                    prop_assert!(kappa / alpha_av <= KAPPA_ALPHA_BAND.1);
                }
                Err(e) => return Err(TestCaseError::fail(format!("unexpected {e}"))),
            }
        }
    }
}
