//! SoC designs: tile grids plus per-tile accelerator allocations.
//!
//! Includes constructors for every design evaluated in the paper: the four
//! Vivado-characterization SoCs (SOC_1–SOC_4, Table III), the four WAMI
//! parallelism-evaluation SoCs (SoC_A–SoC_D, Table IV) and the three
//! deployed WAMI systems (SoC_X–SoC_Z, Table VI).

use crate::error::Error;
use presp_accel::catalog::AcceleratorKind;
use presp_cad::spec::DprDesignSpec;
use presp_fpga::part::FpgaPart;
use presp_fpga::resources::Resources;
use presp_soc::config::{SocConfig, TileCoord};
use presp_soc::tile::TileKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A complete PR-ESP design: the SoC configuration plus, for every
/// reconfigurable tile, the set of accelerators that may be loaded into it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SocDesign {
    /// Design name.
    pub name: String,
    /// Target part.
    pub part: FpgaPart,
    /// The tile grid.
    pub config: SocConfig,
    /// Accelerators allocatable to each reconfigurable tile.
    pub tile_accels: BTreeMap<TileCoord, Vec<AcceleratorKind>>,
    /// Whether the CPU tile is moved into the reconfigurable part (the
    /// paper's SOC_4 / SoC_D trick to shrink the static region).
    pub cpu_reconfigurable: bool,
}

/// Canonical region name of a reconfigurable tile.
pub fn region_name(coord: TileCoord) -> String {
    format!("rt_r{}c{}", coord.row, coord.col)
}

impl SocDesign {
    /// Builds a design over a 3×3 grid with one reconfigurable tile per
    /// accelerator set in `tile_accels` (row-major assignment).
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadDesign`] for empty allocations or more tiles
    /// than the grid holds, and SoC-configuration errors.
    pub fn grid_3x3(
        name: impl Into<String>,
        tile_accels: Vec<Vec<AcceleratorKind>>,
        cpu_reconfigurable: bool,
    ) -> Result<SocDesign, Error> {
        let name = name.into();
        if tile_accels.is_empty() || tile_accels.iter().any(|set| set.is_empty()) {
            return Err(Error::BadDesign {
                detail: "every reconfigurable tile needs ≥1 accelerator".into(),
            });
        }
        let config = SocConfig::grid_3x3_reconf(name.clone(), tile_accels.len())?;
        let coords = config.reconfigurable_tiles();
        let map = coords.into_iter().zip(tile_accels).collect();
        Ok(SocDesign {
            name,
            part: FpgaPart::Vc707,
            config,
            tile_accels: map,
            cpu_reconfigurable,
        })
    }

    /// SOC_1 of the characterization (Table III): a 4×5 grid with sixteen
    /// reconfigurable MAC tiles — Class 1.1.
    ///
    /// # Errors
    ///
    /// Never fails in practice; mirrors the fallible constructors.
    pub fn characterization_soc1() -> Result<SocDesign, Error> {
        let mut tiles = vec![TileKind::Cpu, TileKind::Mem, TileKind::Aux, TileKind::Empty];
        tiles.extend(std::iter::repeat_n(TileKind::Reconfigurable, 16));
        let config = SocConfig::new("soc_1", 4, 5, tiles)?;
        let map = config
            .reconfigurable_tiles()
            .into_iter()
            .map(|c| (c, vec![AcceleratorKind::Mac]))
            .collect();
        Ok(SocDesign {
            name: "soc_1".into(),
            part: FpgaPart::Vc707,
            config,
            tile_accels: map,
            cpu_reconfigurable: false,
        })
    }

    /// SOC_2 (Class 1.2): Conv2d, GEMM, FFT and Sort in four
    /// reconfigurable tiles.
    ///
    /// # Errors
    ///
    /// Never fails in practice; mirrors the fallible constructors.
    pub fn characterization_soc2() -> Result<SocDesign, Error> {
        SocDesign::grid_3x3(
            "soc_2",
            vec![
                vec![AcceleratorKind::Conv2d],
                vec![AcceleratorKind::Gemm],
                vec![AcceleratorKind::Fft],
                vec![AcceleratorKind::Sort],
            ],
            false,
        )
    }

    /// SOC_3 (Class 1.3): SOC_2 without the FFT.
    ///
    /// # Errors
    ///
    /// Never fails in practice; mirrors the fallible constructors.
    pub fn characterization_soc3() -> Result<SocDesign, Error> {
        SocDesign::grid_3x3(
            "soc_3",
            vec![
                vec![AcceleratorKind::Conv2d],
                vec![AcceleratorKind::Gemm],
                vec![AcceleratorKind::Sort],
            ],
            false,
        )
    }

    /// SOC_4 (Class 2.1): SOC_2 with the CPU tile moved into the
    /// reconfigurable part to shrink the static region.
    ///
    /// # Errors
    ///
    /// Never fails in practice; mirrors the fallible constructors.
    pub fn characterization_soc4() -> Result<SocDesign, Error> {
        SocDesign::grid_3x3(
            "soc_4",
            vec![
                vec![AcceleratorKind::Conv2d],
                vec![AcceleratorKind::Gemm],
                vec![AcceleratorKind::Fft],
                vec![AcceleratorKind::Sort],
            ],
            true,
        )
    }

    /// A Table IV WAMI SoC: four reconfigurable tiles, one WAMI accelerator
    /// each, selected by Fig. 3 indices (e.g. SoC_A = `&[4, 8, 10, 9]`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadDesign`] for invalid kernel indices.
    pub fn wami_table4(name: impl Into<String>, indices: &[usize]) -> Result<SocDesign, Error> {
        let name = name.into();
        let cpu_reconfigurable = name.ends_with('d'); // SoC_D moves the CPU
        let mut sets = Vec::new();
        for &i in indices {
            let kind = AcceleratorKind::wami(i).ok_or_else(|| Error::BadDesign {
                detail: format!("bad WAMI kernel index {i}"),
            })?;
            sets.push(vec![kind]);
        }
        SocDesign::grid_3x3(name, sets, cpu_reconfigurable)
    }

    /// A Table VI deployment SoC: reconfigurable tiles hosting *sets* of
    /// WAMI accelerators (swapped at runtime), e.g. SoC_Y =
    /// `&[&[1, 3, 7, 12], &[2, 6, 8], &[4, 9, 10]]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadDesign`] for invalid kernel indices.
    pub fn wami_table6(name: impl Into<String>, tiles: &[&[usize]]) -> Result<SocDesign, Error> {
        let mut sets = Vec::new();
        for indices in tiles {
            let mut set = Vec::new();
            for &i in *indices {
                set.push(AcceleratorKind::wami(i).ok_or_else(|| Error::BadDesign {
                    detail: format!("bad WAMI kernel index {i}"),
                })?);
            }
            sets.push(set);
        }
        SocDesign::grid_3x3(name, sets, false)
    }

    /// SoC_X of Table VI (two reconfigurable tiles).
    ///
    /// # Errors
    ///
    /// Never fails in practice; mirrors the fallible constructors.
    pub fn wami_soc_x() -> Result<SocDesign, Error> {
        SocDesign::wami_table6("soc_x", &[&[1, 4, 9, 10, 8], &[2, 3, 6, 7, 11]])
    }

    /// SoC_Y of Table VI (three reconfigurable tiles).
    ///
    /// # Errors
    ///
    /// Never fails in practice; mirrors the fallible constructors.
    pub fn wami_soc_y() -> Result<SocDesign, Error> {
        SocDesign::wami_table6("soc_y", &[&[1, 3, 7, 12], &[2, 6, 8], &[4, 9, 10]])
    }

    /// SoC_Z of Table VI (four reconfigurable tiles).
    ///
    /// # Errors
    ///
    /// Never fails in practice; mirrors the fallible constructors.
    pub fn wami_soc_z() -> Result<SocDesign, Error> {
        SocDesign::wami_table6(
            "soc_z",
            &[&[1, 6, 12], &[2, 5, 11], &[4, 10, 7], &[3, 8, 9]],
        )
    }

    /// Resource requirement of one reconfigurable region: the
    /// component-wise maximum over every accelerator it may host.
    pub fn region_requirement(&self, coord: TileCoord) -> Option<Resources> {
        let accels = self.tile_accels.get(&coord)?;
        Some(
            accels
                .iter()
                .fold(Resources::ZERO, |acc, kind| acc.max(&kind.resources())),
        )
    }

    /// Static-part resources (minus the CPU when it is reconfigurable).
    pub fn static_resources(&self) -> Resources {
        let mut r = self.config.static_resources();
        if self.cpu_reconfigurable {
            r = r.saturating_sub(&TileKind::Cpu.static_resources());
        }
        r
    }

    /// Derives the CAD design specification (static + one RM per region,
    /// plus the CPU as an extra RM when reconfigurable).
    ///
    /// # Errors
    ///
    /// Propagates spec-builder errors (e.g. device overflow).
    pub fn to_spec(&self) -> Result<DprDesignSpec, Error> {
        let mut b = DprDesignSpec::builder(self.name.clone(), self.part)
            .static_part(self.static_resources());
        for coord in self.tile_accels.keys() {
            let req = self
                .region_requirement(*coord)
                .expect("coord comes from the map");
            b = b.reconfigurable(region_name(*coord), req);
        }
        if self.cpu_reconfigurable {
            b = b.reconfigurable("rt_cpu", TileKind::Cpu.static_resources());
        }
        Ok(b.build()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{classify, SizeClass};

    #[test]
    fn characterization_specs_match_paper_metrics() {
        let soc2 = SocDesign::characterization_soc2()
            .unwrap()
            .to_spec()
            .unwrap();
        let (kappa, alpha, gamma) = soc2.size_metrics();
        assert!((kappa - 0.271).abs() < 0.005);
        assert!((alpha - 0.100).abs() < 0.005);
        assert!((gamma - 1.477).abs() < 0.01);
    }

    #[test]
    fn soc1_has_sixteen_mac_tiles() {
        let soc1 = SocDesign::characterization_soc1().unwrap();
        assert_eq!(soc1.tile_accels.len(), 16);
        let spec = soc1.to_spec().unwrap();
        assert_eq!(spec.reconfigurable().len(), 16);
        assert_eq!(classify(&spec).unwrap(), SizeClass::Class1_1);
    }

    #[test]
    fn soc4_moves_cpu_into_reconfigurable_part() {
        let soc4 = SocDesign::characterization_soc4().unwrap();
        let spec = soc4.to_spec().unwrap();
        assert_eq!(spec.reconfigurable().len(), 5);
        assert!(spec.rm("rt_cpu").is_some());
        assert_eq!(spec.static_resources().lut, 82_267 - 41_544);
        assert_eq!(classify(&spec).unwrap(), SizeClass::Class2_1);
    }

    #[test]
    fn table4_socs_classify_as_in_the_paper() {
        let expectations = [
            ("soc_a", &[4usize, 8, 10, 9][..], SizeClass::Class1_2),
            ("soc_b", &[2, 3, 11, 1][..], SizeClass::Class1_1),
            ("soc_c", &[7, 11, 8, 2][..], SizeClass::Class1_3),
            ("soc_d", &[4, 5, 9, 2][..], SizeClass::Class2_1),
        ];
        for (name, indices, expected) in expectations {
            let spec = SocDesign::wami_table4(name, indices)
                .unwrap()
                .to_spec()
                .unwrap();
            assert_eq!(classify(&spec).unwrap(), expected, "{name}");
        }
    }

    #[test]
    fn table6_socs_have_expected_tile_counts() {
        assert_eq!(SocDesign::wami_soc_x().unwrap().tile_accels.len(), 2);
        assert_eq!(SocDesign::wami_soc_y().unwrap().tile_accels.len(), 3);
        assert_eq!(SocDesign::wami_soc_z().unwrap().tile_accels.len(), 4);
        // SoC_Z allocates all twelve kernels.
        let z = SocDesign::wami_soc_z().unwrap();
        let total: usize = z.tile_accels.values().map(|v| v.len()).sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn region_requirement_is_componentwise_max() {
        let x = SocDesign::wami_soc_x().unwrap();
        let rt1 = *x.tile_accels.keys().next().unwrap();
        let req = x.region_requirement(rt1).unwrap();
        // RT1 hosts {1, 4, 9, 10, 8}: warp (#4) dominates LUTs.
        assert_eq!(req.lut, AcceleratorKind::wami(4).unwrap().resources().lut);
        assert!(req.dsp >= AcceleratorKind::wami(4).unwrap().resources().dsp);
    }

    #[test]
    fn bad_designs_are_rejected() {
        assert!(matches!(
            SocDesign::grid_3x3("x", vec![], false),
            Err(Error::BadDesign { .. })
        ));
        assert!(matches!(
            SocDesign::wami_table4("x", &[0]),
            Err(Error::BadDesign { .. })
        ));
        assert!(matches!(
            SocDesign::wami_table4("x", &[13]),
            Err(Error::BadDesign { .. })
        ));
    }
}
