//! PR-ESP: an open-source platform for design and programming of partially
//! reconfigurable SoCs — the paper's primary contribution.
//!
//! The platform ties the substrates together into the fully automated flow
//! of Fig. 1:
//!
//! 1. **Parse** a [`design`] (tile grid + per-tile accelerator allocation),
//!    separating static from reconfigurable sources.
//! 2. **Synthesize** the static part and every reconfigurable tile in
//!    parallel, out-of-context (`presp-cad`).
//! 3. **Floorplan** the reconfigurable regions (`presp-floorplan`).
//! 4. **Choose the P&R parallelism** with the size-driven algorithm of
//!    Table I ([`strategy`]).
//! 5. **Place & route** under the chosen schedule and **generate full and
//!    partial bitstreams** ([`flow`]), compressed like the paper's pbs.
//! 6. **Deploy** ([`platform`]): boot the simulated SoC, register the pbs
//!    with the runtime manager, and hand back a programmable system.
//!
//! # Example
//!
//! ```
//! use presp_core::design::SocDesign;
//! use presp_core::flow::PrEspFlow;
//! use presp_core::strategy::SizeClass;
//!
//! // SoC_B of the paper (Table IV): WAMI accelerators {2, 3, 11, 1}.
//! let design = SocDesign::wami_table4("soc_b", &[2, 3, 11, 1])?;
//! let output = PrEspFlow::new().run(&design)?;
//! assert_eq!(output.class, SizeClass::Class1_1);           // γ < 1, κ ≫ α_av
//! assert!(output.report.total.value() > 0.0);              // simulated minutes
//! assert_eq!(output.partial_bitstreams.len(), 4);          // one pbs per accelerator
//! # Ok::<(), presp_core::Error>(())
//! ```

pub mod design;
pub mod error;
pub mod flow;
pub mod platform;
pub mod strategy;

pub use design::SocDesign;
pub use error::Error;
pub use flow::{FlowOutput, PrEspFlow};
pub use strategy::{choose_strategy, classify, SizeClass};
