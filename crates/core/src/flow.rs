//! The automated PR-ESP FPGA flow (Fig. 1): parse → parallel synthesis →
//! floorplan → size-driven strategy → scheduled P&R → bitstream generation.

use crate::design::{region_name, SocDesign};
use crate::error::Error;
use crate::strategy::{choose_strategy, SizeClass};
use presp_accel::catalog::AcceleratorKind;
use presp_cad::flow::{CadFlow, FullFlowReport, MonolithicReport, Strategy};
use presp_cad::place::{build_partial_bitstream, place_in_region, FRAME_CONTENT_DENSITY};
use presp_events::trace::ClockDomain;
use presp_events::{milliminutes, TraceEvent, Tracer};
use presp_floorplan::{Floorplan, Floorplanner, RegionRequest};
use presp_fpga::bitstream::{Bitstream, BitstreamBuilder, BitstreamKind};
use presp_fpga::fabric::{ColumnKind, Device};
use presp_fpga::frame::{frames_per_column, FrameAddress};
use presp_fpga::pblock::Pblock;
use presp_fpga::resources::Resources;
use presp_soc::config::TileCoord;

/// One generated partial bitstream.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialBitstreamInfo {
    /// Reconfigurable-region name.
    pub region: String,
    /// Target tile (`None` for the relocated CPU module).
    pub tile: Option<TileCoord>,
    /// Accelerator (or CPU) the bitstream loads.
    pub kind: AcceleratorKind,
    /// The bitstream itself.
    pub bitstream: Bitstream,
}

/// Everything the flow produces for one design.
#[derive(Debug, Clone)]
pub struct FlowOutput {
    /// Size class of the design (Section IV).
    pub class: SizeClass,
    /// Strategy the size-driven algorithm selected.
    pub strategy: Strategy,
    /// PR-ESP flow report (parallel synthesis + scheduled P&R).
    pub report: FullFlowReport,
    /// The standard Xilinx DPR flow baseline for the same design.
    pub monolithic: MonolithicReport,
    /// The floorplan of the reconfigurable regions.
    pub floorplan: Floorplan,
    /// One partial bitstream per (region, loadable accelerator) pair.
    pub partial_bitstreams: Vec<PartialBitstreamInfo>,
    /// The full-device boot bitstream.
    pub full_bitstream: Bitstream,
}

impl FlowOutput {
    /// The partial bitstreams targeting `tile`.
    pub fn bitstreams_for_tile(&self, tile: TileCoord) -> Vec<&PartialBitstreamInfo> {
        self.partial_bitstreams
            .iter()
            .filter(|p| p.tile == Some(tile))
            .collect()
    }

    /// Mean compressed pbs size per region, in KB (Table VI's `pbs (KB)`).
    pub fn mean_pbs_kb(&self, region: &str) -> Option<f64> {
        let sizes: Vec<usize> = self
            .partial_bitstreams
            .iter()
            .filter(|p| p.region == region)
            .map(|p| p.bitstream.size_bytes())
            .collect();
        if sizes.is_empty() {
            None
        } else {
            Some(sizes.iter().sum::<usize>() as f64 / sizes.len() as f64 / 1024.0)
        }
    }
}

/// The PR-ESP flow driver: the analogue of the paper's "single make
/// target" that takes an SoC configuration to full and partial bitstreams.
#[derive(Debug, Clone)]
pub struct PrEspFlow {
    cad: CadFlow,
    compressed: bool,
}

impl Default for PrEspFlow {
    fn default() -> PrEspFlow {
        PrEspFlow {
            cad: CadFlow::new(),
            compressed: true,
        }
    }
}

impl PrEspFlow {
    /// A flow with default settings (compressed bitstreams, 16-core host).
    pub fn new() -> PrEspFlow {
        PrEspFlow::default()
    }

    /// Selects compressed or raw partial-bitstream generation (the paper
    /// uses Vivado's compression "to reduce the memory access latency
    /// during reconfiguration").
    pub fn with_compression(mut self, compressed: bool) -> PrEspFlow {
        self.compressed = compressed;
        self
    }

    /// Replaces the CAD engine (e.g. for a different host machine).
    pub fn with_cad(mut self, cad: CadFlow) -> PrEspFlow {
        self.cad = cad;
        self
    }

    /// Runs the complete flow on a design.
    ///
    /// # Errors
    ///
    /// Propagates design, classification, floorplanning, CAD and bitstream
    /// errors.
    pub fn run(&self, design: &SocDesign) -> Result<FlowOutput, Error> {
        self.run_traced(design, &mut Tracer::disabled())
    }

    /// Like [`PrEspFlow::run`], emitting the flow's structured trace
    /// through `tracer`: [`TraceEvent::FlowStage`] spans for synthesis and
    /// every P&R step (PR-ESP and monolithic baseline, both from 0 on the
    /// CAD milliminute timeline) and one [`TraceEvent::BitstreamGenerated`]
    /// instant per emitted bitstream — Table V and Table VI's `pbs (KB)`
    /// column are both derivable from the trace alone.
    ///
    /// # Errors
    ///
    /// Same as [`PrEspFlow::run`].
    pub fn run_traced(&self, design: &SocDesign, tracer: &mut Tracer) -> Result<FlowOutput, Error> {
        let spec = design.to_spec()?;
        let device = design.part.device();

        // Floorplan every reconfigurable region.
        let requests: Vec<RegionRequest> = spec
            .reconfigurable()
            .iter()
            .map(|rm| RegionRequest::new(rm.name.clone(), rm.resources))
            .collect();
        let floorplan = Floorplanner::new(&device).floorplan(&requests)?;
        tracer.instant(ClockDomain::CadMilliMinutes, 0, || TraceEvent::FlowStage {
            design: spec.name().to_string(),
            stage: "floorplan".to_string(),
            region: String::new(),
        });

        // Size-driven strategy selection (Table I) and scheduled P&R.
        let (class, strategy) = choose_strategy(&spec)?;
        let report = self.cad.run_full_flow_traced(&spec, strategy, tracer)?;
        let monolithic = self.cad.run_monolithic_traced(&spec, tracer);

        // Partial bitstreams: one per (region, loadable accelerator).
        let mut partial_bitstreams = Vec::new();
        for (coord, accels) in &design.tile_accels {
            let region = region_name(*coord);
            let pblock = *floorplan
                .pblock(&region)
                .expect("floorplan covers every spec region");
            for (i, kind) in accels.iter().enumerate() {
                let placement = place_in_region(&device, &region, pblock, kind.resources())?;
                let seed = seed_for(&region, i);
                let bitstream =
                    build_partial_bitstream(&device, &placement, seed, self.compressed)?;
                partial_bitstreams.push(PartialBitstreamInfo {
                    region: region.clone(),
                    tile: Some(*coord),
                    kind: *kind,
                    bitstream,
                });
            }
        }
        if design.cpu_reconfigurable {
            let region = "rt_cpu".to_string();
            let pblock = *floorplan.pblock(&region).expect("cpu region floorplanned");
            let placement =
                place_in_region(&device, &region, pblock, AcceleratorKind::Cpu.resources())?;
            let bitstream = build_partial_bitstream(
                &device,
                &placement,
                seed_for(&region, 0),
                self.compressed,
            )?;
            partial_bitstreams.push(PartialBitstreamInfo {
                region,
                tile: None,
                kind: AcceleratorKind::Cpu,
                bitstream,
            });
        }

        let full_bitstream = build_full_bitstream(&device, &floorplan, spec.static_resources())?;

        // Bitstream generation happens at the end of the PR-ESP flow.
        let done = milliminutes(report.total.value());
        for info in &partial_bitstreams {
            tracer.instant(ClockDomain::CadMilliMinutes, done, || {
                TraceEvent::BitstreamGenerated {
                    design: spec.name().to_string(),
                    region: info.region.clone(),
                    kind: info.kind.name(),
                    bytes: info.bitstream.size_bytes() as u64,
                }
            });
        }
        tracer.instant(ClockDomain::CadMilliMinutes, done, || {
            TraceEvent::BitstreamGenerated {
                design: spec.name().to_string(),
                region: "static".to_string(),
                kind: "full".to_string(),
                bytes: full_bitstream.size_bytes() as u64,
            }
        });

        Ok(FlowOutput {
            class,
            strategy,
            report,
            monolithic,
            floorplan,
            partial_bitstreams,
            full_bitstream,
        })
    }
}

/// Deterministic per-module seed for frame-content generation.
fn seed_for(region: &str, index: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in region.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ (index as u64) << 32
}

/// Builds the full-device boot bitstream: static content spread over every
/// column outside the reconfigurable pblocks, blank frames inside them
/// (the regions boot empty and are loaded by DPR afterwards).
fn build_full_bitstream(
    device: &Device,
    floorplan: &Floorplan,
    static_resources: Resources,
) -> Result<Bitstream, Error> {
    let words = device.part().family().frame_words();
    let total = device.total_resources();
    let blocked: Resources = floorplan
        .pblocks()
        .values()
        .map(|pb| {
            device
                .pblock_resources(pb)
                .expect("floorplanned pblocks are legal")
        })
        .sum();
    let available = total.saturating_sub(&blocked);
    let fill = if available.lut == 0 {
        0.0
    } else {
        (static_resources.lut as f64 / available.lut as f64).min(1.0)
    };
    let mut builder = BitstreamBuilder::new(device, BitstreamKind::Full);
    for row in 0..device.rows() {
        for col in 0..device.columns() {
            let kind = device.column_kind(col);
            let in_region = floorplan
                .pblocks()
                .values()
                .any(|pb| pb.col_range().contains(&col) && pb.row_range().contains(&row));
            let n = frames_per_column(kind);
            let used = if in_region
                || !matches!(kind, ColumnKind::Clb | ColumnKind::Bram | ColumnKind::Dsp)
            {
                0
            } else {
                ((n as f64) * fill * FRAME_CONTENT_DENSITY).ceil() as usize
            };
            for minor in 0..n {
                let addr = FrameAddress::new(row as u32, col as u32, minor as u32);
                let content = if minor < used {
                    // Deterministic pseudo-content, distinct per frame.
                    let mut state = (row as u64) << 40 ^ (col as u64) << 20 ^ minor as u64 | 1;
                    (0..words)
                        .map(|_| {
                            state ^= state << 13;
                            state ^= state >> 7;
                            state ^= state << 17;
                            (state >> 16) as u32
                        })
                        .collect()
                } else {
                    vec![0u32; words]
                };
                builder.add_frame(addr, content)?;
            }
        }
    }
    Ok(builder.build(true))
}

/// Returns `(pblock, region)` pairs for convenience in reports.
pub fn region_pblocks(floorplan: &Floorplan) -> Vec<(String, Pblock)> {
    floorplan
        .pblocks()
        .iter()
        .map(|(n, p)| (n.clone(), *p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::SocDesign;

    #[test]
    fn soc_b_runs_serially_and_emits_four_pbs() {
        let design = SocDesign::wami_table4("soc_b", &[2, 3, 11, 1]).unwrap();
        let out = PrEspFlow::new().run(&design).unwrap();
        assert_eq!(out.class, SizeClass::Class1_1);
        assert_eq!(out.strategy, Strategy::Serial);
        assert_eq!(out.partial_bitstreams.len(), 4);
        assert!(out.report.total.value() > 0.0);
    }

    #[test]
    fn soc_a_goes_fully_parallel_and_beats_monolithic() {
        let design = SocDesign::wami_table4("soc_a", &[4, 8, 10, 9]).unwrap();
        let out = PrEspFlow::new().run(&design).unwrap();
        assert_eq!(out.class, SizeClass::Class1_2);
        assert_eq!(out.strategy, Strategy::FullyParallel);
        // Table V: PR-ESP improves SoC_A by ~19 % over the monolithic flow.
        assert!(
            out.report.total.value() < out.monolithic.total.value(),
            "PR-ESP {} vs monolithic {}",
            out.report.total,
            out.monolithic.total
        );
    }

    #[test]
    fn soc_d_emits_a_cpu_bitstream() {
        let design = SocDesign::wami_table4("soc_d", &[4, 5, 9, 2]).unwrap();
        let out = PrEspFlow::new().run(&design).unwrap();
        assert_eq!(out.class, SizeClass::Class2_1);
        assert_eq!(out.partial_bitstreams.len(), 5);
        assert!(out
            .partial_bitstreams
            .iter()
            .any(|p| p.kind == AcceleratorKind::Cpu && p.tile.is_none()));
    }

    #[test]
    fn table6_pbs_sizes_are_in_the_hundreds_of_kb() {
        let design = SocDesign::wami_soc_y().unwrap();
        let out = PrEspFlow::new().run(&design).unwrap();
        // Table VI reports 247–397 KB per tile for SoC_Y.
        for coord in design.tile_accels.keys() {
            let kb = out.mean_pbs_kb(&region_name(*coord)).unwrap();
            assert!(
                kb > 80.0 && kb < 900.0,
                "{}: {kb:.0} KB",
                region_name(*coord)
            );
        }
    }

    #[test]
    fn compression_flag_changes_pbs_sizes() {
        let design = SocDesign::wami_table4("soc_b", &[2, 3, 11, 1]).unwrap();
        let compressed = PrEspFlow::new().run(&design).unwrap();
        let raw = PrEspFlow::new()
            .with_compression(false)
            .run(&design)
            .unwrap();
        let sum = |o: &FlowOutput| -> usize {
            o.partial_bitstreams
                .iter()
                .map(|p| p.bitstream.size_bytes())
                .sum()
        };
        assert!(sum(&compressed) < sum(&raw) / 2);
    }

    #[test]
    fn full_bitstream_covers_the_static_fabric() {
        let design = SocDesign::wami_table4("soc_b", &[2, 3, 11, 1]).unwrap();
        let out = PrEspFlow::new().run(&design).unwrap();
        assert!(out.full_bitstream.frame_count() > 10_000);
        assert!(out.full_bitstream.size_bytes() > 100_000);
    }

    #[test]
    fn pbs_loads_through_the_icap() {
        use presp_fpga::icap::Icap;
        let design = SocDesign::wami_table4("soc_c", &[7, 11, 8, 2]).unwrap();
        let out = PrEspFlow::new().run(&design).unwrap();
        let device = design.part.device();
        let mut icap = Icap::new(&device);
        for info in &out.partial_bitstreams {
            let report = icap.load(&info.bitstream).expect("pbs loads cleanly");
            assert!(report.frames_written > 0);
        }
    }
}
