//! Error type for the PR-ESP platform.

use std::fmt;

/// Errors produced by the PR-ESP flow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The design description is inconsistent.
    BadDesign {
        /// Human-readable description.
        detail: String,
    },
    /// The size profile is impossible (the paper's blank Table I cells:
    /// γ < 1 with κ not ≫ α_av cannot occur).
    ImpossibleProfile {
        /// The computed (κ, α_av, γ).
        kappa: f64,
        /// Average reconfigurable fraction.
        alpha_av: f64,
        /// Reconfigurable-to-static ratio.
        gamma: f64,
    },
    /// CAD-flow failure.
    Cad(presp_cad::Error),
    /// Floorplanning failure.
    Floorplan(presp_floorplan::Error),
    /// SoC construction/simulation failure.
    Soc(presp_soc::Error),
    /// Runtime-manager failure.
    Runtime(presp_runtime::Error),
    /// Fabric/bitstream failure.
    Fpga(presp_fpga::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::BadDesign { detail } => write!(f, "bad design: {detail}"),
            Error::ImpossibleProfile {
                kappa,
                alpha_av,
                gamma,
            } => write!(
                f,
                "impossible size profile: κ={kappa:.3}, α_av={alpha_av:.3}, γ={gamma:.3}"
            ),
            Error::Cad(e) => write!(f, "cad flow: {e}"),
            Error::Floorplan(e) => write!(f, "floorplan: {e}"),
            Error::Soc(e) => write!(f, "soc: {e}"),
            Error::Runtime(e) => write!(f, "runtime: {e}"),
            Error::Fpga(e) => write!(f, "fpga: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Cad(e) => Some(e),
            Error::Floorplan(e) => Some(e),
            Error::Soc(e) => Some(e),
            Error::Runtime(e) => Some(e),
            Error::Fpga(e) => Some(e),
            _ => None,
        }
    }
}

impl From<presp_cad::Error> for Error {
    fn from(e: presp_cad::Error) -> Error {
        Error::Cad(e)
    }
}

impl From<presp_floorplan::Error> for Error {
    fn from(e: presp_floorplan::Error) -> Error {
        Error::Floorplan(e)
    }
}

impl From<presp_soc::Error> for Error {
    fn from(e: presp_soc::Error) -> Error {
        Error::Soc(e)
    }
}

impl From<presp_runtime::Error> for Error {
    fn from(e: presp_runtime::Error) -> Error {
        Error::Runtime(e)
    }
}

impl From<presp_fpga::Error> for Error {
    fn from(e: presp_fpga::Error) -> Error {
        Error::Fpga(e)
    }
}
