//! Deployment: from flow outputs to a booted, programmable SoC.
//!
//! The analogue of flashing the full bitstream and booting Linux: builds
//! the simulated SoC, accounts the floorplanned regions with the energy
//! meter, loads every partial bitstream into the runtime manager's
//! registry, and hands back either a bare [`ReconfigManager`] or a fully
//! wired WAMI application.

use crate::design::SocDesign;
use crate::error::Error;
use crate::flow::FlowOutput;
use presp_fpga::fault::{FaultConfig, FaultPlan};
use presp_runtime::app::{WamiAllocation, WamiApp};
use presp_runtime::manager::{ReconfigManager, RecoveryPolicy};
use presp_runtime::registry::BitstreamRegistry;
use presp_soc::config::TileCoord;
use presp_soc::sim::Soc;
use presp_wami::graph::WamiKernel;

/// Boots the SoC and loads the bitstream registry.
///
/// # Errors
///
/// Propagates SoC construction errors and duplicate bitstream
/// registrations from the flow output.
pub fn deploy(design: &SocDesign, output: &FlowOutput) -> Result<ReconfigManager, Error> {
    let mut soc = Soc::with_part(&design.config, design.part)?;
    // The floorplanned regions are provisioned fabric: they leak/clock for
    // the whole run whether or not an accelerator occupies them.
    let device = design.part.device();
    for pblock in output.floorplan.pblocks().values() {
        soc.provision_region(device.pblock_resources(pblock)?);
    }
    let mut registry = BitstreamRegistry::new();
    for info in &output.partial_bitstreams {
        if let Some(tile) = info.tile {
            registry
                .register(tile, info.kind, info.bitstream.clone())
                .map_err(Error::Runtime)?;
        }
    }
    Ok(ReconfigManager::new(soc, registry))
}

/// Boots the SoC with a seeded fault plan armed on its reconfiguration
/// datapath and the given recovery policy on the manager.
///
/// This is the entry point for resilience studies: the same `seed` +
/// `faults` pair always injects the same fault sequence, so a run is
/// reproducible end to end.
///
/// # Errors
///
/// Propagates SoC construction errors.
pub fn deploy_with_faults(
    design: &SocDesign,
    output: &FlowOutput,
    seed: u64,
    faults: FaultConfig,
    policy: RecoveryPolicy,
) -> Result<ReconfigManager, Error> {
    let mut manager = deploy(design, output)?;
    manager
        .soc_mut()
        .set_fault_plan(Some(FaultPlan::new(seed, faults)));
    manager.set_policy(policy);
    Ok(manager)
}

/// Deploys a WAMI design as a ready-to-run application.
///
/// The allocation is derived from the design's per-tile accelerator sets;
/// kernels absent from every tile fall back to the CPU.
///
/// # Errors
///
/// Propagates deployment errors.
pub fn deploy_wami(
    design: &SocDesign,
    output: &FlowOutput,
    lk_iterations: usize,
) -> Result<WamiApp, Error> {
    let manager = deploy(design, output)?;
    let rows: Vec<(TileCoord, Vec<usize>)> = design
        .tile_accels
        .iter()
        .map(|(coord, accels)| {
            let indices = accels
                .iter()
                .filter_map(|a| match a {
                    presp_accel::catalog::AcceleratorKind::Wami(k) => Some(k.index()),
                    _ => None,
                })
                .collect();
            (*coord, indices)
        })
        .collect();
    let borrowed: Vec<(TileCoord, &[usize])> =
        rows.iter().map(|(c, v)| (*c, v.as_slice())).collect();
    let allocation = WamiAllocation::from_rows(&borrowed);
    Ok(WamiApp::new(manager, allocation, lk_iterations))
}

/// Kernels of a design that will run in software on the CPU.
pub fn cpu_fallback_kernels(design: &SocDesign) -> Vec<WamiKernel> {
    let allocated: Vec<usize> = design
        .tile_accels
        .values()
        .flatten()
        .filter_map(|a| match a {
            presp_accel::catalog::AcceleratorKind::Wami(k) => Some(k.index()),
            _ => None,
        })
        .collect();
    WamiKernel::ALL
        .iter()
        .copied()
        .filter(|k| !allocated.contains(&k.index()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::PrEspFlow;
    use presp_wami::frames::SceneGenerator;

    #[test]
    fn deployed_soc_x_processes_frames() {
        let design = SocDesign::wami_soc_x().unwrap();
        let output = PrEspFlow::new().run(&design).unwrap();
        let mut app = deploy_wami(&design, &output, 2).unwrap();
        let mut scene = SceneGenerator::new(32, 32, 4);
        let r1 = app.process_frame(&scene.next_frame()).unwrap();
        let r2 = app.process_frame(&scene.next_frame()).unwrap();
        assert!(r2.registration.is_some());
        assert!(r2.reconfigurations > 0, "DPR actually happened");
        assert!(r2.end > r1.end);
    }

    #[test]
    fn soc_x_falls_back_to_cpu_for_unallocated_kernels() {
        let design = SocDesign::wami_soc_x().unwrap();
        let fallback = cpu_fallback_kernels(&design);
        // Table VI's SoC_X omits kernels #5 and #12.
        assert_eq!(
            fallback,
            vec![WamiKernel::Subtract, WamiKernel::ChangeDetection]
        );
    }

    #[test]
    fn soc_z_allocates_everything() {
        let design = SocDesign::wami_soc_z().unwrap();
        assert!(cpu_fallback_kernels(&design).is_empty());
    }

    #[test]
    fn registry_holds_one_pbs_per_tile_accelerator() {
        let design = SocDesign::wami_soc_y().unwrap();
        let output = PrEspFlow::new().run(&design).unwrap();
        let manager = deploy(&design, &output).unwrap();
        // SoC_Y: 4 + 3 + 3 accelerators across three tiles.
        let _ = manager; // registry is internal; count via the flow output
        assert_eq!(output.partial_bitstreams.len(), 10);
    }
}
