//! Automated DPR floorplanning for PR-ESP.
//!
//! The paper automates floorplanning by adapting FLORA (Seyoum et al., ACM
//! TECS 2019): given the post-synthesis resource requirement of every
//! reconfigurable tile, generate a placement rectangle (*pblock*) per tile
//! that
//!
//! 1. provides all required resources with a routing-slack margin,
//! 2. is vertically aligned to clock-region rows (a Xilinx DPR rule —
//!    guaranteed here by construction, see [`presp_fpga::pblock::Pblock`]),
//! 3. never covers the configuration column, and
//! 4. does not overlap any other reconfigurable pblock.
//!
//! [`Floorplanner`] implements a deterministic best-fit scan: requests are
//! placed in descending LUT order; for each request every legal rectangle is
//! enumerated (growing column spans over growing row spans) and the
//! candidate wasting the fewest LUTs wins.
//!
//! # Example
//!
//! ```
//! use presp_floorplan::{Floorplanner, RegionRequest};
//! use presp_fpga::part::FpgaPart;
//! use presp_fpga::resources::Resources;
//!
//! let device = FpgaPart::Vc707.device();
//! let requests = vec![
//!     RegionRequest::new("tile0", Resources::new(30_000, 40_000, 20, 30)),
//!     RegionRequest::new("tile1", Resources::new(12_000, 15_000, 8, 6)),
//! ];
//! let plan = Floorplanner::new(&device).floorplan(&requests)?;
//! assert_eq!(plan.pblocks().len(), 2);
//! # Ok::<(), presp_floorplan::Error>(())
//! ```

mod error;
mod planner;
mod region;

pub use error::Error;
pub use planner::{Floorplan, Floorplanner, PlannerConfig, RegionRequest};
pub use region::{FitPolicy, FragmentationStats, RegionAllocator, RegionLease, RegionMove};
