//! Dynamic region allocation over device frame columns.
//!
//! The static [`crate::Floorplanner`] decides a one-shot placement at design
//! time; this module is the *runtime* placement authority for amorphous
//! floorplanning (Nguyen & Hoe's flexible-boundary DPR). Regions are no
//! longer fixed sockets: a [`RegionAllocator`] leases contiguous column
//! spans out of the device's frame-column space on demand, releases them
//! when a tile goes idle, and plans compaction moves that slide live leases
//! toward column zero so a fragmented fabric can still admit a wide
//! accelerator.
//!
//! Fit policies follow Deak & Creț's packing formulation: first-fit takes
//! the lowest matching span, best-fit the span whose surrounding free run
//! is tightest (leaving the largest holes intact for future wide requests).
//!
//! Column *kinds* matter: a bitstream built for CLB columns can only be
//! relocated onto CLB columns (frame geometry differs per kind — see
//! `presp_fpga::bitstream`'s relocation rules), so every allocation carries
//! the kind pattern it was placed against and moves preserve it per column.

use crate::error::Error;
use presp_fpga::fabric::{ColumnKind, Device};
use presp_fpga::resources::Resources;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Span-selection policy for [`RegionAllocator::allocate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FitPolicy {
    /// Lowest matching span wins.
    #[default]
    FirstFit,
    /// The span inside the tightest surrounding free run wins (ties to the
    /// lowest base), preserving large holes for future wide requests.
    BestFit,
}

/// A live lease of a contiguous column span.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionLease {
    /// Stable lease identifier (unique within one allocator).
    pub id: u64,
    /// First leased column.
    pub base: u32,
    /// Kind of every leased column, in order; the lease is exactly
    /// `kinds.len()` columns wide.
    pub kinds: Vec<ColumnKind>,
}

impl RegionLease {
    /// Number of leased columns.
    pub fn width(&self) -> u32 {
        self.kinds.len() as u32
    }

    /// The leased column indices, ascending.
    pub fn columns(&self) -> std::ops::Range<u32> {
        self.base..self.base + self.width()
    }
}

/// One planned compaction step: slide lease `id` from `from` to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionMove {
    /// Lease being moved.
    pub id: u64,
    /// Current base column.
    pub from: u32,
    /// Destination base column.
    pub to: u32,
}

impl RegionMove {
    /// Signed column delta of the move — the value bitstream relocation
    /// rewrites frame addresses by.
    pub fn delta(&self) -> i64 {
        self.to as i64 - self.from as i64
    }
}

/// Snapshot of the allocator's fragmentation state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FragmentationStats {
    /// Columns the allocator manages (every reconfigurable column).
    pub managed_columns: u32,
    /// Managed columns not currently leased.
    pub free_columns: u32,
    /// Longest contiguous run of free managed columns.
    pub largest_free_span: u32,
    /// Live leases.
    pub leases: u32,
}

impl FragmentationStats {
    /// External fragmentation ratio in `[0, 1]`: the share of free columns
    /// unusable by a request sized to the largest free span
    /// (`1 − largest_free_span / free_columns`; `0` when nothing is free).
    pub fn external_fragmentation(&self) -> f64 {
        if self.free_columns == 0 {
            0.0
        } else {
            1.0 - self.largest_free_span as f64 / self.free_columns as f64
        }
    }
}

/// Dynamic allocator of column-span leases over one device's fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionAllocator {
    kinds: Vec<ColumnKind>,
    /// Lease id occupying each column, `None` when free. Non-reconfigurable
    /// columns are never free nor leased — they are simply unmanaged.
    occupancy: Vec<Option<u64>>,
    leases: BTreeMap<u64, RegionLease>,
    next_id: u64,
    policy: FitPolicy,
    /// Managed column window `[start, end)`; `None` manages the whole
    /// fabric. Columns outside the window belong to the static system and
    /// are never leased, exactly like non-reconfigurable columns.
    #[serde(default)]
    window: Option<(u32, u32)>,
}

impl RegionAllocator {
    /// Creates an allocator managing every reconfigurable column of
    /// `device`.
    pub fn new(device: &Device, policy: FitPolicy) -> RegionAllocator {
        let kinds: Vec<ColumnKind> = (0..device.columns())
            .map(|i| device.column_kind(i))
            .collect();
        let occupancy = vec![None; kinds.len()];
        RegionAllocator {
            kinds,
            occupancy,
            leases: BTreeMap::new(),
            next_id: 0,
            policy,
            window: None,
        }
    }

    /// [`RegionAllocator::new`] restricted to the columns in `window`
    /// (clamped to the fabric): the partially reconfigurable share of the
    /// device, with everything outside reserved for the static system.
    pub fn new_within(
        device: &Device,
        policy: FitPolicy,
        window: std::ops::Range<u32>,
    ) -> RegionAllocator {
        let mut allocator = RegionAllocator::new(device, policy);
        let end = window.end.min(device.columns() as u32);
        allocator.window = Some((window.start.min(end), end));
        allocator
    }

    /// Whether column `i` is available to the allocator: reconfigurable
    /// and inside the managed window.
    fn managed(&self, i: usize) -> bool {
        self.kinds[i].reconfigurable()
            && self
                .window
                .is_none_or(|(start, end)| (i as u32) >= start && (i as u32) < end)
    }

    /// The configured fit policy.
    pub fn policy(&self) -> FitPolicy {
        self.policy
    }

    /// Live leases in ascending id order.
    pub fn leases(&self) -> impl Iterator<Item = &RegionLease> {
        self.leases.values()
    }

    /// The lease with this id, if still live.
    pub fn lease(&self, id: u64) -> Option<&RegionLease> {
        self.leases.get(&id)
    }

    /// Whether a span matching `pattern` could be leased right now.
    pub fn can_fit(&self, pattern: &[ColumnKind]) -> bool {
        self.find_span(pattern, None).is_some()
    }

    /// Leases a span whose column kinds match `pattern`, or `None` when the
    /// fabric (as currently fragmented) has no matching free span.
    pub fn allocate(&mut self, pattern: &[ColumnKind]) -> Option<RegionLease> {
        let base = self.find_span(pattern, None)?;
        Some(self.occupy(base, pattern))
    }

    /// Leases the exact span starting at `base`, used to seed the allocator
    /// with placements that already exist on the fabric (e.g. tiles loaded
    /// before amorphous mode was enabled). Fails if any column is leased,
    /// unmanaged, or of the wrong kind.
    pub fn reserve_at(&mut self, base: u32, pattern: &[ColumnKind]) -> Option<RegionLease> {
        if !self.span_matches(base, pattern, None) {
            return None;
        }
        Some(self.occupy(base, pattern))
    }

    /// Releases a lease, freeing its columns. Returns `false` for an
    /// unknown id.
    pub fn release(&mut self, id: u64) -> bool {
        match self.leases.remove(&id) {
            None => false,
            Some(lease) => {
                for col in lease.columns() {
                    self.occupancy[col as usize] = None;
                }
                true
            }
        }
    }

    /// Moves a live lease to a new base column. The destination must be
    /// kind-compatible and free (the lease's own columns excepted — pure
    /// slides are legal).
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadMove`] for an unknown lease or an illegal
    /// destination.
    pub fn apply_move(&mut self, id: u64, to: u32) -> Result<(), Error> {
        let lease = self.leases.get(&id).ok_or_else(|| Error::BadMove {
            detail: format!("no live lease {id}"),
        })?;
        let pattern = lease.kinds.clone();
        let from = lease.base;
        if !self.span_matches(to, &pattern, Some(id)) {
            return Err(Error::BadMove {
                detail: format!(
                    "lease {id} cannot move from column {from} to {to}: destination \
                     occupied, unmanaged, or kind-incompatible"
                ),
            });
        }
        for col in from..from + pattern.len() as u32 {
            self.occupancy[col as usize] = None;
        }
        for col in to..to + pattern.len() as u32 {
            self.occupancy[col as usize] = Some(id);
        }
        self.leases.get_mut(&id).expect("checked above").base = to;
        Ok(())
    }

    /// Plans a compaction pass: greedily slides each lease (ascending base
    /// order) to the lowest kind-compatible free base at or below its
    /// current one. Returns only the non-trivial moves, in the order they
    /// must be applied. The plan is purely advisory — the caller applies
    /// each step with [`RegionAllocator::apply_move`] after physically
    /// relocating the frames.
    pub fn plan_compaction(&self) -> Vec<RegionMove> {
        let mut shadow = self.clone();
        let mut moves = Vec::new();
        let mut order: Vec<u64> = shadow.leases.keys().copied().collect();
        order.sort_by_key(|id| (shadow.leases[id].base, *id));
        for id in order {
            let lease = shadow.leases[&id].clone();
            if let Some(to) = shadow.find_span(&lease.kinds, Some(id)) {
                if to < lease.base {
                    shadow.apply_move(id, to).expect("span was verified free");
                    moves.push(RegionMove {
                        id,
                        from: lease.base,
                        to,
                    });
                }
            }
        }
        moves
    }

    /// Current fragmentation snapshot.
    pub fn stats(&self) -> FragmentationStats {
        let mut managed = 0u32;
        let mut free = 0u32;
        let mut largest = 0u32;
        let mut run = 0u32;
        for i in 0..self.kinds.len() {
            if !self.managed(i) {
                run = 0;
                continue;
            }
            managed += 1;
            if self.occupancy[i].is_none() {
                free += 1;
                run += 1;
                largest = largest.max(run);
            } else {
                run = 0;
            }
        }
        FragmentationStats {
            managed_columns: managed,
            free_columns: free,
            largest_free_span: largest,
            leases: self.leases.len() as u32,
        }
    }

    /// Resources provided by all live leases (full-height column spans) —
    /// what [`crate::Floorplan::refresh_from_leases`] measures headroom
    /// against.
    pub fn live_resources(&self, device: &Device) -> Resources {
        let per_row: Resources = self
            .leases
            .values()
            .flat_map(|l| l.kinds.iter())
            .map(|k| k.resources_per_row())
            .sum();
        per_row * device.rows() as u64
    }

    fn occupy(&mut self, base: u32, pattern: &[ColumnKind]) -> RegionLease {
        let id = self.next_id;
        self.next_id += 1;
        for col in base..base + pattern.len() as u32 {
            self.occupancy[col as usize] = Some(id);
        }
        let lease = RegionLease {
            id,
            base,
            kinds: pattern.to_vec(),
        };
        self.leases.insert(id, lease.clone());
        lease
    }

    /// Whether `pattern` fits starting at `base`: in bounds, every column
    /// reconfigurable, kind-equal, and free (or owned by `ignore`).
    fn span_matches(&self, base: u32, pattern: &[ColumnKind], ignore: Option<u64>) -> bool {
        let base = base as usize;
        if pattern.is_empty() || base + pattern.len() > self.kinds.len() {
            return false;
        }
        pattern.iter().enumerate().all(|(i, want)| {
            let col = base + i;
            self.managed(col)
                && self.kinds[col] == *want
                && (self.occupancy[col].is_none() || self.occupancy[col] == ignore)
        })
    }

    /// Finds the base of a span for `pattern` under the configured fit
    /// policy, treating `ignore`'s own columns as free.
    fn find_span(&self, pattern: &[ColumnKind], ignore: Option<u64>) -> Option<u32> {
        if pattern.is_empty() {
            return None;
        }
        let candidates =
            (0..self.kinds.len() as u32).filter(|&base| self.span_matches(base, pattern, ignore));
        match self.policy {
            FitPolicy::FirstFit => candidates.min(),
            FitPolicy::BestFit => {
                candidates.min_by_key(|&base| (self.free_run_len(base, ignore), base))
            }
        }
    }

    /// Length of the maximal run of free managed columns containing `base`.
    fn free_run_len(&self, base: u32, ignore: Option<u64>) -> u32 {
        let is_free = |i: usize| {
            self.managed(i) && (self.occupancy[i].is_none() || self.occupancy[i] == ignore)
        };
        let mut start = base as usize;
        while start > 0 && is_free(start - 1) {
            start -= 1;
        }
        let mut end = base as usize;
        while end < self.kinds.len() && is_free(end) {
            end += 1;
        }
        (end - start) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presp_fpga::part::FpgaPart;
    use proptest::prelude::*;

    fn device() -> Device {
        FpgaPart::Vc707.device()
    }

    fn clb(width: usize) -> Vec<ColumnKind> {
        vec![ColumnKind::Clb; width]
    }

    #[test]
    fn allocate_release_roundtrip_frees_every_column() {
        let d = device();
        let mut a = RegionAllocator::new(&d, FitPolicy::FirstFit);
        let before = a.stats();
        let lease = a.allocate(&clb(2)).unwrap();
        assert_eq!(lease.width(), 2);
        assert_eq!(a.stats().free_columns, before.free_columns - 2);
        assert!(a.release(lease.id));
        assert_eq!(a.stats(), before);
        assert!(!a.release(lease.id));
    }

    #[test]
    fn first_fit_takes_the_lowest_clb_span() {
        let d = device();
        let mut a = RegionAllocator::new(&d, FitPolicy::FirstFit);
        let first_clb = (0..d.columns())
            .find(|&i| d.column_kind(i) == ColumnKind::Clb)
            .unwrap() as u32;
        assert_eq!(a.allocate(&clb(1)).unwrap().base, first_clb);
    }

    #[test]
    fn best_fit_prefers_the_tightest_hole() {
        let d = device();
        let mut a = RegionAllocator::new(&d, FitPolicy::BestFit);
        // Carve a width-1 hole: lease a long prefix, then free one column
        // strictly inside it.
        let big = a.allocate(&clb(3)).unwrap();
        let hole = big.base + 1;
        assert!(a.release(big.id));
        let left = a.reserve_at(big.base, &clb(1)).unwrap();
        let right = a.reserve_at(big.base + 2, &clb(1)).unwrap();
        let pick = a.allocate(&clb(1)).unwrap();
        assert_eq!(pick.base, hole, "best fit should take the 1-wide hole");
        drop((left, right));
    }

    #[test]
    fn allocation_respects_column_kinds() {
        let d = device();
        let mut a = RegionAllocator::new(&d, FitPolicy::FirstFit);
        let lease = a.allocate(&[ColumnKind::Bram]).unwrap();
        assert_eq!(d.column_kind(lease.base as usize), ColumnKind::Bram);
        assert!(a.allocate(&[ColumnKind::Cfg]).is_none());
    }

    #[test]
    fn compaction_slides_leases_left_and_heals_fragmentation() {
        let d = device();
        let mut a = RegionAllocator::new(&d, FitPolicy::FirstFit);
        let x = a.allocate(&clb(1)).unwrap();
        let y = a.allocate(&clb(1)).unwrap();
        let z = a.allocate(&clb(1)).unwrap();
        // Free the middle lease: fragmentation appears.
        assert!(a.release(y.id));
        let frag_before = a.stats().external_fragmentation();
        let plan = a.plan_compaction();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].id, z.id);
        assert_eq!(plan[0].to, y.base);
        for m in &plan {
            a.apply_move(m.id, m.to).unwrap();
        }
        assert!(a.stats().external_fragmentation() <= frag_before);
        assert_eq!(a.lease(z.id).unwrap().base, y.base);
        assert_eq!(a.lease(x.id).unwrap().base, x.base);
    }

    #[test]
    fn apply_move_rejects_occupied_or_kind_incompatible_targets() {
        let d = device();
        let mut a = RegionAllocator::new(&d, FitPolicy::FirstFit);
        let x = a.allocate(&clb(1)).unwrap();
        let y = a.allocate(&clb(1)).unwrap();
        assert!(matches!(
            a.apply_move(y.id, x.base),
            Err(Error::BadMove { .. })
        ));
        let bram = (0..d.columns())
            .find(|&i| d.column_kind(i) == ColumnKind::Bram)
            .unwrap() as u32;
        assert!(matches!(
            a.apply_move(y.id, bram),
            Err(Error::BadMove { .. })
        ));
        assert!(matches!(a.apply_move(999, 0), Err(Error::BadMove { .. })));
    }

    #[test]
    fn window_confines_allocation_to_the_pr_share_of_the_fabric() {
        let d = device();
        // Window covering the first two CLB columns and nothing after.
        let clbs: Vec<u32> = (0..d.columns())
            .filter(|&i| d.column_kind(i) == ColumnKind::Clb)
            .map(|i| i as u32)
            .collect();
        let end = clbs[1] + 1;
        let mut a = RegionAllocator::new_within(&d, FitPolicy::FirstFit, clbs[0]..end);
        assert_eq!(a.stats().managed_columns, end - clbs[0]);
        let x = a.allocate(&clb(1)).unwrap();
        assert_eq!(x.base, clbs[0]);
        let y = a.allocate(&clb(1)).unwrap();
        assert!(y.base < end);
        // The window is full; the rest of the fabric is off-limits.
        assert!(a.allocate(&clb(1)).is_none());
        assert!(!a.can_fit(&clb(1)));
        assert!(a.release(x.id));
        assert!(a.can_fit(&clb(1)));
    }

    #[test]
    fn stats_never_count_unmanaged_columns() {
        let d = device();
        let a = RegionAllocator::new(&d, FitPolicy::FirstFit);
        let s = a.stats();
        let reconf = (0..d.columns())
            .filter(|&i| d.column_kind(i).reconfigurable())
            .count() as u32;
        assert_eq!(s.managed_columns, reconf);
        assert_eq!(s.free_columns, reconf);
        assert!(s.largest_free_span <= s.free_columns);
        assert_eq!(s.leases, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Random allocate/release churn never double-books a column, keeps
        /// stats consistent, and compaction preserves every lease's width
        /// and kind pattern while never increasing fragmentation.
        #[test]
        fn churn_preserves_invariants(
            ops in proptest::collection::vec((0u8..3, 1usize..4), 1..60),
        ) {
            let d = device();
            let mut a = RegionAllocator::new(&d, FitPolicy::FirstFit);
            let mut live: Vec<u64> = Vec::new();
            for (op, width) in ops {
                match op {
                    0 | 1 => {
                        if let Some(lease) = a.allocate(&clb(width)) {
                            live.push(lease.id);
                        }
                    }
                    _ => {
                        if !live.is_empty() {
                            let id = live.remove(width % live.len());
                            prop_assert!(a.release(id));
                        }
                    }
                }
                // No column is owned by two leases and occupancy matches
                // the lease table exactly.
                let mut owned = std::collections::BTreeMap::new();
                for lease in a.leases() {
                    for col in lease.columns() {
                        prop_assert!(owned.insert(col, lease.id).is_none());
                    }
                }
                let s = a.stats();
                prop_assert_eq!(s.managed_columns - s.free_columns, owned.len() as u32);
                prop_assert!(s.largest_free_span <= s.free_columns);
            }
            let widths: BTreeMap<u64, Vec<ColumnKind>> =
                a.leases().map(|l| (l.id, l.kinds.clone())).collect();
            let frag_before = a.stats().external_fragmentation();
            for m in a.plan_compaction() {
                a.apply_move(m.id, m.to).unwrap();
            }
            let after: BTreeMap<u64, Vec<ColumnKind>> =
                a.leases().map(|l| (l.id, l.kinds.clone())).collect();
            prop_assert_eq!(widths, after);
            prop_assert!(a.stats().external_fragmentation() <= frag_before + 1e-9);
        }

        /// The allocator is deterministic: the same op sequence produces the
        /// same lease table.
        #[test]
        fn allocation_is_deterministic(
            widths in proptest::collection::vec(1usize..4, 1..12),
        ) {
            let d = device();
            let mut a = RegionAllocator::new(&d, FitPolicy::BestFit);
            let mut b = RegionAllocator::new(&d, FitPolicy::BestFit);
            for w in &widths {
                let la = a.allocate(&clb(*w));
                let lb = b.allocate(&clb(*w));
                prop_assert_eq!(la, lb);
            }
            prop_assert_eq!(a.stats(), b.stats());
        }
    }
}
