//! Error type for floorplanning.

use std::fmt;

/// Errors produced by the floorplanner.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A single request exceeds what the whole device can provide.
    RequestExceedsDevice {
        /// Name of the offending request.
        name: String,
    },
    /// No legal, non-overlapping rectangle can satisfy the request given the
    /// regions already placed.
    NoSpace {
        /// Name of the request that could not be placed.
        name: String,
    },
    /// Two requests share a name; pblocks are keyed by name.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// A region-lease move targets an illegal destination (occupied,
    /// unmanaged, or kind-incompatible columns) or an unknown lease.
    BadMove {
        /// Human-readable description of the illegal move.
        detail: String,
    },
    /// Device-model error (propagated from `presp-fpga`).
    Fabric(presp_fpga::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::RequestExceedsDevice { name } => {
                write!(
                    f,
                    "region '{name}' requires more resources than the device provides"
                )
            }
            Error::NoSpace { name } => write!(f, "no legal placement found for region '{name}'"),
            Error::DuplicateName { name } => write!(f, "duplicate region name '{name}'"),
            Error::BadMove { detail } => write!(f, "illegal region move: {detail}"),
            Error::Fabric(e) => write!(f, "fabric error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Fabric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<presp_fpga::Error> for Error {
    fn from(e: presp_fpga::Error) -> Error {
        Error::Fabric(e)
    }
}
