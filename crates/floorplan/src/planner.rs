//! The FLORA-style best-fit floorplanner.

use crate::error::Error;
use crate::region::RegionAllocator;
use presp_fpga::fabric::Device;
use presp_fpga::pblock::Pblock;
use presp_fpga::resources::Resources;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A reconfigurable region to be floorplanned.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionRequest {
    /// Region name (e.g. the reconfigurable tile's instance name).
    pub name: String,
    /// Post-synthesis resource requirement: the component-wise maximum over
    /// every reconfigurable module that may be loaded into the region.
    pub resources: Resources,
}

impl RegionRequest {
    /// Creates a request.
    pub fn new(name: impl Into<String>, resources: Resources) -> RegionRequest {
        RegionRequest {
            name: name.into(),
            resources,
        }
    }
}

/// Floorplanner tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Target fill of a pblock: the rectangle must provide at least
    /// `required / max_utilization` so the router has slack. Vivado DPR
    /// guidance keeps reconfigurable partitions below ~80 % LUT fill.
    pub max_utilization: f64,
}

impl Default for PlannerConfig {
    fn default() -> PlannerConfig {
        PlannerConfig {
            max_utilization: 0.8,
        }
    }
}

/// The result of floorplanning: one pblock per request plus headroom stats.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    pblocks: BTreeMap<String, Pblock>,
    /// Total LUTs provided by all pblocks minus total LUTs requested.
    wasted_luts: u64,
    /// Resources left for the static part (device minus all pblocks).
    static_headroom: Resources,
    /// Sum of the resources every region requested — kept so the headroom
    /// metrics can be recomputed after regions move at runtime.
    #[serde(default)]
    requested: Resources,
}

impl Floorplan {
    /// The placed pblocks, keyed by region name.
    pub fn pblocks(&self) -> &BTreeMap<String, Pblock> {
        &self.pblocks
    }

    /// The pblock placed for `name`.
    pub fn pblock(&self, name: &str) -> Option<&Pblock> {
        self.pblocks.get(name)
    }

    /// LUTs provisioned beyond what was requested (packing quality metric).
    pub fn wasted_luts(&self) -> u64 {
        self.wasted_luts
    }

    /// Resources remaining outside every pblock, available to the static
    /// part.
    pub fn static_headroom(&self) -> Resources {
        self.static_headroom
    }

    /// Recomputes [`Floorplan::wasted_luts`] and
    /// [`Floorplan::static_headroom`] against the *live* region leases of a
    /// running allocator instead of the static pblock grid.
    ///
    /// The plan-time numbers are measured against the rectangles this plan
    /// placed; once the runtime moves or resizes regions (amorphous
    /// floorplanning) those rectangles no longer describe what the fabric
    /// actually provides, and the static-grid numbers silently drift from
    /// the truth. Call this after any lease change to keep them honest.
    pub fn refresh_from_leases(&mut self, device: &Device, allocator: &RegionAllocator) {
        let provided = allocator.live_resources(device);
        self.wasted_luts = provided.lut.saturating_sub(self.requested.lut);
        self.static_headroom = device.total_resources().saturating_sub(&provided);
    }
}

/// Deterministic best-fit DPR floorplanner.
#[derive(Debug, Clone)]
pub struct Floorplanner {
    device: Device,
    config: PlannerConfig,
}

impl Floorplanner {
    /// Creates a floorplanner with default configuration.
    pub fn new(device: &Device) -> Floorplanner {
        Floorplanner {
            device: device.clone(),
            config: PlannerConfig::default(),
        }
    }

    /// Creates a floorplanner with explicit configuration.
    pub fn with_config(device: &Device, config: PlannerConfig) -> Floorplanner {
        Floorplanner {
            device: device.clone(),
            config,
        }
    }

    /// Floorplans all requests.
    ///
    /// Requests are placed in descending LUT order (largest first — the
    /// standard bin-packing heuristic); each is assigned the legal,
    /// non-overlapping rectangle that wastes the fewest LUTs, with area as
    /// the tie-breaker.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DuplicateName`] for repeated names,
    /// [`Error::RequestExceedsDevice`] when a single request cannot fit the
    /// device even empty, and [`Error::NoSpace`] when placement fails due to
    /// fragmentation or earlier placements.
    pub fn floorplan(&self, requests: &[RegionRequest]) -> Result<Floorplan, Error> {
        let mut seen = std::collections::BTreeSet::new();
        for r in requests {
            if !seen.insert(&r.name) {
                return Err(Error::DuplicateName {
                    name: r.name.clone(),
                });
            }
        }

        let mut order: Vec<&RegionRequest> = requests.iter().collect();
        order.sort_by(|a, b| {
            b.resources
                .lut
                .cmp(&a.resources.lut)
                .then(a.name.cmp(&b.name))
        });

        let device_total = self.device.total_resources();
        let mut placed: Vec<Pblock> = Vec::new();
        let mut pblocks = BTreeMap::new();
        let mut provided_luts = 0u64;
        let mut requested_luts = 0u64;
        let mut provided_total = Resources::ZERO;
        let mut requested_total = Resources::ZERO;

        for request in order {
            let need = request
                .resources
                .scale_ceil(1.0 / self.config.max_utilization);
            if !need.fits_in(&device_total) {
                return Err(Error::RequestExceedsDevice {
                    name: request.name.clone(),
                });
            }
            let pblock = self
                .best_rectangle(&need, &placed)
                .ok_or_else(|| Error::NoSpace {
                    name: request.name.clone(),
                })?;
            let capacity = self.device.pblock_resources(&pblock)?;
            provided_luts += capacity.lut;
            requested_luts += request.resources.lut;
            provided_total += capacity;
            requested_total += request.resources;
            placed.push(pblock);
            pblocks.insert(request.name.clone(), pblock);
        }

        Ok(Floorplan {
            pblocks,
            wasted_luts: provided_luts.saturating_sub(requested_luts),
            static_headroom: device_total.saturating_sub(&provided_total),
            requested: requested_total,
        })
    }

    /// Enumerates legal candidate rectangles and returns the one wasting the
    /// fewest LUTs (area tie-break, then top-left position for determinism).
    fn best_rectangle(&self, need: &Resources, placed: &[Pblock]) -> Option<Pblock> {
        let rows = self.device.rows();
        let cols = self.device.columns();
        let mut best: Option<(u64, usize, Pblock)> = None;

        for row_span in 1..=rows {
            for row_start in 0..=(rows - row_span) {
                for col_start in 0..cols {
                    // Grow the column span until the rectangle satisfies the
                    // requirement, hits an illegal column, the edge, or an
                    // existing pblock.
                    let mut acc = Resources::ZERO;
                    for col_end in (col_start + 1)..=cols {
                        let col = col_end - 1;
                        if !self.device.column_kind(col).reconfigurable() {
                            break;
                        }
                        let candidate =
                            Pblock::new(col_start, col_end, row_start, row_start + row_span)
                                .expect("non-empty by construction");
                        if placed.iter().any(|p| p.overlaps(&candidate)) {
                            break;
                        }
                        acc += self.device.column_kind(col).resources_per_row() * row_span as u64;
                        if need.fits_in(&acc) {
                            let waste = acc.lut - need.lut.min(acc.lut);
                            let area = candidate.area();
                            let better = match &best {
                                None => true,
                                Some((bw, ba, _)) => (waste, area) < (*bw, *ba),
                            };
                            if better {
                                best = Some((waste, area, candidate));
                            }
                            break; // wider rectangles only waste more
                        }
                    }
                }
            }
            // Prefer the shortest rectangle that fits: if any candidate was
            // found at this row span, taller spans only increase waste.
            if best.is_some() {
                break;
            }
        }
        best.map(|(_, _, p)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presp_fpga::part::FpgaPart;
    use proptest::prelude::*;

    fn device() -> Device {
        FpgaPart::Vc707.device()
    }

    fn check_plan(device: &Device, requests: &[RegionRequest], plan: &Floorplan, util: f64) {
        let pblocks: Vec<Pblock> = plan.pblocks().values().copied().collect();
        Pblock::check_disjoint(&pblocks).expect("pblocks are disjoint");
        for request in requests {
            let pb = plan.pblock(&request.name).expect("every request is placed");
            device.validate_pblock(pb).expect("pblock is legal");
            let cap = device.pblock_resources(pb).unwrap();
            let need = request.resources.scale_ceil(1.0 / util);
            assert!(need.fits_in(&cap), "{}: need {need} in {cap}", request.name);
        }
    }

    #[test]
    fn places_single_small_region() {
        let d = device();
        let reqs = vec![RegionRequest::new(
            "rt0",
            Resources::new(2_450, 3_150, 2, 5),
        )];
        let plan = Floorplanner::new(&d).floorplan(&reqs).unwrap();
        check_plan(&d, &reqs, &plan, 0.8);
        // A MAC-sized region should fit in a single clock-region row.
        assert_eq!(plan.pblock("rt0").unwrap().row_span(), 1);
    }

    #[test]
    fn places_wami_sized_regions() {
        let d = device();
        let reqs = vec![
            RegionRequest::new("rt0", Resources::new(34_000, 44_500, 40, 72)),
            RegionRequest::new("rt1", Resources::new(30_000, 39_100, 16, 84)),
            RegionRequest::new("rt2", Resources::new(24_000, 31_300, 16, 60)),
            RegionRequest::new("rt3", Resources::new(21_500, 28_000, 8, 36)),
        ];
        let plan = Floorplanner::new(&d).floorplan(&reqs).unwrap();
        check_plan(&d, &reqs, &plan, 0.8);
        // The static part must keep meaningful headroom (CPU+MEM+AUX need
        // ~85k LUTs).
        assert!(
            plan.static_headroom().lut > 85_000,
            "headroom {}",
            plan.static_headroom()
        );
    }

    #[test]
    fn rejects_duplicate_names() {
        let d = device();
        let reqs = vec![
            RegionRequest::new("rt", Resources::luts(100)),
            RegionRequest::new("rt", Resources::luts(200)),
        ];
        assert_eq!(
            Floorplanner::new(&d).floorplan(&reqs),
            Err(Error::DuplicateName { name: "rt".into() })
        );
    }

    #[test]
    fn rejects_impossible_request() {
        let d = device();
        let reqs = vec![RegionRequest::new("huge", Resources::luts(10_000_000))];
        assert_eq!(
            Floorplanner::new(&d).floorplan(&reqs),
            Err(Error::RequestExceedsDevice {
                name: "huge".into()
            })
        );
    }

    #[test]
    fn fails_cleanly_when_device_is_full() {
        let d = device();
        // Twelve 80k-LUT regions cannot coexist on a 300k device at 80 % fill.
        let reqs: Vec<RegionRequest> = (0..12)
            .map(|i| RegionRequest::new(format!("rt{i}"), Resources::luts(80_000)))
            .collect();
        match Floorplanner::new(&d).floorplan(&reqs) {
            Err(Error::NoSpace { .. }) => {}
            other => panic!("expected NoSpace, got {other:?}"),
        }
    }

    #[test]
    fn utilization_margin_grows_pblocks() {
        let d = device();
        let reqs = vec![RegionRequest::new("rt", Resources::luts(20_000))];
        let tight = Floorplanner::with_config(
            &d,
            PlannerConfig {
                max_utilization: 1.0,
            },
        )
        .floorplan(&reqs)
        .unwrap();
        let slack = Floorplanner::with_config(
            &d,
            PlannerConfig {
                max_utilization: 0.5,
            },
        )
        .floorplan(&reqs)
        .unwrap();
        let cap = |p: &Floorplan| d.pblock_resources(p.pblock("rt").unwrap()).unwrap().lut;
        assert!(cap(&slack) >= 2 * reqs[0].resources.lut);
        assert!(cap(&tight) < cap(&slack));
    }

    #[test]
    fn headroom_metrics_track_live_leases_not_the_static_grid() {
        use crate::region::FitPolicy;
        use presp_fpga::fabric::ColumnKind;

        let d = device();
        let reqs = vec![RegionRequest::new("rt0", Resources::luts(2_000))];
        let mut plan = Floorplanner::new(&d).floorplan(&reqs).unwrap();
        let static_waste = plan.wasted_luts();
        let static_headroom = plan.static_headroom();

        // At runtime the region was grown to a two-column CLB lease, not
        // the planner's rectangle: 2 × 400 LUT/row × 7 rows = 5 600
        // provided.
        let mut alloc = RegionAllocator::new(&d, FitPolicy::FirstFit);
        alloc.allocate(&[ColumnKind::Clb, ColumnKind::Clb]).unwrap();
        plan.refresh_from_leases(&d, &alloc);
        assert_eq!(plan.wasted_luts(), 5_600 - 2_000);
        assert_eq!(
            plan.static_headroom(),
            d.total_resources()
                .saturating_sub(&alloc.live_resources(&d))
        );
        // The stale static-grid numbers really were different — the bug this
        // refresh fixes.
        assert_ne!(plan.wasted_luts(), static_waste);
        assert_ne!(plan.static_headroom(), static_headroom);
    }

    #[test]
    fn floorplan_is_deterministic() {
        let d = device();
        let reqs = vec![
            RegionRequest::new("a", Resources::luts(15_000)),
            RegionRequest::new("b", Resources::luts(15_000)),
            RegionRequest::new("c", Resources::luts(9_000)),
        ];
        let p1 = Floorplanner::new(&d).floorplan(&reqs).unwrap();
        let p2 = Floorplanner::new(&d).floorplan(&reqs).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn equal_requests_get_equal_capacity() {
        let d = device();
        let reqs = vec![
            RegionRequest::new("x", Resources::luts(10_000)),
            RegionRequest::new("y", Resources::luts(10_000)),
        ];
        let plan = Floorplanner::new(&d).floorplan(&reqs).unwrap();
        let cx = d.pblock_resources(plan.pblock("x").unwrap()).unwrap();
        let cy = d.pblock_resources(plan.pblock("y").unwrap()).unwrap();
        assert_eq!(cx.lut, cy.lut);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn plans_are_always_legal(
            luts in proptest::collection::vec(1_000u64..45_000, 1..6),
            util in 0.6f64..0.95,
        ) {
            let d = device();
            let reqs: Vec<RegionRequest> = luts
                .iter()
                .enumerate()
                .map(|(i, &l)| RegionRequest::new(format!("rt{i}"), Resources::new(l, l * 13 / 10, l / 700, l / 400)))
                .collect();
            let planner = Floorplanner::with_config(&d, PlannerConfig { max_utilization: util });
            match planner.floorplan(&reqs) {
                Ok(plan) => check_plan(&d, &reqs, &plan, util),
                Err(Error::NoSpace { .. }) => {} // acceptable: fragmentation
                Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e}"))),
            }
        }
    }
}
