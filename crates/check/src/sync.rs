//! Shim synchronization primitives, API-compatible with the `std::sync`
//! subset the PR-ESP runtime uses.
//!
//! Every operation (lock, wait, notify, send, recv, spawn, join, atomic
//! access) is a *schedule point*: the calling logical thread yields to the
//! cooperative scheduler, which decides who runs next. These types only
//! work inside [`crate::Checker::explore`] / [`crate::Checker::replay`];
//! constructing one outside a model panics.
//!
//! Blocking follows the modeled semantics, not wall-clock time: a
//! [`Condvar::wait_timeout`] "times out" only at quiescence (no untimed
//! thread runnable), i.e. the timeout is modeled as long relative to all
//! other activity.

use crate::scheduler::{Execution, Tid, TryRecvOutcome};
use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::Mutex as StdMutex;
use std::sync::PoisonError;
use std::time::Duration;

pub use std::sync::atomic::Ordering;
pub use std::sync::Arc;

// ---- Mutex ------------------------------------------------------------

/// A model-checked mutual-exclusion lock.
///
/// Give protocol locks stable labels via [`Mutex::labeled`]: the
/// lock-order graph is keyed by label, so labeled locks aggregate cleanly
/// across schedules and show up readably in cycle reports.
pub struct Mutex<T> {
    id: usize,
    data: UnsafeCell<T>,
}

// Exclusion is enforced by the scheduler (single holder, single active
// thread), so sharing the UnsafeCell across model threads is sound.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// A new anonymous mutex (label `mutex#<id>`).
    pub fn new(value: T) -> Mutex<T> {
        Mutex::labeled("mutex", value)
    }

    /// A new mutex with a stable label for lock-order reporting.
    pub fn labeled(label: &str, value: T) -> Mutex<T> {
        let (exec, _) = Execution::current();
        Mutex {
            id: exec.mutex_create(label),
            data: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock, yielding to the scheduler first.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let (exec, me) = Execution::current();
        exec.mutex_lock(self.id);
        MutexGuard {
            mutex: self,
            tid: me,
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").field("id", &self.id).finish()
    }
}

/// Holds a [`Mutex`]; releasing is a silent (non-yielding) operation.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    tid: Tid,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Sound: this thread is the registered holder.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((exec, _)) = Execution::try_current() {
            exec.mutex_unlock(self.mutex.id, self.tid);
        }
    }
}

// ---- Condvar ----------------------------------------------------------

/// A model-checked condition variable.
///
/// `notify_one` is modeled as `notify_all`: condvar waits may wake
/// spuriously by contract, so waking every waiter only explores legal
/// behaviors — and flushes out protocols that depend on exactly-one wake.
pub struct Condvar {
    id: usize,
}

impl Condvar {
    /// A new condition variable.
    pub fn new() -> Condvar {
        let (exec, _) = Execution::current();
        Condvar {
            id: exec.condvar_create(),
        }
    }

    /// Atomically releases the guard's mutex and waits for a notification.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let (exec, me) = Execution::current();
        let mutex = guard.mutex;
        std::mem::forget(guard); // release is done inside condvar_wait
        exec.condvar_wait(self.id, mutex.id, false);
        MutexGuard { mutex, tid: me }
    }

    /// Like [`Condvar::wait`] but also wakeable by timeout. Returns the
    /// re-acquired guard and whether the wake was a timeout. The duration
    /// is ignored: the timeout fires only when no untimed thread can run.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        _timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (exec, me) = Execution::current();
        let mutex = guard.mutex;
        std::mem::forget(guard);
        let timed_out = exec.condvar_wait(self.id, mutex.id, true);
        (MutexGuard { mutex, tid: me }, timed_out)
    }

    /// Wakes one waiter (modeled as wake-all; see the type docs).
    pub fn notify_one(&self) {
        let (exec, _) = Execution::current();
        exec.condvar_notify(self.id, false);
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        let (exec, _) = Execution::current();
        exec.condvar_notify(self.id, true);
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

// ---- mpsc channel -----------------------------------------------------

/// The send half of an unbounded model-checked channel.
pub struct Sender<T> {
    chan: usize,
    _marker: PhantomData<fn(T)>,
}

/// The receive half of a model-checked channel.
pub struct Receiver<T> {
    chan: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender").field("chan", &self.chan).finish()
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver")
            .field("chan", &self.chan)
            .finish()
    }
}

/// Sending failed because the receiver was dropped; returns the value.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Receiving failed because every sender was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Outcome of a non-blocking receive attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message queued (yet).
    Empty,
    /// No message queued and every sender is gone.
    Disconnected,
}

/// A new unbounded channel (the model analogue of `std::sync::mpsc`).
pub fn channel<T: Send + 'static>() -> (Sender<T>, Receiver<T>) {
    let (exec, _) = Execution::current();
    let chan = exec.channel_create();
    (
        Sender {
            chan,
            _marker: PhantomData,
        },
        Receiver {
            chan,
            _marker: PhantomData,
        },
    )
}

impl<T: Send + 'static> Sender<T> {
    /// Queues `value`; never blocks. Fails if the receiver was dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let (exec, _) = Execution::current();
        exec.channel_send(self.chan, Box::new(value))
            .map_err(|b| SendError(*b.downcast::<T>().expect("channel value type")))
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        if let Some((exec, _)) = Execution::try_current() {
            exec.sender_clone(self.chan);
        }
        Sender {
            chan: self.chan,
            _marker: PhantomData,
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if let Some((exec, _)) = Execution::try_current() {
            exec.sender_drop(self.chan);
        }
    }
}

impl<T: Send + 'static> Receiver<T> {
    /// Blocks until a message arrives or all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let (exec, _) = Execution::current();
        match exec.channel_recv(self.chan) {
            Some(b) => Ok(*b.downcast::<T>().expect("channel value type")),
            None => Err(RecvError),
        }
    }

    /// Non-blocking receive (still a schedule point).
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let (exec, _) = Execution::current();
        match exec.channel_try_recv(self.chan) {
            TryRecvOutcome::Value(b) => Ok(*b.downcast::<T>().expect("channel value type")),
            TryRecvOutcome::Empty => Err(TryRecvError::Empty),
            TryRecvOutcome::Disconnected => Err(TryRecvError::Disconnected),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if let Some((exec, _)) = Execution::try_current() {
            exec.receiver_drop(self.chan);
        }
    }
}

// ---- threads ----------------------------------------------------------

/// Handle to a spawned logical thread.
pub struct JoinHandle<T> {
    tid: Tid,
    slot: Arc<StdMutex<Option<T>>>,
}

/// The joined thread did not produce a value (it panicked; the checker
/// reports the panic as the execution's failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinError;

impl<T> JoinHandle<T> {
    /// Blocks until the thread finishes and returns its value.
    pub fn join(self) -> Result<T, JoinError> {
        let (exec, _) = Execution::current();
        exec.thread_join(self.tid);
        self.slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .ok_or(JoinError)
    }
}

/// Spawns a logical thread running `f` under the scheduler.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    spawn_named("", f)
}

/// Like [`spawn`], with a thread name for failure reports.
pub fn spawn_named<T, F>(name: &str, f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (exec, me) = Execution::current();
    exec.yield_point(me);
    let tid = exec.register_thread(me, name);
    let slot: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
    let slot2 = Arc::clone(&slot);
    exec.spawn_os_thread(tid, move || {
        let value = f();
        *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
    });
    JoinHandle { tid, slot }
}

/// An explicit schedule point with no other effect.
pub fn yield_now() {
    let (exec, me) = Execution::current();
    exec.yield_point(me);
}

// ---- atomics ----------------------------------------------------------

macro_rules! model_atomic {
    ($name:ident, $ty:ty) => {
        /// Model-checked atomic, all orderings treated as `SeqCst` (every
        /// access is a full synchronization edge — conservative for race
        /// detection, like a lock-per-access).
        pub struct $name(Mutex<$ty>);

        impl $name {
            /// A new atomic with the given initial value.
            pub fn new(value: $ty) -> $name {
                $name(Mutex::labeled("atomic", value))
            }

            /// Atomic load.
            pub fn load(&self, _order: Ordering) -> $ty {
                *self.0.lock()
            }

            /// Atomic store.
            pub fn store(&self, value: $ty, _order: Ordering) {
                *self.0.lock() = value;
            }

            /// Atomic swap, returning the previous value.
            pub fn swap(&self, value: $ty, _order: Ordering) -> $ty {
                let mut g = self.0.lock();
                std::mem::replace(&mut *g, value)
            }

            /// Atomic compare-exchange.
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$ty, $ty> {
                let mut g = self.0.lock();
                if *g == current {
                    *g = new;
                    Ok(current)
                } else {
                    Err(*g)
                }
            }
        }
    };
}

model_atomic!(AtomicBool, bool);
model_atomic!(AtomicUsize, usize);
model_atomic!(AtomicU64, u64);

macro_rules! model_atomic_add {
    ($name:ident, $ty:ty) => {
        impl $name {
            /// Atomic wrapping add, returning the previous value.
            pub fn fetch_add(&self, value: $ty, _order: Ordering) -> $ty {
                let mut g = self.0.lock();
                let old = *g;
                *g = old.wrapping_add(value);
                old
            }
        }
    };
}

model_atomic_add!(AtomicUsize, usize);
model_atomic_add!(AtomicU64, u64);
