//! The sync facade: one trait, two worlds.
//!
//! Protocol code written against [`SyncFacade`] compiles twice — against
//! [`StdSync`] (real `std::sync` primitives) for production, and against
//! [`CheckSync`] (the instrumented shims in [`crate::sync`]) for model
//! checking. The *same* source implements the shipped runtime and the
//! checked model, so exploration results apply to the code that runs.
//!
//! The facade is deliberately the narrow waist the PR-ESP runtime needs:
//! labeled mutexes (labels feed the lock-order graph), condvars with timed
//! waits, an mpsc channel, and spawn/join. `lock_recover` is the
//! poison-tolerant acquisition used on read-only post-mortem paths; under
//! [`CheckSync`] it is identical to `lock` (a model panic fails the whole
//! execution instead of poisoning).

use crate::sync as shim;
use std::ops::DerefMut;
use std::sync::PoisonError;
use std::time::Duration;

/// Outcome of a facade-level non-blocking receive.
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecv<T> {
    /// A message was available.
    Value(T),
    /// No message queued (yet).
    Empty,
    /// No message queued and every sender is gone.
    Disconnected,
}

/// Family of synchronization primitives the runtime is generic over.
pub trait SyncFacade: Sized + Send + Sync + 'static {
    /// Mutual-exclusion lock around `T`.
    type Mutex<T: Send + 'static>: Send + Sync + 'static;
    /// RAII guard for [`SyncFacade::Mutex`].
    type Guard<'a, T: Send + 'static>: DerefMut<Target = T>;
    /// Condition variable paired with [`SyncFacade::Mutex`].
    type Condvar: Send + Sync + 'static;
    /// Send half of an unbounded mpsc channel.
    type Sender<T: Send + 'static>: Send + 'static;
    /// Receive half of an unbounded mpsc channel.
    type Receiver<T: Send + 'static>: Send + 'static;
    /// Handle to a spawned thread producing `T`.
    type JoinHandle<T: Send + 'static>: Send + 'static;

    /// A new anonymous mutex.
    fn mutex<T: Send + 'static>(value: T) -> Self::Mutex<T> {
        Self::mutex_labeled("mutex", value)
    }
    /// A new mutex with a stable label for lock-order reporting.
    fn mutex_labeled<T: Send + 'static>(label: &'static str, value: T) -> Self::Mutex<T>;
    /// Acquires the lock; panics on poisoning (a crashed critical section
    /// on a path that must not silently continue).
    fn lock<'a, T: Send + 'static>(mutex: &'a Self::Mutex<T>) -> Self::Guard<'a, T>;
    /// Acquires the lock, recovering from poisoning — for read-only /
    /// post-mortem paths that must survive a worker crash.
    fn lock_recover<'a, T: Send + 'static>(mutex: &'a Self::Mutex<T>) -> Self::Guard<'a, T>;

    /// A new condition variable.
    fn condvar() -> Self::Condvar;
    /// Releases the guard, waits for a notification, re-acquires.
    fn wait<'a, T: Send + 'static>(
        cv: &Self::Condvar,
        guard: Self::Guard<'a, T>,
    ) -> Self::Guard<'a, T>;
    /// Like [`SyncFacade::wait`] with a timeout; the `bool` is whether the
    /// wake was a timeout. Under [`CheckSync`] the duration is modeled as
    /// long relative to all other activity (fires only at quiescence).
    fn wait_timeout<'a, T: Send + 'static>(
        cv: &Self::Condvar,
        guard: Self::Guard<'a, T>,
        timeout: Duration,
    ) -> (Self::Guard<'a, T>, bool);
    /// Wakes one waiter (possibly more: spurious wakeups are allowed).
    fn notify_one(cv: &Self::Condvar);
    /// Wakes every waiter.
    fn notify_all(cv: &Self::Condvar);

    /// A new unbounded mpsc channel.
    fn channel<T: Send + 'static>() -> (Self::Sender<T>, Self::Receiver<T>);
    /// Clones the send half.
    fn clone_sender<T: Send + 'static>(tx: &Self::Sender<T>) -> Self::Sender<T>;
    /// Queues a message; `Err` returns the value if the receiver is gone.
    fn send<T: Send + 'static>(tx: &Self::Sender<T>, value: T) -> Result<(), T>;
    /// Blocks for the next message; `None` when all senders are gone.
    fn recv<T: Send + 'static>(rx: &Self::Receiver<T>) -> Option<T>;
    /// Non-blocking receive.
    fn try_recv<T: Send + 'static>(rx: &Self::Receiver<T>) -> TryRecv<T>;

    /// Spawns a named thread.
    fn spawn<T, F>(name: &str, f: F) -> Self::JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static;
    /// Joins a thread; `Err` if it panicked.
    fn join<T: Send + 'static>(handle: Self::JoinHandle<T>) -> Result<T, crate::sync::JoinError>;
    /// Cedes the processor (a schedule point under [`CheckSync`]).
    fn yield_now();
    /// Stalls the calling thread for roughly `duration` — the doorway
    /// fault injection uses to model slow workers. Under [`CheckSync`]
    /// this is just a schedule point: the model has no wall clock, so a
    /// stall degenerates to a yield and the explorer covers every
    /// interleaving a real delay could produce.
    fn stall(duration: Duration) {
        let _ = duration;
        Self::yield_now();
    }
    /// Whether the calling thread is unwinding from a panic. Cleanup
    /// guards (the scheduler's claim guard) branch on this to heal
    /// shared state from a dying worker. Under [`CheckSync`] a panic
    /// fails the whole model, so the healing branch is never reached
    /// during exploration — panic recovery is exercised on the
    /// production facade, hang recovery under the model.
    fn panicking() -> bool {
        std::thread::panicking()
    }
}

/// Production facade: plain `std::sync` / `std::thread`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdSync;

impl SyncFacade for StdSync {
    type Mutex<T: Send + 'static> = std::sync::Mutex<T>;
    type Guard<'a, T: Send + 'static> = std::sync::MutexGuard<'a, T>;
    type Condvar = std::sync::Condvar;
    type Sender<T: Send + 'static> = std::sync::mpsc::Sender<T>;
    type Receiver<T: Send + 'static> = std::sync::mpsc::Receiver<T>;
    type JoinHandle<T: Send + 'static> = std::thread::JoinHandle<T>;

    fn mutex_labeled<T: Send + 'static>(_label: &'static str, value: T) -> Self::Mutex<T> {
        std::sync::Mutex::new(value)
    }

    fn lock<'a, T: Send + 'static>(mutex: &'a Self::Mutex<T>) -> Self::Guard<'a, T> {
        mutex.lock().expect("mutex poisoned")
    }

    fn lock_recover<'a, T: Send + 'static>(mutex: &'a Self::Mutex<T>) -> Self::Guard<'a, T> {
        mutex.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn condvar() -> Self::Condvar {
        std::sync::Condvar::new()
    }

    fn wait<'a, T: Send + 'static>(
        cv: &Self::Condvar,
        guard: Self::Guard<'a, T>,
    ) -> Self::Guard<'a, T> {
        cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    fn wait_timeout<'a, T: Send + 'static>(
        cv: &Self::Condvar,
        guard: Self::Guard<'a, T>,
        timeout: Duration,
    ) -> (Self::Guard<'a, T>, bool) {
        match cv.wait_timeout(guard, timeout) {
            Ok((guard, result)) => (guard, result.timed_out()),
            Err(poisoned) => {
                let (guard, result) = poisoned.into_inner();
                (guard, result.timed_out())
            }
        }
    }

    fn notify_one(cv: &Self::Condvar) {
        cv.notify_one();
    }

    fn notify_all(cv: &Self::Condvar) {
        cv.notify_all();
    }

    fn channel<T: Send + 'static>() -> (Self::Sender<T>, Self::Receiver<T>) {
        std::sync::mpsc::channel()
    }

    fn clone_sender<T: Send + 'static>(tx: &Self::Sender<T>) -> Self::Sender<T> {
        tx.clone()
    }

    fn send<T: Send + 'static>(tx: &Self::Sender<T>, value: T) -> Result<(), T> {
        tx.send(value).map_err(|e| e.0)
    }

    fn recv<T: Send + 'static>(rx: &Self::Receiver<T>) -> Option<T> {
        rx.recv().ok()
    }

    fn try_recv<T: Send + 'static>(rx: &Self::Receiver<T>) -> TryRecv<T> {
        match rx.try_recv() {
            Ok(value) => TryRecv::Value(value),
            Err(std::sync::mpsc::TryRecvError::Empty) => TryRecv::Empty,
            Err(std::sync::mpsc::TryRecvError::Disconnected) => TryRecv::Disconnected,
        }
    }

    fn spawn<T, F>(name: &str, f: F) -> Self::JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let builder = if name.is_empty() {
            std::thread::Builder::new()
        } else {
            std::thread::Builder::new().name(name.to_string())
        };
        builder.spawn(f).expect("spawn thread")
    }

    fn join<T: Send + 'static>(handle: Self::JoinHandle<T>) -> Result<T, crate::sync::JoinError> {
        handle.join().map_err(|_| crate::sync::JoinError)
    }

    fn yield_now() {
        std::thread::yield_now();
    }

    fn stall(duration: Duration) {
        std::thread::sleep(duration);
    }
}

/// Model-checking facade: the instrumented shims in [`crate::sync`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckSync;

impl SyncFacade for CheckSync {
    type Mutex<T: Send + 'static> = shim::Mutex<T>;
    type Guard<'a, T: Send + 'static> = shim::MutexGuard<'a, T>;
    type Condvar = shim::Condvar;
    type Sender<T: Send + 'static> = shim::Sender<T>;
    type Receiver<T: Send + 'static> = shim::Receiver<T>;
    type JoinHandle<T: Send + 'static> = shim::JoinHandle<T>;

    fn mutex_labeled<T: Send + 'static>(label: &'static str, value: T) -> Self::Mutex<T> {
        shim::Mutex::labeled(label, value)
    }

    fn lock<'a, T: Send + 'static>(mutex: &'a Self::Mutex<T>) -> Self::Guard<'a, T> {
        mutex.lock()
    }

    fn lock_recover<'a, T: Send + 'static>(mutex: &'a Self::Mutex<T>) -> Self::Guard<'a, T> {
        // No poisoning in the model: a panic fails the whole execution.
        mutex.lock()
    }

    fn condvar() -> Self::Condvar {
        shim::Condvar::new()
    }

    fn wait<'a, T: Send + 'static>(
        cv: &Self::Condvar,
        guard: Self::Guard<'a, T>,
    ) -> Self::Guard<'a, T> {
        cv.wait(guard)
    }

    fn wait_timeout<'a, T: Send + 'static>(
        cv: &Self::Condvar,
        guard: Self::Guard<'a, T>,
        timeout: Duration,
    ) -> (Self::Guard<'a, T>, bool) {
        cv.wait_timeout(guard, timeout)
    }

    fn notify_one(cv: &Self::Condvar) {
        cv.notify_one();
    }

    fn notify_all(cv: &Self::Condvar) {
        cv.notify_all();
    }

    fn channel<T: Send + 'static>() -> (Self::Sender<T>, Self::Receiver<T>) {
        shim::channel()
    }

    fn clone_sender<T: Send + 'static>(tx: &Self::Sender<T>) -> Self::Sender<T> {
        tx.clone()
    }

    fn send<T: Send + 'static>(tx: &Self::Sender<T>, value: T) -> Result<(), T> {
        tx.send(value).map_err(|e| e.0)
    }

    fn recv<T: Send + 'static>(rx: &Self::Receiver<T>) -> Option<T> {
        rx.recv().ok()
    }

    fn try_recv<T: Send + 'static>(rx: &Self::Receiver<T>) -> TryRecv<T> {
        match rx.try_recv() {
            Ok(value) => TryRecv::Value(value),
            Err(shim::TryRecvError::Empty) => TryRecv::Empty,
            Err(shim::TryRecvError::Disconnected) => TryRecv::Disconnected,
        }
    }

    fn spawn<T, F>(name: &str, f: F) -> Self::JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        shim::spawn_named(name, f)
    }

    fn join<T: Send + 'static>(handle: Self::JoinHandle<T>) -> Result<T, crate::sync::JoinError> {
        handle.join()
    }

    fn yield_now() {
        shim::yield_now();
    }

    fn panicking() -> bool {
        // Always false under the checker. A real model panic fails the
        // execution (the checker reports it), and the checker also
        // unwinds blocked threads with its own control-flow panic when a
        // schedule aborts — a cleanup guard that re-entered the scheduler
        // during that unwind would turn every reported failure into a
        // process abort.
        false
    }
}
