//! `presp-check`: deterministic concurrency checking for the PR-ESP
//! runtime, in the spirit of `loom`.
//!
//! A concurrent protocol is written once against the [`SyncFacade`]
//! trait. In production it instantiates [`StdSync`] (plain `std::sync`);
//! under test it instantiates [`CheckSync`], whose primitives yield to a
//! cooperative scheduler at every acquisition / signal / send / spawn
//! point. [`Checker::explore`] then runs the model under every schedule
//! in a bounded depth-first enumeration (with preemption bounding, as in
//! CHESS), checking each execution for:
//!
//! - **deadlocks** — no runnable thread, unfinished threads remain;
//! - **data races** — vector-clock happens-before analysis over
//!   [`RaceCell`] accesses;
//! - **panics** — any model thread panicking fails the execution;
//! - **livelocks** — a per-execution step budget;
//! - **lock-order cycles** — an acquired-while-holding graph accumulated
//!   across *all* explored schedules, reporting potential deadlocks even
//!   when no explored schedule actually deadlocked.
//!
//! Every failure carries a dot-separated *schedule string*; feeding it to
//! [`Checker::replay`] re-runs exactly the failing interleaving — a
//! deterministic reproducer for a concurrency bug.
//!
//! ```
//! use presp_check::{sync, Checker, Config};
//!
//! let checker = Checker::new(Config { max_schedules: 100, ..Config::default() });
//! let report = checker.explore(|| {
//!     let counter = sync::Arc::new(sync::Mutex::new(0u32));
//!     let c = sync::Arc::clone(&counter);
//!     let h = sync::spawn(move || *c.lock() += 1);
//!     *counter.lock() += 1;
//!     h.join().unwrap();
//!     assert_eq!(*counter.lock(), 2);
//! });
//! assert!(report.ok(), "{report}");
//! ```
//!
//! # Model contract
//!
//! The closure passed to [`Checker::explore`] is run once per schedule
//! and must be deterministic apart from scheduling: create all model
//! state (threads, locks, channels, cells) fresh inside the closure, do
//! not read wall-clock time or OS randomness, and route all cross-thread
//! communication through the shim primitives. Timed condvar waits are
//! modeled as *quiescently timed*: the timeout fires only when no untimed
//! thread is runnable, i.e. timeouts are long relative to all other
//! activity (this keeps retry loops finite and the schedule space
//! bounded).

#![warn(missing_docs)]

mod lockorder;
mod race;
mod report;
mod scheduler;
mod vc;

pub mod facade;
pub mod sync;

pub use facade::{CheckSync, StdSync, SyncFacade, TryRecv};
pub use lockorder::LockOrderGraph;
pub use race::RaceCell;
pub use report::{Failure, FailureKind, Report};
pub use scheduler::{Checker, Config};
pub use vc::VClock;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    fn small_checker() -> Checker {
        Checker::new(Config {
            max_schedules: 2_000,
            preemption_bound: Some(2),
            max_steps: 10_000,
        })
    }

    #[test]
    fn mutex_counter_is_clean_and_exhausts() {
        let report = small_checker().explore(|| {
            let counter = Arc::new(Mutex::new(0u32));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&counter);
                    sync::spawn(move || *c.lock() += 1)
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*counter.lock(), 2);
        });
        assert!(report.ok(), "{report}");
        assert!(report.exhausted, "tiny model should exhaust: {report}");
        assert!(report.schedules > 1, "must explore interleavings");
    }

    fn racy_body() {
        let cell = Arc::new(RaceCell::new("shared", 0u32));
        let c = Arc::clone(&cell);
        let h = sync::spawn(move || {
            let v = c.read();
            c.write(v + 1);
        });
        let v = cell.read();
        cell.write(v + 1);
        let _ = h.join();
    }

    #[test]
    fn detects_unsynchronized_race_and_replays_it() {
        let report = small_checker().explore(racy_body);
        let failure = report.failure.expect("race must be found");
        assert!(
            matches!(failure.kind, FailureKind::Race { .. }),
            "expected race, got: {failure}"
        );
        // The schedule string replays the identical failure.
        let replay = small_checker().replay(&failure.schedule, racy_body);
        assert_eq!(
            replay.failure.as_ref().map(|f| &f.kind),
            Some(&failure.kind),
            "replay must reproduce: {replay}"
        );
    }

    fn inversion_body() {
        let a = Arc::new(Mutex::labeled("A", ()));
        let b = Arc::new(Mutex::labeled("B", ()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let h = sync::spawn(move || {
            let _gb = b2.lock();
            let _ga = a2.lock();
        });
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        let _ = h.join();
    }

    #[test]
    fn detects_lock_order_inversion_deadlock_and_cycle() {
        let report = small_checker().explore(inversion_body);
        let failure = report.failure.expect("deadlock must be found");
        assert!(
            matches!(failure.kind, FailureKind::Deadlock { .. }),
            "expected deadlock, got: {failure}"
        );
        let replay = small_checker().replay(&failure.schedule, inversion_body);
        assert!(
            matches!(
                replay.failure.as_ref().map(|f| &f.kind),
                Some(FailureKind::Deadlock { .. })
            ),
            "replay must deadlock: {replay}"
        );
    }

    #[test]
    fn lock_cycle_reported_even_without_deadlocking_schedule() {
        // One thread takes A then B, then (after the first pair is
        // released) B then A: no schedule deadlocks, but the accumulated
        // lock-order graph has the A/B cycle.
        let report = small_checker().explore(|| {
            let a = Mutex::labeled("A", ());
            let b = Mutex::labeled("B", ());
            {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            {
                let _gb = b.lock();
                let _ga = a.lock();
            }
        });
        assert!(report.failure.is_none(), "{report}");
        assert_eq!(
            report.lock_cycles,
            vec![vec!["A".to_string(), "B".to_string()]]
        );
        assert!(!report.ok());
    }

    #[test]
    fn condvar_handoff_is_clean() {
        let report = small_checker().explore(|| {
            let pair = Arc::new((Mutex::labeled("flag", false), Condvar::new()));
            let p = Arc::clone(&pair);
            let h = sync::spawn(move || {
                let (m, cv) = &*p;
                *m.lock() = true;
                cv.notify_all();
            });
            let (m, cv) = &*pair;
            let mut flag = m.lock();
            while !*flag {
                flag = cv.wait(flag);
            }
            drop(flag);
            h.join().unwrap();
        });
        assert!(report.ok(), "{report}");
        assert!(report.exhausted, "{report}");
    }

    #[test]
    fn timed_wait_fires_only_at_quiescence() {
        // The setter never notifies; only the (quiescent) timeout lets the
        // waiter observe the flag. A real `wait` here would deadlock.
        let report = small_checker().explore(|| {
            let pair = Arc::new((Mutex::labeled("flag", false), Condvar::new()));
            let p = Arc::clone(&pair);
            let h = sync::spawn(move || {
                *p.0.lock() = true; // stealth update, no notify
            });
            let (m, cv) = &*pair;
            let mut flag = m.lock();
            while !*flag {
                let (g, _timed_out) = cv.wait_timeout(flag, Duration::from_millis(50));
                flag = g;
            }
            drop(flag);
            h.join().unwrap();
        });
        assert!(report.ok(), "{report}");
    }

    #[test]
    fn channel_request_reply_and_disconnect() {
        let report = small_checker().explore(|| {
            let (tx, rx) = sync::channel::<(u32, sync::Sender<u32>)>();
            let worker = sync::spawn_named("worker", move || {
                while let Ok((n, reply)) = rx.recv() {
                    let _ = reply.send(n * 2);
                }
            });
            for n in 0..2u32 {
                let (rtx, rrx) = sync::channel();
                tx.send((n, rtx)).unwrap();
                assert_eq!(rrx.recv(), Ok(n * 2));
            }
            drop(tx); // disconnect: worker's recv errors and it exits
            worker.join().unwrap();
        });
        assert!(report.ok(), "{report}");
    }

    #[test]
    fn atomics_synchronize() {
        let report = small_checker().explore(|| {
            let n = Arc::new(sync::AtomicU64::new(0));
            let n2 = Arc::clone(&n);
            let h = sync::spawn(move || {
                n2.fetch_add(1, sync::Ordering::SeqCst);
            });
            n.fetch_add(1, sync::Ordering::SeqCst);
            h.join().unwrap();
            assert_eq!(n.load(sync::Ordering::SeqCst), 2);
        });
        assert!(report.ok(), "{report}");
    }

    #[test]
    fn panic_in_model_is_reported_with_schedule() {
        let report = small_checker().explore(|| {
            let h = sync::spawn_named("boom", || panic!("kaboom"));
            let _ = h.join();
        });
        let failure = report.failure.expect("panic must be reported");
        match &failure.kind {
            FailureKind::Panic { thread, message } => {
                assert_eq!(thread, "boom");
                assert!(message.contains("kaboom"));
            }
            other => panic!("expected panic failure, got {other}"),
        }
    }

    #[test]
    fn livelock_hits_step_limit() {
        let checker = Checker::new(Config {
            max_schedules: 5,
            preemption_bound: Some(0),
            max_steps: 200,
        });
        let report = checker.explore(|| loop {
            sync::yield_now();
        });
        assert!(
            matches!(
                report.failure.as_ref().map(|f| &f.kind),
                Some(FailureKind::StepLimit { .. })
            ),
            "{report}"
        );
    }

    #[test]
    fn preemption_bound_caps_the_schedule_space() {
        let body = || {
            let m = Arc::new(Mutex::new(0u32));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    sync::spawn(move || {
                        for _ in 0..3 {
                            *m.lock() += 1;
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
        };
        let bounded = Checker::new(Config {
            max_schedules: 100_000,
            preemption_bound: Some(1),
            max_steps: 10_000,
        })
        .explore(body);
        let unbounded = Checker::new(Config {
            max_schedules: 100_000,
            preemption_bound: None,
            max_steps: 10_000,
        })
        .explore(body);
        assert!(bounded.ok() && unbounded.ok());
        assert!(bounded.exhausted && unbounded.exhausted);
        assert!(
            bounded.schedules < unbounded.schedules,
            "bound must prune: {} vs {}",
            bounded.schedules,
            unbounded.schedules
        );
    }

    #[test]
    fn replay_divergence_is_detected() {
        let report = small_checker().replay("0.0.7.0", || {
            let h = sync::spawn(|| ());
            h.join().unwrap();
        });
        assert!(
            matches!(
                report.failure.as_ref().map(|f| &f.kind),
                Some(FailureKind::ReplayDivergence { .. })
            ),
            "{report}"
        );
    }
}
