//! Vector clocks for happens-before tracking.
//!
//! Each logical thread carries a [`VClock`]; synchronization objects
//! (mutexes, condvars, channel messages) carry snapshot clocks that are
//! joined into the clocks of threads they synchronize with. Two accesses
//! are ordered iff the clock of the earlier one is ≤ the clock of the
//! later one; unordered accesses to the same location are a data race.

/// A vector clock, indexed by logical thread id.
///
/// Missing components are zero, so clocks grow lazily as threads spawn.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// The zero clock.
    pub fn new() -> VClock {
        VClock::default()
    }

    /// Component for thread `tid`.
    pub fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Advances `tid`'s own component (a local step).
    pub fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    /// Componentwise maximum: afterwards `self` dominates both inputs.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    /// Whether `self` happened-before-or-equals `other` (every component
    /// is ≤). Unordered clocks (`!a.le(b) && !b.le(a)`) mean concurrency.
    pub fn le(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(i, &v)| v <= other.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_join_le() {
        let mut a = VClock::new();
        let mut b = VClock::new();
        a.tick(0);
        b.tick(1);
        assert!(!a.le(&b) && !b.le(&a), "independent ticks are unordered");
        b.join(&a);
        assert!(a.le(&b));
        assert_eq!(b.get(0), 1);
        assert_eq!(b.get(1), 1);
        assert!(VClock::new().le(&a), "zero clock precedes everything");
    }
}
