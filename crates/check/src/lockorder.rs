//! Lock-order graph with cycle detection.
//!
//! Every time a thread acquires lock `b` while holding lock `a`, the edge
//! `a → b` is recorded (keyed by lock *label*, so the graph accumulates
//! across executions — labels are stable, per-execution lock ids are not).
//! A cycle in the accumulated graph means two code paths acquire the same
//! locks in conflicting orders: a potential deadlock, reported even when
//! no explored schedule actually deadlocked.

use std::collections::{BTreeMap, BTreeSet};

/// The accumulated acquired-while-holding relation.
#[derive(Debug, Clone, Default)]
pub struct LockOrderGraph {
    edges: BTreeMap<String, BTreeSet<String>>,
}

impl LockOrderGraph {
    /// An empty graph.
    pub fn new() -> LockOrderGraph {
        LockOrderGraph::default()
    }

    /// Records that `inner` was acquired while `outer` was held.
    /// Self-edges (re-entrant shapes) are kept: they are cycles too.
    pub fn add_edge(&mut self, outer: &str, inner: &str) {
        self.edges
            .entry(outer.to_string())
            .or_default()
            .insert(inner.to_string());
    }

    /// All recorded edges as `(outer, inner)` pairs, sorted.
    pub fn edges(&self) -> Vec<(String, String)> {
        self.edges
            .iter()
            .flat_map(|(a, bs)| bs.iter().map(move |b| (a.clone(), b.clone())))
            .collect()
    }

    /// Cycles in the graph: every strongly connected component with more
    /// than one lock, plus self-loops. Each cycle is the sorted list of
    /// participating lock labels.
    pub fn cycles(&self) -> Vec<Vec<String>> {
        // Tarjan's SCC over the (small) label graph.
        let nodes: Vec<&String> = self.edges.keys().collect();
        let index_of: BTreeMap<&str, usize> = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let mut state = Tarjan {
            graph: self,
            nodes: &nodes,
            index_of: &index_of,
            index: 0,
            indices: vec![None; nodes.len()],
            lowlink: vec![0; nodes.len()],
            on_stack: vec![false; nodes.len()],
            stack: Vec::new(),
            sccs: Vec::new(),
        };
        for v in 0..nodes.len() {
            if state.indices[v].is_none() {
                state.strongconnect(v);
            }
        }
        let mut cycles = Vec::new();
        for scc in state.sccs {
            let is_cycle = scc.len() > 1
                || self
                    .edges
                    .get(nodes[scc[0]].as_str())
                    .is_some_and(|bs| bs.contains(nodes[scc[0]].as_str()));
            if is_cycle {
                let mut labels: Vec<String> = scc.iter().map(|&v| nodes[v].clone()).collect();
                labels.sort();
                cycles.push(labels);
            }
        }
        cycles.sort();
        cycles
    }
}

struct Tarjan<'a> {
    graph: &'a LockOrderGraph,
    nodes: &'a [&'a String],
    index_of: &'a BTreeMap<&'a str, usize>,
    index: usize,
    indices: Vec<Option<usize>>,
    lowlink: Vec<usize>,
    on_stack: Vec<bool>,
    stack: Vec<usize>,
    sccs: Vec<Vec<usize>>,
}

impl Tarjan<'_> {
    fn strongconnect(&mut self, v: usize) {
        self.indices[v] = Some(self.index);
        self.lowlink[v] = self.index;
        self.index += 1;
        self.stack.push(v);
        self.on_stack[v] = true;
        let succs: Vec<usize> = self
            .graph
            .edges
            .get(self.nodes[v].as_str())
            .map(|bs| {
                bs.iter()
                    .filter_map(|b| self.index_of.get(b.as_str()).copied())
                    .collect()
            })
            .unwrap_or_default();
        for w in succs {
            if self.indices[w].is_none() {
                self.strongconnect(w);
                self.lowlink[v] = self.lowlink[v].min(self.lowlink[w]);
            } else if self.on_stack[w] {
                self.lowlink[v] = self.lowlink[v].min(self.indices[w].unwrap());
            }
        }
        if Some(self.lowlink[v]) == self.indices[v] {
            let mut scc = Vec::new();
            while let Some(w) = self.stack.pop() {
                self.on_stack[w] = false;
                scc.push(w);
                if w == v {
                    break;
                }
            }
            self.sccs.push(scc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_order_has_no_cycle() {
        let mut g = LockOrderGraph::new();
        g.add_edge("a", "b");
        g.add_edge("b", "c");
        g.add_edge("a", "c");
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn inversion_is_a_cycle() {
        let mut g = LockOrderGraph::new();
        g.add_edge("manager", "worker");
        g.add_edge("worker", "manager");
        assert_eq!(
            g.cycles(),
            vec![vec!["manager".to_string(), "worker".to_string()]]
        );
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = LockOrderGraph::new();
        g.add_edge("m", "m");
        assert_eq!(g.cycles(), vec![vec!["m".to_string()]]);
    }
}
