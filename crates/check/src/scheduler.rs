//! The cooperative scheduler and bounded-DFS schedule explorer.
//!
//! A model (a closure using the [`crate::sync`] shim primitives) is run
//! many times. Each run is one *schedule*: at every shim operation the
//! running logical thread yields to the scheduler, which deterministically
//! picks the next thread to run from a decision prefix. After each run the
//! explorer backtracks depth-first to the deepest decision with an untried
//! alternative — subject to a preemption bound — and replays. Failures
//! (deadlock, data race, panic, livelock) carry a dot-separated schedule
//! string that replays the failing run exactly.
//!
//! Logical threads are real OS threads, but exactly one runs at a time:
//! every cross-thread handoff goes through one mutex/condvar pair, so the
//! model's memory accesses are genuinely data-race-free in the host
//! process and all modeled nondeterminism is in the decision sequence.
//! Timed condvar waits are *quiescently fair*: the timeout only fires at
//! points where no untimed thread is runnable — modeling timeouts that are
//! long relative to scheduling, which keeps retry loops bounded.

use crate::lockorder::LockOrderGraph;
use crate::report::{Failure, FailureKind, Report};
use crate::vc::VClock;
use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Logical thread id within one execution.
pub(crate) type Tid = usize;

/// Exploration bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Maximum schedules to execute before stopping (the wall-clock
    /// budget knob: schedules are explored depth-first until this cap or
    /// exhaustion of the bounded space).
    pub max_schedules: usize,
    /// Maximum preemptive context switches per schedule (`None` =
    /// unbounded). A switch away from a thread that could have continued
    /// is a preemption; forced switches (the thread blocked) are free.
    /// Most concurrency bugs manifest within two preemptions.
    pub preemption_bound: Option<u32>,
    /// Per-schedule step budget; exceeding it reports a livelock.
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            max_schedules: 10_000,
            preemption_bound: Some(2),
            max_steps: 50_000,
        }
    }
}

/// Panic payload used to unwind model threads when an execution aborts.
struct Abort;

/// Silences the default panic hook for [`Abort`] unwinds (they are the
/// checker's own control flow, not errors). Real model panics still go
/// through the previous hook. Installed once per process.
fn silence_abort_panics() {
    static INSTALLED: std::sync::OnceLock<()> = std::sync::OnceLock::new();
    INSTALLED.get_or_init(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<Abort>().is_none() {
                previous(info);
            }
        }));
    });
}

thread_local! {
    static CONTEXT: RefCell<Option<(Arc<Execution>, Tid)>> = const { RefCell::new(None) };
}

/// Runs `f` with the thread-local execution context set.
fn with_context<R>(exec: &Arc<Execution>, tid: Tid, f: impl FnOnce() -> R) -> R {
    CONTEXT.with(|c| *c.borrow_mut() = Some((Arc::clone(exec), tid)));
    let r = f();
    CONTEXT.with(|c| *c.borrow_mut() = None);
    r
}

/// How a logical thread is (or is not) runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    Runnable,
    BlockedLock(usize),
    BlockedCondvar { cv: usize, timed: bool },
    BlockedRecv(usize),
    BlockedJoin(Tid),
    Finished,
}

#[derive(Debug)]
struct ThreadState {
    status: Status,
    clock: VClock,
    /// Lock ids currently held, in acquisition order.
    held: Vec<usize>,
    /// Set when the scheduler woke this thread by firing its timed wait.
    timed_out: bool,
    name: String,
}

#[derive(Debug)]
struct LockState {
    label: String,
    holder: Option<Tid>,
    clock: VClock,
}

#[derive(Debug)]
struct CvState {
    clock: VClock,
    waiters: Vec<Tid>,
}

struct ChannelState {
    queue: VecDeque<(Box<dyn Any + Send>, VClock)>,
    senders: usize,
    receiver_alive: bool,
}

#[derive(Debug)]
struct CellState {
    label: String,
    last_write: Option<(Tid, VClock)>,
    reads: Vec<(Tid, VClock)>,
}

/// The outcome of `try_recv` through the shim channel.
pub(crate) enum TryRecvOutcome<T> {
    Value(T),
    Empty,
    Disconnected,
}

/// One scheduling decision, as recorded during a run.
#[derive(Debug, Clone)]
pub(crate) struct Decision {
    pub enabled: Vec<Tid>,
    pub current: Tid,
    pub chosen: Tid,
}

struct ExecState {
    threads: Vec<ThreadState>,
    active: Tid,
    steps: usize,
    prefix: Vec<Tid>,
    decisions: Vec<Decision>,
    locks: Vec<LockState>,
    condvars: Vec<CvState>,
    channels: Vec<ChannelState>,
    cells: Vec<CellState>,
    failure: Option<FailureKind>,
    done: bool,
    os_handles: Vec<std::thread::JoinHandle<()>>,
    lock_order: Arc<Mutex<LockOrderGraph>>,
}

impl ExecState {
    /// Threads the scheduler may run next: all `Runnable` threads, or —
    /// only when none exist — threads in timed waits (firing the timeout).
    fn enabled(&self) -> Vec<Tid> {
        let runnable: Vec<Tid> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if !runnable.is_empty() {
            return runnable;
        }
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.status, Status::BlockedCondvar { timed: true, .. }))
            .map(|(i, _)| i)
            .collect()
    }

    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.status == Status::Finished)
    }

    fn deadlock_waiting(&self) -> Vec<String> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status != Status::Finished)
            .map(|(i, t)| {
                let what = match t.status {
                    Status::BlockedLock(l) => format!("lock '{}'", self.locks[l].label),
                    Status::BlockedCondvar { cv, .. } => format!("condvar #{cv}"),
                    Status::BlockedRecv(c) => format!("recv on channel #{c}"),
                    Status::BlockedJoin(j) => format!("join of t{j}"),
                    Status::Runnable | Status::Finished => "nothing".to_string(),
                };
                let held: Vec<&str> = t
                    .held
                    .iter()
                    .map(|&l| self.locks[l].label.as_str())
                    .collect();
                format!(
                    "t{i}('{}') waiting on {what}, holding [{}]",
                    t.name,
                    held.join(", ")
                )
            })
            .collect()
    }

    fn decide(&mut self, me: Tid, enabled: &[Tid]) -> Result<Tid, FailureKind> {
        let idx = self.decisions.len();
        let chosen = if idx < self.prefix.len() {
            let c = self.prefix[idx];
            if !enabled.contains(&c) {
                return Err(FailureKind::ReplayDivergence {
                    detail: format!(
                        "decision {idx}: t{c} not enabled (enabled: {enabled:?}) — \
                         the model must be deterministic apart from scheduling"
                    ),
                });
            }
            c
        } else if enabled.contains(&me) {
            // Default policy: keep running the current thread. Alternatives
            // (the preemptions) are introduced by backtracking.
            me
        } else {
            enabled[0]
        };
        self.decisions.push(Decision {
            enabled: enabled.to_vec(),
            current: me,
            chosen,
        });
        Ok(chosen)
    }
}

/// One execution ("schedule") of the model, shared between its OS threads.
pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
    config: Config,
}

impl Execution {
    fn new(config: Config, prefix: Vec<Tid>, lock_order: Arc<Mutex<LockOrderGraph>>) -> Execution {
        Execution {
            state: Mutex::new(ExecState {
                threads: vec![ThreadState {
                    status: Status::Runnable,
                    clock: VClock::new(),
                    held: Vec::new(),
                    timed_out: false,
                    name: "main".to_string(),
                }],
                active: 0,
                steps: 0,
                prefix,
                decisions: Vec::new(),
                locks: Vec::new(),
                condvars: Vec::new(),
                channels: Vec::new(),
                cells: Vec::new(),
                failure: None,
                done: false,
                os_handles: Vec::new(),
                lock_order,
            }),
            cv: Condvar::new(),
            config,
        }
    }

    /// The calling OS thread's execution context; panics outside a model.
    pub(crate) fn current() -> (Arc<Execution>, Tid) {
        Execution::try_current()
            .expect("presp-check shim primitive used outside Checker::explore / Checker::replay")
    }

    pub(crate) fn try_current() -> Option<(Arc<Execution>, Tid)> {
        CONTEXT.with(|c| c.borrow().clone())
    }

    fn lock_state(&self) -> MutexGuard<'_, ExecState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Records a failure and wakes everyone; the execution is over.
    fn set_failure(&self, st: &mut ExecState, kind: FailureKind) {
        if st.failure.is_none() {
            st.failure = Some(kind);
        }
        st.done = true;
    }

    /// Aborts the calling model thread (unwinds to its wrapper).
    fn abort(&self) -> ! {
        self.cv.notify_all();
        panic::panic_any(Abort);
    }

    /// Picks the next thread to run. On return either `st.done` is set or
    /// `st.active` names the chosen (now runnable) thread.
    fn advance(&self, st: &mut ExecState, me: Tid) {
        st.steps += 1;
        if st.steps > self.config.max_steps {
            self.set_failure(
                st,
                FailureKind::StepLimit {
                    steps: self.config.max_steps,
                },
            );
            return;
        }
        let enabled = st.enabled();
        if enabled.is_empty() {
            if st.all_finished() {
                st.done = true;
            } else {
                let waiting = st.deadlock_waiting();
                self.set_failure(st, FailureKind::Deadlock { waiting });
            }
            return;
        }
        match st.decide(me, &enabled) {
            Ok(chosen) => {
                // Firing a timed wait: the chosen thread wakes by timeout,
                // with no happens-before edge from any notifier.
                if let Status::BlockedCondvar { cv, timed: true } = st.threads[chosen].status {
                    st.threads[chosen].timed_out = true;
                    st.threads[chosen].status = Status::Runnable;
                    st.condvars[cv].waiters.retain(|&w| w != chosen);
                }
                st.active = chosen;
            }
            Err(kind) => self.set_failure(st, kind),
        }
    }

    /// Parks the calling thread until it is scheduled again (or the
    /// execution fails, in which case it unwinds).
    fn park(&self, me: Tid, mut st: MutexGuard<'_, ExecState>) {
        loop {
            if st.failure.is_some() {
                drop(st);
                self.abort();
            }
            if st.active == me && st.threads[me].status == Status::Runnable {
                return;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// A plain schedule point: yield, let the scheduler pick who runs.
    pub(crate) fn yield_point(self: &Arc<Self>, me: Tid) {
        let mut st = self.lock_state();
        if st.failure.is_some() {
            drop(st);
            self.abort();
        }
        self.advance(&mut st, me);
        self.cv.notify_all();
        self.park(me, st);
    }

    /// Blocks the calling thread with `status` until another thread makes
    /// it runnable and the scheduler picks it.
    fn block(self: &Arc<Self>, me: Tid, status: Status) {
        let mut st = self.lock_state();
        if st.failure.is_some() {
            drop(st);
            self.abort();
        }
        st.threads[me].status = status;
        self.advance(&mut st, me);
        self.cv.notify_all();
        self.park(me, st);
    }

    /// Marks the calling thread finished and schedules a successor.
    fn retire(self: &Arc<Self>, me: Tid) {
        let mut st = self.lock_state();
        if st.done {
            drop(st);
            self.cv.notify_all();
            return;
        }
        st.threads[me].status = Status::Finished;
        for t in 0..st.threads.len() {
            if st.threads[t].status == Status::BlockedJoin(me) {
                st.threads[t].status = Status::Runnable;
            }
        }
        self.advance(&mut st, me);
        drop(st);
        self.cv.notify_all();
    }

    fn record_panic(self: &Arc<Self>, me: Tid, message: String) {
        let mut st = self.lock_state();
        let thread = st.threads[me].name.clone();
        self.set_failure(&mut st, FailureKind::Panic { thread, message });
        drop(st);
        self.cv.notify_all();
    }

    // ---- mutexes ------------------------------------------------------

    pub(crate) fn mutex_create(self: &Arc<Self>, label: &str) -> usize {
        let mut st = self.lock_state();
        let id = st.locks.len();
        let label = if label == "mutex" || label == "atomic" {
            format!("{label}#{id}")
        } else {
            label.to_string()
        };
        st.locks.push(LockState {
            label,
            holder: None,
            clock: VClock::new(),
        });
        id
    }

    pub(crate) fn mutex_lock(self: &Arc<Self>, id: usize) {
        let (_, me) = Execution::current();
        self.yield_point(me);
        loop {
            {
                let mut st = self.lock_state();
                if st.failure.is_some() {
                    drop(st);
                    self.abort();
                }
                if st.locks[id].holder.is_none() {
                    st.locks[id].holder = Some(me);
                    let lock_clock = st.locks[id].clock.clone();
                    st.threads[me].clock.join(&lock_clock);
                    // Lock-order edges: `id` acquired while holding `held`.
                    let held = st.threads[me].held.clone();
                    if !held.is_empty() {
                        let inner = st.locks[id].label.clone();
                        let graph = Arc::clone(&st.lock_order);
                        let mut graph = graph
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        for h in held {
                            graph.add_edge(&st.locks[h].label.clone(), &inner);
                        }
                    }
                    st.threads[me].held.push(id);
                    return;
                }
            }
            self.block(me, Status::BlockedLock(id));
        }
    }

    pub(crate) fn mutex_unlock(self: &Arc<Self>, id: usize, me: Tid) {
        let mut st = self.lock_state();
        if st.failure.is_some() || st.done {
            return;
        }
        if st.locks[id].holder != Some(me) {
            // Unlock during an unwind that never completed the acquire.
            return;
        }
        st.locks[id].holder = None;
        st.threads[me].held.retain(|&l| l != id);
        let thread_clock = st.threads[me].clock.clone();
        st.locks[id].clock.join(&thread_clock);
        st.threads[me].clock.tick(me);
        for t in 0..st.threads.len() {
            if st.threads[t].status == Status::BlockedLock(id) {
                st.threads[t].status = Status::Runnable;
            }
        }
        // No yield: the next schedule point of any thread can pick the
        // woken waiters; local computation after an unlock is invisible.
    }

    // ---- condvars -----------------------------------------------------

    pub(crate) fn condvar_create(self: &Arc<Self>) -> usize {
        let mut st = self.lock_state();
        let id = st.condvars.len();
        st.condvars.push(CvState {
            clock: VClock::new(),
            waiters: Vec::new(),
        });
        id
    }

    /// Releases `mutex`, waits on `cv`, re-acquires `mutex`. Returns
    /// whether the wake was a timeout (`timed` waits only).
    pub(crate) fn condvar_wait(self: &Arc<Self>, cv: usize, mutex: usize, timed: bool) -> bool {
        let (_, me) = Execution::current();
        {
            let mut st = self.lock_state();
            if st.failure.is_some() {
                drop(st);
                self.abort();
            }
            // Atomic wait-and-release (no other thread runs in between:
            // exactly one logical thread is ever active).
            st.locks[mutex].holder = None;
            st.threads[me].held.retain(|&l| l != mutex);
            let thread_clock = st.threads[me].clock.clone();
            st.locks[mutex].clock.join(&thread_clock);
            st.threads[me].clock.tick(me);
            for t in 0..st.threads.len() {
                if st.threads[t].status == Status::BlockedLock(mutex) {
                    st.threads[t].status = Status::Runnable;
                }
            }
            st.threads[me].timed_out = false;
            st.condvars[cv].waiters.push(me);
        }
        self.block(me, Status::BlockedCondvar { cv, timed });
        let timed_out = {
            let mut st = self.lock_state();
            std::mem::take(&mut st.threads[me].timed_out)
        };
        self.relock(mutex, me);
        timed_out
    }

    /// Re-acquires `mutex` after a condvar wake, without an extra entry
    /// yield (the wake itself was the schedule point).
    fn relock(self: &Arc<Self>, mutex: usize, me: Tid) {
        loop {
            {
                let mut st = self.lock_state();
                if st.failure.is_some() {
                    drop(st);
                    self.abort();
                }
                if st.locks[mutex].holder.is_none() {
                    st.locks[mutex].holder = Some(me);
                    let lock_clock = st.locks[mutex].clock.clone();
                    st.threads[me].clock.join(&lock_clock);
                    st.threads[me].held.push(mutex);
                    return;
                }
            }
            self.block(me, Status::BlockedLock(mutex));
        }
    }

    pub(crate) fn condvar_notify(self: &Arc<Self>, cv: usize, _all: bool) {
        let (_, me) = Execution::current();
        self.yield_point(me);
        let mut st = self.lock_state();
        if st.failure.is_some() {
            drop(st);
            self.abort();
        }
        let thread_clock = st.threads[me].clock.clone();
        st.condvars[cv].clock.join(&thread_clock);
        st.threads[me].clock.tick(me);
        // `notify_one` is modeled as notify-all: condvar waits may wake
        // spuriously by contract, so waking extra threads only explores
        // legal behaviors (and every protocol must tolerate them).
        let waiters = std::mem::take(&mut st.condvars[cv].waiters);
        let cv_clock = st.condvars[cv].clock.clone();
        for w in waiters {
            st.threads[w].status = Status::Runnable;
            st.threads[w].timed_out = false;
            st.threads[w].clock.join(&cv_clock);
        }
    }

    // ---- channels -----------------------------------------------------

    pub(crate) fn channel_create(self: &Arc<Self>) -> usize {
        let mut st = self.lock_state();
        let id = st.channels.len();
        st.channels.push(ChannelState {
            queue: VecDeque::new(),
            senders: 1,
            receiver_alive: true,
        });
        id
    }

    pub(crate) fn channel_send(
        self: &Arc<Self>,
        chan: usize,
        value: Box<dyn Any + Send>,
    ) -> Result<(), Box<dyn Any + Send>> {
        let (_, me) = Execution::current();
        self.yield_point(me);
        let mut st = self.lock_state();
        if st.failure.is_some() {
            drop(st);
            self.abort();
        }
        if !st.channels[chan].receiver_alive {
            return Err(value);
        }
        let snapshot = st.threads[me].clock.clone();
        st.channels[chan].queue.push_back((value, snapshot));
        st.threads[me].clock.tick(me);
        for t in 0..st.threads.len() {
            if st.threads[t].status == Status::BlockedRecv(chan) {
                st.threads[t].status = Status::Runnable;
            }
        }
        Ok(())
    }

    pub(crate) fn channel_recv(self: &Arc<Self>, chan: usize) -> Option<Box<dyn Any + Send>> {
        let (_, me) = Execution::current();
        self.yield_point(me);
        loop {
            {
                let mut st = self.lock_state();
                if st.failure.is_some() {
                    drop(st);
                    self.abort();
                }
                if let Some((value, clock)) = st.channels[chan].queue.pop_front() {
                    st.threads[me].clock.join(&clock);
                    return Some(value);
                }
                if st.channels[chan].senders == 0 {
                    return None;
                }
            }
            self.block(me, Status::BlockedRecv(chan));
        }
    }

    pub(crate) fn channel_try_recv(
        self: &Arc<Self>,
        chan: usize,
    ) -> TryRecvOutcome<Box<dyn Any + Send>> {
        let (_, me) = Execution::current();
        self.yield_point(me);
        let mut st = self.lock_state();
        if st.failure.is_some() {
            drop(st);
            self.abort();
        }
        if let Some((value, clock)) = st.channels[chan].queue.pop_front() {
            st.threads[me].clock.join(&clock);
            return TryRecvOutcome::Value(value);
        }
        if st.channels[chan].senders == 0 {
            TryRecvOutcome::Disconnected
        } else {
            TryRecvOutcome::Empty
        }
    }

    pub(crate) fn sender_clone(self: &Arc<Self>, chan: usize) {
        let mut st = self.lock_state();
        st.channels[chan].senders += 1;
    }

    pub(crate) fn sender_drop(self: &Arc<Self>, chan: usize) {
        let mut st = self.lock_state();
        if st.done {
            return;
        }
        st.channels[chan].senders = st.channels[chan].senders.saturating_sub(1);
        if st.channels[chan].senders == 0 {
            // Wake a blocked receiver so it can observe disconnection.
            for t in 0..st.threads.len() {
                if st.threads[t].status == Status::BlockedRecv(chan) {
                    st.threads[t].status = Status::Runnable;
                }
            }
        }
    }

    pub(crate) fn receiver_drop(self: &Arc<Self>, chan: usize) {
        let mut st = self.lock_state();
        if st.done {
            return;
        }
        st.channels[chan].receiver_alive = false;
    }

    // ---- race-checked cells -------------------------------------------

    pub(crate) fn cell_create(self: &Arc<Self>, label: &str) -> usize {
        let mut st = self.lock_state();
        let id = st.cells.len();
        let label = if label == "cell" {
            format!("cell#{id}")
        } else {
            label.to_string()
        };
        st.cells.push(CellState {
            label,
            last_write: None,
            reads: Vec::new(),
        });
        id
    }

    pub(crate) fn cell_read(self: &Arc<Self>, id: usize) {
        let (_, me) = Execution::current();
        self.yield_point(me);
        let mut st = self.lock_state();
        if st.failure.is_some() {
            drop(st);
            self.abort();
        }
        if let Some((writer, write_clock)) = &st.cells[id].last_write {
            if *writer != me && !write_clock.le(&st.threads[me].clock) {
                let kind = FailureKind::Race {
                    cell: st.cells[id].label.clone(),
                    access: format!("read by t{me} concurrent with write by t{writer}"),
                };
                self.set_failure(&mut st, kind);
                drop(st);
                self.abort();
            }
        }
        let clock = st.threads[me].clock.clone();
        st.cells[id].reads.push((me, clock));
    }

    pub(crate) fn cell_write(self: &Arc<Self>, id: usize) {
        let (_, me) = Execution::current();
        self.yield_point(me);
        let mut st = self.lock_state();
        if st.failure.is_some() {
            drop(st);
            self.abort();
        }
        let my_clock = st.threads[me].clock.clone();
        let conflict = match &st.cells[id].last_write {
            Some((writer, wc)) if *writer != me && !wc.le(&my_clock) => {
                Some(format!("write by t{me} concurrent with write by t{writer}"))
            }
            _ => st.cells[id].reads.iter().find_map(|(reader, rc)| {
                (*reader != me && !rc.le(&my_clock))
                    .then(|| format!("write by t{me} concurrent with read by t{reader}"))
            }),
        };
        if let Some(access) = conflict {
            let kind = FailureKind::Race {
                cell: st.cells[id].label.clone(),
                access,
            };
            self.set_failure(&mut st, kind);
            drop(st);
            self.abort();
        }
        st.cells[id].reads.clear();
        st.cells[id].last_write = Some((me, my_clock));
    }

    // ---- threads ------------------------------------------------------

    /// Registers a new logical thread (spawn happens-before its body).
    pub(crate) fn register_thread(self: &Arc<Self>, parent: Tid, name: &str) -> Tid {
        let mut st = self.lock_state();
        let tid = st.threads.len();
        // Snapshot before the tick: the child inherits everything up to
        // the spawn, while the parent's *later* events stay concurrent.
        let mut clock = st.threads[parent].clock.clone();
        clock.tick(tid);
        st.threads[parent].clock.tick(parent);
        let name = if name.is_empty() {
            format!("t{tid}")
        } else {
            name.to_string()
        };
        st.threads.push(ThreadState {
            status: Status::Runnable,
            clock,
            held: Vec::new(),
            timed_out: false,
            name,
        });
        tid
    }

    pub(crate) fn add_os_handle(self: &Arc<Self>, handle: std::thread::JoinHandle<()>) {
        self.lock_state().os_handles.push(handle);
    }

    /// First park of a freshly spawned OS thread; returns `false` when the
    /// execution already failed and the body must not run.
    fn first_park(self: &Arc<Self>, me: Tid) -> bool {
        let mut st = self.lock_state();
        loop {
            if st.failure.is_some() {
                return false;
            }
            if st.active == me && st.threads[me].status == Status::Runnable {
                return true;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Runs `body` as logical thread `tid` on a new OS thread.
    pub(crate) fn spawn_os_thread(
        self: &Arc<Self>,
        tid: Tid,
        body: impl FnOnce() + Send + 'static,
    ) {
        let exec = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("presp-check-t{tid}"))
            .spawn(move || {
                with_context(&exec, tid, || {
                    if !exec.first_park(tid) {
                        return;
                    }
                    match panic::catch_unwind(AssertUnwindSafe(body)) {
                        Ok(()) => exec.retire(tid),
                        Err(payload) => {
                            if payload.downcast_ref::<Abort>().is_none() {
                                // `as_ref` reaches the payload itself; a bare
                                // `&payload` would downcast on the Box.
                                exec.record_panic(tid, panic_message(payload.as_ref()));
                            }
                        }
                    }
                });
            })
            .expect("spawn model OS thread");
        self.add_os_handle(handle);
    }

    /// Blocks until `target` finishes (join happens-after its body).
    pub(crate) fn thread_join(self: &Arc<Self>, target: Tid) {
        let (_, me) = Execution::current();
        self.yield_point(me);
        loop {
            {
                let mut st = self.lock_state();
                if st.failure.is_some() {
                    drop(st);
                    self.abort();
                }
                if st.threads[target].status == Status::Finished {
                    let target_clock = st.threads[target].clock.clone();
                    st.threads[me].clock.join(&target_clock);
                    return;
                }
            }
            self.block(me, Status::BlockedJoin(target));
        }
    }
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---- the explorer -----------------------------------------------------

/// One recorded decision with its DFS bookkeeping.
struct Node {
    enabled: Vec<Tid>,
    current: Tid,
    /// Index into [`Node::alternatives`] of the branch taken.
    rank: usize,
    /// Preemptions consumed by the prefix strictly before this node.
    preemptions_before: u32,
}

impl Node {
    /// The candidate threads at this decision, non-preemptive choice
    /// first, the rest in thread-id order.
    fn alternatives(&self) -> Vec<Tid> {
        let preferred = if self.enabled.contains(&self.current) {
            self.current
        } else {
            self.enabled[0]
        };
        let mut alts = vec![preferred];
        alts.extend(self.enabled.iter().copied().filter(|&t| t != preferred));
        alts
    }

    /// Whether taking alternative `rank` preempts a runnable current
    /// thread.
    fn is_preemption(&self, rank: usize) -> bool {
        self.enabled.contains(&self.current) && self.alternatives()[rank] != self.current
    }
}

/// The result of one execution.
struct RunOutcome {
    decisions: Vec<Decision>,
    failure: Option<FailureKind>,
}

/// The schedule-exploring model checker.
///
/// `explore` runs a model closure under every schedule in a bounded
/// depth-first enumeration; `replay` re-runs one schedule from its
/// failure string. See the crate docs for the full contract.
pub struct Checker {
    config: Config,
}

impl Checker {
    /// A checker with explicit bounds.
    pub fn new(config: Config) -> Checker {
        Checker { config }
    }

    /// A checker with [`Config::default`] bounds.
    pub fn with_defaults() -> Checker {
        Checker::new(Config::default())
    }

    /// The active bounds.
    pub fn config(&self) -> Config {
        self.config
    }

    fn run_once(
        &self,
        body: &Arc<dyn Fn() + Send + Sync>,
        prefix: Vec<Tid>,
        lock_order: &Arc<Mutex<LockOrderGraph>>,
    ) -> RunOutcome {
        silence_abort_panics();
        let exec = Arc::new(Execution::new(self.config, prefix, Arc::clone(lock_order)));
        let body = Arc::clone(body);
        exec.spawn_os_thread(0, move || body());
        // Wait for the execution to finish (all threads done, or failed).
        {
            let mut st = exec.lock_state();
            while !st.done {
                st = exec
                    .cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        exec.cv.notify_all();
        let handles = std::mem::take(&mut exec.lock_state().os_handles);
        for handle in handles {
            let _ = handle.join();
        }
        let mut st = exec.lock_state();
        RunOutcome {
            decisions: std::mem::take(&mut st.decisions),
            failure: st.failure.take(),
        }
    }

    /// Explores schedules of `body` depth-first until a failure, the
    /// schedule budget, or exhaustion of the (preemption-bounded) space.
    ///
    /// The closure is run once per schedule and must create all model
    /// state (threads, locks, channels) itself, deterministically.
    pub fn explore<F>(&self, body: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
        let lock_order = Arc::new(Mutex::new(LockOrderGraph::new()));
        let mut nodes: Vec<Node> = Vec::new();
        let mut schedules = 0;
        let mut exhausted = false;
        let mut failure = None;
        while schedules < self.config.max_schedules {
            let prefix: Vec<Tid> = nodes.iter().map(|n| n.alternatives()[n.rank]).collect();
            let outcome = self.run_once(&body, prefix, &lock_order);
            schedules += 1;
            if let Some(kind) = outcome.failure {
                failure = Some(Failure {
                    kind,
                    schedule: schedule_string(&outcome.decisions),
                });
                break;
            }
            nodes = decisions_to_nodes(&outcome.decisions);
            if !self.backtrack(&mut nodes) {
                exhausted = true;
                break;
            }
        }
        let graph = lock_order
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Report {
            schedules,
            exhausted,
            failure,
            lock_cycles: graph.cycles(),
            lock_edges: graph.edges(),
        }
    }

    /// Advances `nodes` to the next unexplored schedule; `false` when the
    /// bounded space is exhausted.
    fn backtrack(&self, nodes: &mut Vec<Node>) -> bool {
        let bound = self.config.preemption_bound;
        while let Some(mut node) = nodes.pop() {
            let alts = node.alternatives();
            let mut next = node.rank + 1;
            while next < alts.len() {
                let over_budget =
                    node.is_preemption(next) && bound.is_some_and(|b| node.preemptions_before >= b);
                if !over_budget {
                    break;
                }
                next += 1;
            }
            if next < alts.len() {
                node.rank = next;
                nodes.push(node);
                return true;
            }
        }
        false
    }

    /// Re-runs `body` once, following `schedule` (a failure's schedule
    /// string), and returns that single run's report. The model must be
    /// identical to the one that produced the schedule.
    pub fn replay<F>(&self, schedule: &str, body: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
        let lock_order = Arc::new(Mutex::new(LockOrderGraph::new()));
        let prefix: Vec<Tid> = schedule
            .split('.')
            .filter(|s| !s.is_empty())
            .map(|s| s.parse::<Tid>().expect("malformed schedule string"))
            .collect();
        let outcome = self.run_once(&body, prefix, &lock_order);
        let failure = outcome.failure.map(|kind| Failure {
            kind,
            schedule: schedule_string(&outcome.decisions),
        });
        let graph = lock_order
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Report {
            schedules: 1,
            exhausted: false,
            failure,
            lock_cycles: graph.cycles(),
            lock_edges: graph.edges(),
        }
    }
}

fn decisions_to_nodes(decisions: &[Decision]) -> Vec<Node> {
    let mut preemptions = 0u32;
    decisions
        .iter()
        .map(|d| {
            let node = Node {
                enabled: d.enabled.clone(),
                current: d.current,
                rank: 0,
                preemptions_before: preemptions,
            };
            let rank = node
                .alternatives()
                .iter()
                .position(|&t| t == d.chosen)
                .expect("chosen thread is among alternatives");
            if node.is_preemption(rank) {
                preemptions += 1;
            }
            Node { rank, ..node }
        })
        .collect()
}

fn schedule_string(decisions: &[Decision]) -> String {
    decisions
        .iter()
        .map(|d| d.chosen.to_string())
        .collect::<Vec<_>>()
        .join(".")
}
