//! Race-checked shared cells.
//!
//! A [`RaceCell`] is storage that *claims* to be safely shared without a
//! lock. Under the checker, every access is checked against the vector
//! clocks of prior accesses: two accesses with no happens-before edge, at
//! least one a write, fail the execution as a data race. Outside the
//! checker (production / plain unit tests) a `RaceCell` degrades to an
//! internally locked cell — safe in the host process, so instrumented
//! protocol structs can embed one unconditionally.
//!
//! Per-execution cell ids are assigned lazily on first checked access, so
//! construction is context-free — but a given instance must not be reused
//! across `explore` runs (create model state fresh inside the body).

use crate::scheduler::Execution;
use std::sync::{Mutex, OnceLock, PoisonError};

/// Shared storage whose cross-thread ordering is verified by the checker.
#[derive(Debug, Default)]
pub struct RaceCell<T> {
    label: &'static str,
    id: OnceLock<usize>,
    value: Mutex<T>,
}

impl<T: Copy> RaceCell<T> {
    /// A new cell. The label names the cell in race reports.
    pub fn new(label: &'static str, value: T) -> RaceCell<T> {
        RaceCell {
            label,
            id: OnceLock::new(),
            value: Mutex::new(value),
        }
    }

    fn checked(&self) -> Option<(std::sync::Arc<Execution>, usize)> {
        let (exec, _) = Execution::try_current()?;
        let id = *self.id.get_or_init(|| exec.cell_create(self.label));
        Some((exec, id))
    }

    /// Reads the value; under the checker, verifies the read is ordered
    /// after every prior write.
    pub fn read(&self) -> T {
        if let Some((exec, id)) = self.checked() {
            exec.cell_read(id);
        }
        *self.value.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Writes the value; under the checker, verifies the write is ordered
    /// after every prior access.
    pub fn write(&self, value: T) {
        if let Some((exec, id)) = self.checked() {
            exec.cell_write(id);
        }
        *self.value.lock().unwrap_or_else(PoisonError::into_inner) = value;
    }
}
