//! Exploration outcomes: failures with replayable schedules, and the
//! aggregate report of an exploration run.

use std::fmt;

/// What went wrong in one explored schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FailureKind {
    /// No thread was runnable and no timed wait was pending, but some
    /// threads had not finished: a real deadlock.
    Deadlock {
        /// One line per stuck thread: its name, what it is blocked on and
        /// the locks it holds.
        waiting: Vec<String>,
    },
    /// Two unordered accesses (no happens-before edge) touched the same
    /// shared cell, at least one of them a write.
    Race {
        /// The racy cell's label.
        cell: String,
        /// Description of the two conflicting accesses.
        access: String,
    },
    /// A thread in the model panicked.
    Panic {
        /// The panicking thread's name.
        thread: String,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The schedule exceeded the per-execution step budget — the model
    /// livelocked (or the budget is too small for the scenario).
    StepLimit {
        /// The configured budget that was exhausted.
        steps: usize,
    },
    /// A user-supplied replay schedule named a thread that was not
    /// enabled at that point: the model diverged from the recording.
    ReplayDivergence {
        /// What diverged.
        detail: String,
    },
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Deadlock { waiting } => {
                write!(f, "deadlock: ")?;
                for (i, w) in waiting.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{w}")?;
                }
                Ok(())
            }
            FailureKind::Race { cell, access } => {
                write!(f, "data race on {cell}: {access}")
            }
            FailureKind::Panic { thread, message } => {
                write!(f, "thread '{thread}' panicked: {message}")
            }
            FailureKind::StepLimit { steps } => {
                write!(f, "step limit exceeded ({steps} steps): likely livelock")
            }
            FailureKind::ReplayDivergence { detail } => {
                write!(f, "replay diverged: {detail}")
            }
        }
    }
}

/// A failed schedule: the failure plus the schedule string that replays it
/// deterministically via [`crate::Checker::replay`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// What failed.
    pub kind: FailureKind,
    /// Dot-separated thread ids, one per scheduling decision — feed back
    /// into [`crate::Checker::replay`] to reproduce the failure.
    pub schedule: String,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}\n  replay schedule: {}", self.kind, self.schedule)
    }
}

/// The outcome of an exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Schedules fully executed.
    pub schedules: usize,
    /// Whether the bounded schedule space was exhausted (as opposed to
    /// stopping at the schedule budget).
    pub exhausted: bool,
    /// The first failing schedule, if any (exploration stops at the first
    /// failure so the schedule string stays minimal-prefix-deterministic).
    pub failure: Option<Failure>,
    /// Cycles in the accumulated lock-order graph: each entry is a set of
    /// lock labels that were acquired in conflicting orders across the
    /// explored schedules — a potential deadlock even if no explored
    /// schedule deadlocked.
    pub lock_cycles: Vec<Vec<String>>,
    /// Every `(outer, inner)` lock-order edge the explored schedules
    /// witnessed: `inner` was acquired while `outer` was held. This is the
    /// dynamic counterpart of the static graph `presp-analyze` derives —
    /// on covered schedules the static graph must be a superset, which the
    /// cross-check test enforces.
    pub lock_edges: Vec<(String, String)>,
}

impl Report {
    /// No failing schedule and no lock-order cycle.
    pub fn ok(&self) -> bool {
        self.failure.is_none() && self.lock_cycles.is_empty()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} schedule(s) explored{}",
            self.schedules,
            if self.exhausted {
                " (space exhausted)"
            } else {
                ""
            }
        )?;
        if let Some(failure) = &self.failure {
            write!(f, "\nFAIL: {failure}")?;
        }
        for cycle in &self.lock_cycles {
            write!(f, "\nLOCK-ORDER CYCLE: {}", cycle.join(" -> "))?;
        }
        if self.ok() {
            write!(f, "\nno races, no deadlocks, no lock-order cycles")?;
        }
        Ok(())
    }
}
