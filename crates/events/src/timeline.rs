//! Reservation-based arbitration of one shared resource.
//!
//! A [`ResourceTimeline`] models a resource that serves one request at a
//! time — a directed NoC link, the DRAM channel, the ICAP, a tile's
//! wrapper. Requests reserve the resource no earlier than a requested
//! cycle; the timeline serializes overlapping requests and accounts how
//! long each one waited, which is exactly the contention the paper's
//! Fig. 4 SoCs trade against tile count.

/// One granted reservation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Reservation {
    /// Cycle the resource was actually granted.
    pub start: u64,
    /// Cycle the resource becomes free again.
    pub end: u64,
    /// Cycles the request waited behind earlier reservations (plus any
    /// stall the caller folded in via [`ResourceTimeline::claim`]).
    pub waited: u64,
}

impl Reservation {
    /// Cycles the resource was held.
    pub fn duration(&self) -> u64 {
        self.end - self.start
    }
}

/// The reservation state of one shared resource.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceTimeline {
    free_at: u64,
    reservations: u64,
    busy: u64,
    waited: u64,
}

impl ResourceTimeline {
    /// A fresh, idle timeline.
    pub fn new() -> ResourceTimeline {
        ResourceTimeline::default()
    }

    /// First cycle the resource is free.
    pub fn free_at(&self) -> u64 {
        self.free_at
    }

    /// Reservations granted so far.
    pub fn reservations(&self) -> u64 {
        self.reservations
    }

    /// Total cycles the resource was held.
    pub fn busy_cycles(&self) -> u64 {
        self.busy
    }

    /// Total cycles requests waited behind earlier reservations.
    pub fn contention_cycles(&self) -> u64 {
        self.waited
    }

    /// Reserves the resource for `duration` cycles, no earlier than `at`:
    /// the request starts at `max(at, free_at)` and holds the resource to
    /// completion.
    pub fn reserve(&mut self, at: u64, duration: u64) -> Reservation {
        let start = at.max(self.free_at);
        self.grant(at, start, start + duration)
    }

    /// Records an occupancy the caller computed: the request was issued
    /// at `requested`, the resource granted at `start` (already past
    /// `free_at`, e.g. via [`ResourceTimeline::free_at`] plus a modeled
    /// stall) and held until `end`. `end` becomes the new free point even
    /// if it precedes the old one — callers that overwrite occupancy
    /// (a tile whose wrapper is replaced) rely on assignment semantics.
    pub fn claim(&mut self, requested: u64, start: u64, end: u64) -> Reservation {
        self.grant(requested, start, end)
    }

    fn grant(&mut self, requested: u64, start: u64, end: u64) -> Reservation {
        let waited = start.saturating_sub(requested);
        self.reservations += 1;
        self.busy = self.busy.saturating_add(end.saturating_sub(start));
        self.waited = self.waited.saturating_add(waited);
        self.free_at = end;
        Reservation { start, end, waited }
    }

    /// Opens an epoch: a detached cursor seeded with the current free
    /// point. Reservations made on the epoch use the exact arithmetic of
    /// [`ResourceTimeline::reserve`] / [`ResourceTimeline::claim`] but
    /// touch only the cursor; [`ResourceTimeline::commit`] folds the
    /// whole batch back in one store. A caller holding the timeline
    /// behind a lock can thus reserve a burst of work while touching the
    /// shared state twice (open + commit) instead of once per event.
    pub fn epoch(&self) -> TimelineEpoch {
        TimelineEpoch {
            free_at: self.free_at,
            reservations: 0,
            busy: 0,
            waited: 0,
        }
    }

    /// Commits an epoch opened with [`ResourceTimeline::epoch`]. The
    /// resulting timeline state is identical to having performed the
    /// epoch's reservations directly, in order — including the
    /// assignment semantics of `free_at`. Committing an epoch from a
    /// stale snapshot (the timeline moved since `epoch()`) is a caller
    /// bug the same way an interleaved `claim` would be; the runtime
    /// opens epochs under the same lock it commits them.
    pub fn commit(&mut self, epoch: TimelineEpoch) {
        self.free_at = epoch.free_at;
        self.reservations += epoch.reservations;
        self.busy = self.busy.saturating_add(epoch.busy);
        self.waited = self.waited.saturating_add(epoch.waited);
    }
}

/// A detached reservation cursor for batched timeline commits; see
/// [`ResourceTimeline::epoch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineEpoch {
    free_at: u64,
    reservations: u64,
    busy: u64,
    waited: u64,
}

impl TimelineEpoch {
    /// First cycle the resource is free as seen by this epoch.
    pub fn free_at(&self) -> u64 {
        self.free_at
    }

    /// Reservations accumulated in this epoch so far.
    pub fn reservations(&self) -> u64 {
        self.reservations
    }

    /// [`ResourceTimeline::reserve`] against the epoch cursor.
    pub fn reserve(&mut self, at: u64, duration: u64) -> Reservation {
        let start = at.max(self.free_at);
        self.grant(at, start, start + duration)
    }

    /// [`ResourceTimeline::claim`] against the epoch cursor.
    pub fn claim(&mut self, requested: u64, start: u64, end: u64) -> Reservation {
        self.grant(requested, start, end)
    }

    fn grant(&mut self, requested: u64, start: u64, end: u64) -> Reservation {
        let waited = start.saturating_sub(requested);
        self.reservations += 1;
        self.busy = self.busy.saturating_add(end.saturating_sub(start));
        self.waited = self.waited.saturating_add(waited);
        self.free_at = end;
        Reservation { start, end, waited }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_requests_serialize() {
        let mut tl = ResourceTimeline::new();
        let a = tl.reserve(0, 100);
        assert_eq!((a.start, a.end, a.waited), (0, 100, 0));
        let b = tl.reserve(10, 50);
        assert_eq!((b.start, b.end, b.waited), (100, 150, 90));
        assert_eq!(tl.free_at(), 150);
        assert_eq!(tl.reservations(), 2);
        assert_eq!(tl.busy_cycles(), 150);
        assert_eq!(tl.contention_cycles(), 90);
    }

    #[test]
    fn idle_gaps_do_not_count_as_busy() {
        let mut tl = ResourceTimeline::new();
        tl.reserve(0, 10);
        let b = tl.reserve(500, 10);
        assert_eq!((b.start, b.waited), (500, 0));
        assert_eq!(tl.busy_cycles(), 20);
        assert_eq!(tl.contention_cycles(), 0);
    }

    #[test]
    fn claim_preserves_caller_stalls() {
        let mut tl = ResourceTimeline::new();
        tl.reserve(0, 100);
        // Issued at 40, granted at free+25 stall, held for 60.
        let start = tl.free_at() + 25;
        let r = tl.claim(40, start, start + 60);
        assert_eq!((r.start, r.end, r.waited), (125, 185, 85));
        assert_eq!(tl.free_at(), 185);
    }

    #[test]
    fn claim_uses_assignment_semantics_for_free_at() {
        let mut tl = ResourceTimeline::new();
        tl.reserve(0, 100);
        tl.claim(0, 10, 50);
        assert_eq!(tl.free_at(), 50);
    }

    #[test]
    fn epoch_commit_matches_sequential_reservations() {
        let mut direct = ResourceTimeline::new();
        direct.reserve(0, 100);
        let mut batched = direct;

        // A burst of mixed reserve/claim operations, applied directly...
        let d1 = direct.reserve(10, 50);
        let d2 = direct.reserve(120, 30);
        let stall = direct.free_at() + 25;
        let d3 = direct.claim(40, stall, stall + 60);

        // ...and through an epoch.
        let mut epoch = batched.epoch();
        let e1 = epoch.reserve(10, 50);
        let e2 = epoch.reserve(120, 30);
        let stall = epoch.free_at() + 25;
        let e3 = epoch.claim(40, stall, stall + 60);
        batched.commit(epoch);

        assert_eq!((d1, d2, d3), (e1, e2, e3));
        assert_eq!(direct, batched);
    }

    #[test]
    fn empty_epoch_commit_is_a_no_op() {
        let mut tl = ResourceTimeline::new();
        tl.reserve(0, 100);
        let before = tl;
        let epoch = tl.epoch();
        tl.commit(epoch);
        assert_eq!(tl, before);
    }
}
