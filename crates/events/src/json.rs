//! A minimal JSON reader/writer.
//!
//! The workspace only ever parses its own output — `SocConfig` files (the
//! analogue of ESP's `esp_defconfig`), benchmark result documents, trace
//! exports — so a small recursive-descent parser covering the full JSON
//! grammar (objects, arrays, strings with escapes, numbers, booleans,
//! null) replaces the external `serde_json` dependency.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline-free
    /// form, matching `serde_json::to_string_pretty` closely enough for
    /// diff-friendly config files.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write_pretty(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error, with a
/// byte offset.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for config
                            // files; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(byte) if byte < 0x20 => {
                    return Err(self.error("raw control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc =
            r#"{"name": "soc", "rows": 3, "flags": [true, false, null], "nested": {"x": -1.5}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("soc"));
        assert_eq!(v.get("rows").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("flags").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("nested").unwrap().get("x"),
            Some(&JsonValue::Number(-1.5))
        );
    }

    #[test]
    fn pretty_output_reparses_identically() {
        let doc = r#"{"tiles": ["Cpu", "Aux"], "rows": 2, "escape": "a\"b\\c\nd"}"#;
        let v = parse(doc).unwrap();
        let pretty = v.pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
        assert!(pretty.contains("\"Aux\""));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "\"unterminated",
            "{} trailing",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(JsonValue::Number(9.0).pretty(), "9");
        assert_eq!(JsonValue::Number(0.25).pretty(), "0.25");
    }
}
