//! Trace sinks: where emitted records go.
//!
//! This module is the *doorway* for sink access: every lock acquisition
//! on a shared sink lives here, behind poison-recovering helpers
//! ([`record_to`], [`snapshot`], [`drain`]). A worker that panics while
//! holding a sink lock poisons the mutex, but trace records are plain
//! data — there is no invariant a half-finished `record` call can break
//! that would make the already-collected records unusable — so readers
//! recover the guard instead of propagating the panic (the same facade
//! pattern the threaded runtime uses for its stats mutex). Code outside
//! this file must not call `.lock()` on a sink directly; `presp-lint`
//! enforces the doorway.

use crate::trace::{TraceRecord, TraceSink};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// The shared handle a [`crate::Tracer`] writes through. `Arc<Mutex<_>>`
/// so one sink can collect records from several traced components (e.g.
/// a SoC and the runtime manager driving it) and cross thread
/// boundaries.
pub type SharedSink = Arc<Mutex<dyn TraceSink + Send>>;

/// Writes one record through a shared sink handle, recovering a
/// poisoned lock. This is the only write path [`crate::Tracer::emit`]
/// uses.
pub fn record_to(sink: &SharedSink, record: TraceRecord) {
    sink.lock()
        .unwrap_or_else(PoisonError::into_inner)
        .record(record);
}

/// The records a shared sink has retained so far, oldest first,
/// recovering a poisoned lock instead of panicking the drain path.
pub fn snapshot<T: TraceSink + ?Sized>(sink: &Mutex<T>) -> Vec<TraceRecord> {
    sink.lock()
        .unwrap_or_else(PoisonError::into_inner)
        .collected()
}

/// Takes every retained record out of a shared sink, leaving it empty,
/// recovering a poisoned lock instead of panicking the drain path.
pub fn drain<T: TraceSink + ?Sized>(sink: &Mutex<T>) -> Vec<TraceRecord> {
    sink.lock().unwrap_or_else(PoisonError::into_inner).drain()
}

/// An unbounded in-memory sink; the default for tests and exports.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    records: Vec<TraceRecord>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A shareable empty sink, ready to attach to tracers (the concrete
    /// `Arc` coerces to [`SharedSink`]).
    pub fn shared() -> Arc<Mutex<MemorySink>> {
        Arc::new(Mutex::new(MemorySink::new()))
    }

    /// Records collected so far, in emission order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Takes all collected records, leaving the sink empty.
    pub fn take(&mut self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.records)
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    fn collected(&self) -> Vec<TraceRecord> {
        self.records.clone()
    }

    fn drain(&mut self) -> Vec<TraceRecord> {
        self.take()
    }
}

/// A bounded sink that keeps only the most recent records — the
/// always-on flight recorder for long simulations.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    capacity: usize,
    records: VecDeque<TraceRecord>,
    dropped: u64,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` records.
    pub fn new(capacity: usize) -> RingBufferSink {
        RingBufferSink {
            capacity: capacity.max(1),
            records: VecDeque::new(),
            dropped: 0,
        }
    }

    /// A shareable ring, ready to attach to tracers.
    pub fn shared(capacity: usize) -> Arc<Mutex<RingBufferSink>> {
        Arc::new(Mutex::new(RingBufferSink::new(capacity)))
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.records.iter().cloned().collect()
    }

    /// Records evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, record: TraceRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }

    fn collected(&self) -> Vec<TraceRecord> {
        self.records()
    }

    fn drain(&mut self) -> Vec<TraceRecord> {
        self.dropped = 0;
        std::mem::take(&mut self.records).into()
    }
}

/// One shard of a [`ShardedSink`]: an unbounded buffer a single worker
/// appends to. Each shard sees a strictly increasing (but gapped)
/// subsequence of the tracer's seq numbers; the merge restores the
/// total order.
#[derive(Debug, Default)]
struct ShardBuffer {
    records: Vec<TraceRecord>,
}

impl TraceSink for ShardBuffer {
    fn record(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    fn collected(&self) -> Vec<TraceRecord> {
        self.records.clone()
    }

    fn drain(&mut self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.records)
    }
}

/// Per-worker trace shards with a deterministic seq-number merge.
///
/// A single shared sink serializes every emit in a multi-worker run.
/// `ShardedSink` hands each worker its own shard handle ([`Self::shard`])
/// so concurrent commits only contend on their private shard mutex;
/// [`Self::drain_merged`] re-establishes the global emission order by
/// merging on the tracer-assigned `seq` — which is already total because
/// the runtime's commit gate serializes tracer access. Same-seed runs
/// therefore produce byte-identical merged logs at any shard count.
#[derive(Clone)]
pub struct ShardedSink {
    shards: Vec<Arc<Mutex<ShardBuffer>>>,
}

impl std::fmt::Debug for ShardedSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSink")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl ShardedSink {
    /// A sink with `shards` independent buffers (at least one).
    pub fn new(shards: usize) -> ShardedSink {
        ShardedSink {
            shards: (0..shards.max(1))
                .map(|_| Arc::new(Mutex::new(ShardBuffer::default())))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Always false: a sharded sink holds at least one shard.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// A tracer-attachable handle to shard `i` (wrapping around, so any
    /// worker index maps to a valid shard).
    pub fn shard(&self, i: usize) -> SharedSink {
        self.shards[i % self.shards.len()].clone()
    }

    /// Drains every shard and merges the records into tracer emission
    /// order (ascending `seq`), recovering poisoned shard locks.
    pub fn drain_merged(&self) -> Vec<TraceRecord> {
        let mut all: Vec<TraceRecord> = Vec::new();
        for shard in &self.shards {
            all.extend(drain(shard));
        }
        // Seq numbers are unique per tracer, so the unstable sort is
        // deterministic.
        all.sort_unstable_by_key(|r| r.seq);
        all
    }

    /// The merged records retained so far without draining the shards.
    pub fn collected_merged(&self) -> Vec<TraceRecord> {
        let mut all: Vec<TraceRecord> = Vec::new();
        for shard in &self.shards {
            all.extend(snapshot(shard));
        }
        all.sort_unstable_by_key(|r| r.seq);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{ClockDomain, Loc, TraceEvent};

    fn irq(seq: u64) -> TraceRecord {
        TraceRecord {
            seq,
            domain: ClockDomain::SocCycles,
            ts: seq * 10,
            dur: 0,
            event: TraceEvent::Irq {
                source: Loc::new(0, 0),
            },
        }
    }

    #[test]
    fn memory_sink_collects_everything() {
        let mut sink = MemorySink::new();
        for i in 0..5 {
            sink.record(irq(i));
        }
        assert_eq!(sink.records().len(), 5);
        assert_eq!(sink.take().len(), 5);
        assert!(sink.records().is_empty());
    }

    #[test]
    fn ring_buffer_keeps_the_most_recent() {
        let mut ring = RingBufferSink::new(3);
        for i in 0..10 {
            ring.record(irq(i));
        }
        let kept = ring.records();
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[0].seq, 7);
        assert_eq!(kept[2].seq, 9);
        assert_eq!(ring.dropped(), 7);
    }

    #[test]
    fn drain_resets_the_ring() {
        let mut ring = RingBufferSink::new(3);
        for i in 0..5 {
            ring.record(irq(i));
        }
        assert_eq!(TraceSink::drain(&mut ring).len(), 3);
        assert_eq!(ring.dropped(), 0);
        assert!(ring.records().is_empty());
    }

    #[test]
    fn poisoned_ring_sink_still_drains() {
        // Regression: a worker panicking mid-record used to poison the
        // sink mutex and panic the drain path. The doorway helpers
        // recover the guard — trace records are plain data.
        let sink = RingBufferSink::shared(8);
        for i in 0..4 {
            sink.lock().unwrap().record(irq(i)); // presp-lint: allow
        }
        let poisoner = sink.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap(); // presp-lint: allow
            panic!("poison the sink mutex");
        })
        .join();
        assert!(sink.is_poisoned());
        assert_eq!(snapshot(&sink).len(), 4);
        assert_eq!(drain(&sink).len(), 4);
        assert!(snapshot(&sink).is_empty());
    }

    #[test]
    fn record_to_recovers_a_poisoned_sink() {
        let sink = MemorySink::shared();
        let poisoner = sink.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap(); // presp-lint: allow
            panic!("poison the sink mutex");
        })
        .join();
        let shared: SharedSink = sink.clone();
        record_to(&shared, irq(0));
        assert_eq!(snapshot(&sink).len(), 1);
    }

    #[test]
    fn sharded_sink_merges_by_seq() {
        let sharded = ShardedSink::new(4);
        assert_eq!(sharded.len(), 4);
        // Interleave records across shards the way rotating workers
        // would: shard i holds seqs i, i+4, i+8, ...
        for seq in 0..12 {
            record_to(&sharded.shard(seq as usize), irq(seq));
        }
        let collected = sharded.collected_merged();
        let merged = sharded.drain_merged();
        assert_eq!(collected, merged);
        let seqs: Vec<u64> = merged.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..12).collect::<Vec<u64>>());
        assert!(sharded.drain_merged().is_empty());
    }

    #[test]
    fn sharded_sink_shard_index_wraps() {
        let sharded = ShardedSink::new(2);
        record_to(&sharded.shard(5), irq(0));
        assert_eq!(snapshot(&sharded.shards[1]).len(), 1);
    }
}
