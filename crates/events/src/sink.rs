//! Trace sinks: where emitted records go.

use crate::trace::{TraceRecord, TraceSink};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// The shared handle a [`crate::Tracer`] writes through. `Arc<Mutex<_>>`
/// so one sink can collect records from several traced components (e.g.
/// a SoC and the runtime manager driving it) and cross thread
/// boundaries.
pub type SharedSink = Arc<Mutex<dyn TraceSink + Send>>;

/// An unbounded in-memory sink; the default for tests and exports.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    records: Vec<TraceRecord>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A shareable empty sink, ready to attach to tracers (the concrete
    /// `Arc` coerces to [`SharedSink`]).
    pub fn shared() -> Arc<Mutex<MemorySink>> {
        Arc::new(Mutex::new(MemorySink::new()))
    }

    /// Records collected so far, in emission order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Takes all collected records, leaving the sink empty.
    pub fn take(&mut self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.records)
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, record: TraceRecord) {
        self.records.push(record);
    }
}

/// A bounded sink that keeps only the most recent records — the
/// always-on flight recorder for long simulations.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    capacity: usize,
    records: VecDeque<TraceRecord>,
    dropped: u64,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` records.
    pub fn new(capacity: usize) -> RingBufferSink {
        RingBufferSink {
            capacity: capacity.max(1),
            records: VecDeque::new(),
            dropped: 0,
        }
    }

    /// A shareable ring, ready to attach to tracers.
    pub fn shared(capacity: usize) -> Arc<Mutex<RingBufferSink>> {
        Arc::new(Mutex::new(RingBufferSink::new(capacity)))
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.records.iter().cloned().collect()
    }

    /// Records evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, record: TraceRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{ClockDomain, Loc, TraceEvent};

    fn irq(seq: u64) -> TraceRecord {
        TraceRecord {
            seq,
            domain: ClockDomain::SocCycles,
            ts: seq * 10,
            dur: 0,
            event: TraceEvent::Irq {
                source: Loc::new(0, 0),
            },
        }
    }

    #[test]
    fn memory_sink_collects_everything() {
        let mut sink = MemorySink::new();
        for i in 0..5 {
            sink.record(irq(i));
        }
        assert_eq!(sink.records().len(), 5);
        assert_eq!(sink.take().len(), 5);
        assert!(sink.records().is_empty());
    }

    #[test]
    fn ring_buffer_keeps_the_most_recent() {
        let mut ring = RingBufferSink::new(3);
        for i in 0..10 {
            ring.record(irq(i));
        }
        let kept = ring.records();
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[0].seq, 7);
        assert_eq!(kept[2].seq, 9);
        assert_eq!(ring.dropped(), 7);
    }
}
