//! The shared SoC clock: a monotonic `now` / `horizon` pair.

/// SoC clock frequency used in the paper's evaluation (Section VI): the
/// 78 MHz the VC707 systems run at. Cycle↔wall-clock conversions across
/// the workspace all go through this constant.
pub const SOC_CLOCK_MHZ: f64 = 78.0;

/// Converts cycles at the SoC clock to microseconds.
pub fn cycles_to_micros(cycles: u64) -> f64 {
    cycles as f64 / SOC_CLOCK_MHZ
}

/// Converts cycles at the SoC clock to seconds.
pub fn cycles_to_seconds(cycles: u64) -> f64 {
    cycles as f64 / (SOC_CLOCK_MHZ * 1e6)
}

/// A monotonic virtual clock.
///
/// The simulator issues operations with explicit start cycles and folds
/// every completion back into the clock: `now` is the convenience clock
/// used by the `_at`-less wrappers, `horizon` the latest completion
/// observed on any resource. Both only move forward.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now: u64,
    horizon: u64,
}

impl VirtualClock {
    /// A clock at cycle zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Current convenience clock.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Latest completion cycle observed on any resource.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Folds a completion time into the clock; earlier times are no-ops.
    pub fn observe(&mut self, end: u64) {
        self.horizon = self.horizon.max(end);
        self.now = self.now.max(end);
    }

    /// Folds a whole batch of completion times into the clock at once.
    ///
    /// Equivalent to calling [`VirtualClock::observe`] per element, but
    /// the maximum is computed outside the clock so a caller holding the
    /// clock behind a lock touches it once per batch instead of once per
    /// event. An empty batch is a no-op.
    pub fn advance_batch(&mut self, ends: impl IntoIterator<Item = u64>) {
        if let Some(max) = ends.into_iter().max() {
            self.observe(max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let mut clock = VirtualClock::new();
        clock.observe(100);
        clock.observe(40);
        assert_eq!(clock.now(), 100);
        assert_eq!(clock.horizon(), 100);
        clock.observe(150);
        assert_eq!(clock.horizon(), 150);
    }

    #[test]
    fn advance_batch_matches_per_event_observes() {
        let mut batched = VirtualClock::new();
        let mut serial = VirtualClock::new();
        let ends = [40u64, 170, 90, 170, 12];
        batched.advance_batch(ends);
        for end in ends {
            serial.observe(end);
        }
        assert_eq!(batched, serial);
        // Empty batches leave the clock untouched.
        batched.advance_batch(std::iter::empty());
        assert_eq!(batched.horizon(), 170);
    }

    #[test]
    fn conversions_use_the_soc_clock() {
        assert!((cycles_to_micros(78) - 1.0).abs() < 1e-9);
        assert!((cycles_to_seconds(78_000_000) - 1.0).abs() < 1e-12);
    }
}
