//! Structured trace records and the zero-overhead-when-disabled tracer.
//!
//! Every timed operation in the stack — DMA bursts, NoC transfers,
//! decoupler handshakes, ICAP writes, runtime retries and quarantine
//! transitions, WAMI frame stages, CAD flow stages — can emit a typed
//! [`TraceRecord`] through a [`Tracer`]. Event payloads are built inside
//! closures that never run unless a sink is attached, so a disabled
//! tracer costs one branch per operation.
//!
//! Records serialize two ways: [`chrome_trace_json`] produces a Chrome
//! trace-event JSON document (open in `chrome://tracing` or Perfetto),
//! and [`log_lines`] produces deterministic one-line-per-record text used
//! by the byte-identical-replay tests.

use crate::clock::cycles_to_micros;
use crate::json::JsonValue;
use crate::sink::SharedSink;
use std::fmt;

/// The clock a trace timestamp is expressed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClockDomain {
    /// SoC fabric cycles at 78 MHz (simulator + runtime).
    SocCycles,
    /// CAD-flow minutes stored as integer milliminutes.
    CadMilliMinutes,
    /// Unitless ordering (software pipeline stages with no cycle model).
    Ordinal,
}

impl ClockDomain {
    /// Stable label used in log lines.
    pub fn label(self) -> &'static str {
        match self {
            ClockDomain::SocCycles => "soc-cycles",
            ClockDomain::CadMilliMinutes => "cad-milliminutes",
            ClockDomain::Ordinal => "ordinal",
        }
    }

    /// Maps a timestamp to Chrome trace microseconds: SoC cycles convert
    /// at the real 78 MHz clock; one CAD milliminute renders as 1 ms (so
    /// an hours-long flow stays navigable); ordinal ticks render 1:1.
    pub fn to_trace_micros(self, t: u64) -> f64 {
        match self {
            ClockDomain::SocCycles => cycles_to_micros(t),
            ClockDomain::CadMilliMinutes => t as f64 * 1000.0,
            ClockDomain::Ordinal => t as f64,
        }
    }

    fn pid(self) -> u64 {
        match self {
            ClockDomain::SocCycles => 1,
            ClockDomain::CadMilliMinutes => 2,
            ClockDomain::Ordinal => 3,
        }
    }

    fn process_name(self) -> &'static str {
        match self {
            ClockDomain::SocCycles => "soc (78 MHz cycles)",
            ClockDomain::CadMilliMinutes => "cad flow (minutes)",
            ClockDomain::Ordinal => "software pipeline",
        }
    }
}

impl fmt::Display for ClockDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Converts analytic CAD minutes to the integer milliminutes
/// [`ClockDomain::CadMilliMinutes`] timestamps use.
pub fn milliminutes(minutes: f64) -> u64 {
    (minutes * 1000.0).round().max(0.0) as u64
}

/// A tile location. `presp-events` sits below the SoC crate, so this is
/// the structural twin of its `TileCoord`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Loc {
    /// Mesh row.
    pub row: u64,
    /// Mesh column.
    pub col: u64,
}

impl Loc {
    /// A location from row/column indices.
    pub fn new(row: u64, col: u64) -> Loc {
        Loc { row, col }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{},{}", self.row, self.col)
    }
}

/// One typed trace event. Variants cover the full stack: SoC fabric
/// operations, runtime recovery decisions, WAMI frame stages and CAD
/// flow stages.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// One DRAM channel access.
    DramAccess {
        /// Bytes moved.
        bytes: u64,
        /// Cycles spent waiting for the channel.
        waited: u64,
    },
    /// One NoC packet, source to sink.
    NocTransfer {
        /// Physical plane name.
        plane: &'static str,
        /// Source tile.
        src: Loc,
        /// Destination tile.
        dst: Loc,
        /// Payload bytes.
        bytes: u64,
        /// Flits moved (including header).
        flits: u64,
        /// Hops traversed.
        hops: u64,
        /// Cycles lost to link contention along the path.
        waited: u64,
    },
    /// One accelerator DMA burst (DRAM access + NoC transfer).
    DmaBurst {
        /// Accelerator tile.
        tile: Loc,
        /// Bytes moved.
        bytes: u64,
        /// `"in"` (memory → tile) or `"out"` (tile → memory).
        direction: &'static str,
    },
    /// A decoupler handshake on a reconfigurable tile.
    DecouplerHandshake {
        /// The tile.
        tile: Loc,
        /// `true` = decouple, `false` = re-couple.
        decouple: bool,
        /// Fault-injected acknowledge delay, cycles.
        delay: u64,
    },
    /// One bitstream streamed through the ICAP.
    IcapWrite {
        /// Target tile.
        tile: Loc,
        /// Configuration words streamed.
        words: u64,
        /// Whether the CRC check passed.
        ok: bool,
        /// Cycles spent waiting for the shared ICAP (plus DFXC stalls).
        waited: u64,
    },
    /// A full partial reconfiguration (fetch + ICAP + completion IRQ).
    Reconfiguration {
        /// Target tile.
        tile: Loc,
        /// Accelerator kind loaded.
        kind: String,
        /// Bitstream size, bytes.
        bytes: u64,
        /// Whether the load succeeded.
        ok: bool,
    },
    /// An accelerator compute interval.
    Compute {
        /// The tile.
        tile: Loc,
        /// Accelerator kind.
        kind: String,
        /// Compute cycles.
        cycles: u64,
    },
    /// A software kernel run on the CPU tile.
    CpuCompute {
        /// Kernel kind.
        kind: String,
        /// Compute cycles.
        cycles: u64,
    },
    /// An interrupt delivered to the CPU.
    Irq {
        /// Source tile.
        source: Loc,
    },
    /// A single-event upset striking configuration memory.
    SeuInjected {
        /// Packed frame address (FAR encoding) of the struck frame.
        frame: u64,
        /// Word index within the frame.
        word: u64,
        /// First flipped bit.
        bit: u64,
        /// Whether a second bit of the same word flipped (uncorrectable).
        double_bit: bool,
    },
    /// One readback-scrub pass over a frame region.
    ScrubPass {
        /// Frames read back.
        frames: u64,
        /// Frames repaired by SECDED.
        corrected: u64,
        /// Frames found uncorrectable.
        uncorrectable: u64,
        /// Cycles the readback waited for the shared ICAP.
        waited: u64,
    },
    /// One frame repaired in place by ECC during scrubbing.
    FrameRepaired {
        /// Packed frame address (FAR encoding).
        frame: u64,
        /// Words corrected within the frame.
        words: u64,
    },
    /// A failed reconfiguration rolled back to the pre-transaction state.
    RollbackCompleted {
        /// The tile whose region was rolled back.
        tile: Loc,
        /// Frames restored to their pre-transaction content.
        frames: u64,
    },
    /// A tile's region physically relocated to a new column base.
    RegionMoved {
        /// The tile whose region moved.
        tile: Loc,
        /// Frames rewritten at the new base.
        frames: u64,
        /// Signed column delta of the move.
        delta: i64,
    },
    /// A tile's region erased and retired (its lease was switched or
    /// vacated); the fabric columns return to the free pool.
    RegionReleased {
        /// The tile whose region was retired.
        tile: Loc,
        /// Frames erased.
        frames: u64,
    },
    /// One runtime reconfiguration attempt (manager retry loop).
    ReconfigAttempt {
        /// Target tile.
        tile: Loc,
        /// Accelerator kind.
        kind: String,
        /// 1-based attempt number.
        attempt: u64,
        /// Whether the attempt succeeded.
        ok: bool,
    },
    /// A backoff wait between reconfiguration attempts.
    RetryBackoff {
        /// Target tile.
        tile: Loc,
        /// The attempt that just failed (1-based).
        attempt: u64,
        /// Backoff length, cycles.
        cycles: u64,
    },
    /// A tile entering or leaving quarantine.
    Quarantine {
        /// The tile.
        tile: Loc,
        /// `true` on entry, `false` on release.
        entered: bool,
    },
    /// A reconfiguration skipped because the kind was already loaded.
    BitstreamCacheHit {
        /// The tile.
        tile: Loc,
        /// Accelerator kind.
        kind: String,
    },
    /// An operation degraded to the CPU software path.
    CpuFallback {
        /// Kernel kind.
        kind: String,
    },
    /// A scheduler worker committed a queued request to the device core.
    SchedDispatch {
        /// The tile whose queue the request travelled through.
        tile: Loc,
        /// Global admission ticket (commit order across all tiles).
        ticket: u64,
        /// Backlog depth of the tile's queue when the request was
        /// admitted (the request itself included).
        depth: u64,
    },
    /// A queued reconfiguration folded into an identical pending one.
    RequestCoalesced {
        /// The tile.
        tile: Loc,
        /// Accelerator kind.
        kind: String,
        /// Callers answered by the single underlying reconfiguration.
        waiters: u64,
    },
    /// A verified partial bitstream was served from the LRU cache,
    /// skipping the registry's integrity re-check.
    PbsCacheHit {
        /// The tile.
        tile: Loc,
        /// Accelerator kind.
        kind: String,
    },
    /// A scheduler worker died (panicked) while holding a commit-order
    /// ticket; the supervisor detected the death and will heal the gate.
    WorkerDied {
        /// Death ordinal (gate-ordered): the how-many-th worker death
        /// recorded, not an OS worker slot — slots are wall-clock
        /// dependent, ordinals keep the trace deterministic per seed.
        worker: u64,
        /// The ticket the worker held when it died.
        ticket: u64,
    },
    /// A claimed-but-uncommitted job was returned to its tile queue by
    /// the supervisor after its claimant died or wedged; a surviving
    /// worker re-claims it under the same ticket, so commit order is
    /// preserved.
    TicketRedispatched {
        /// The tile whose queue the job returned to.
        tile: Loc,
        /// The preserved admission ticket.
        ticket: u64,
        /// How many times this job has been redispatched (1-based).
        attempt: u64,
    },
    /// A request reached its commit slot after its virtual-time deadline;
    /// it was cancelled (reconfigure) or degraded to the CPU (execute).
    DeadlineMissed {
        /// The tile the request targeted.
        tile: Loc,
        /// The request's admission ticket.
        ticket: u64,
        /// Virtual cycles past the deadline at commit.
        late: u64,
    },
    /// A request shed at the queue door by the admission controller.
    RequestShed {
        /// The tile whose queue was at capacity.
        tile: Loc,
        /// The shed request's admission ticket.
        ticket: u64,
    },
    /// One defragmenter repack pass over the fabric.
    DefragPass {
        /// Region moves applied this pass.
        moves: u64,
        /// Frames physically relocated.
        frames: u64,
    },
    /// One WAMI pipeline stage of one frame.
    FrameStage {
        /// Frame index.
        frame: u64,
        /// Stage (kernel) name.
        stage: String,
    },
    /// One complete WAMI frame.
    FrameDone {
        /// Frame index.
        frame: u64,
        /// Reconfigurations triggered while processing it.
        reconfigurations: u64,
    },
    /// One CAD flow stage (synthesis, placement, routing, ...).
    FlowStage {
        /// Design / SoC name.
        design: String,
        /// Stage name.
        stage: String,
        /// Reconfigurable region, or empty for design-wide stages.
        region: String,
    },
    /// A (partial) bitstream emitted by the implementation flow.
    BitstreamGenerated {
        /// Design / SoC name.
        design: String,
        /// Region the bitstream targets.
        region: String,
        /// Accelerator kind implemented.
        kind: String,
        /// Bitstream size, bytes.
        bytes: u64,
    },
}

impl TraceEvent {
    /// Stable event name (used as the Chrome trace `name`).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::DramAccess { .. } => "dram.access",
            TraceEvent::NocTransfer { .. } => "noc.transfer",
            TraceEvent::DmaBurst { .. } => "dma.burst",
            TraceEvent::DecouplerHandshake { .. } => "decoupler.handshake",
            TraceEvent::IcapWrite { .. } => "icap.write",
            TraceEvent::Reconfiguration { .. } => "reconfiguration",
            TraceEvent::Compute { .. } => "accel.compute",
            TraceEvent::CpuCompute { .. } => "cpu.compute",
            TraceEvent::Irq { .. } => "irq.deliver",
            TraceEvent::SeuInjected { .. } => "seu.injected",
            TraceEvent::ScrubPass { .. } => "scrub.pass",
            TraceEvent::FrameRepaired { .. } => "frame.repaired",
            TraceEvent::RollbackCompleted { .. } => "rollback.completed",
            TraceEvent::RegionMoved { .. } => "region.moved",
            TraceEvent::RegionReleased { .. } => "region.released",
            TraceEvent::DefragPass { .. } => "defrag.pass",
            TraceEvent::ReconfigAttempt { .. } => "reconfig.attempt",
            TraceEvent::RetryBackoff { .. } => "retry.backoff",
            TraceEvent::Quarantine { .. } => "quarantine",
            TraceEvent::BitstreamCacheHit { .. } => "bitstream.cache_hit",
            TraceEvent::CpuFallback { .. } => "cpu.fallback",
            TraceEvent::SchedDispatch { .. } => "sched.dispatch",
            TraceEvent::RequestCoalesced { .. } => "sched.coalesced",
            TraceEvent::PbsCacheHit { .. } => "pbs_cache.hit",
            TraceEvent::WorkerDied { .. } => "sched.worker_died",
            TraceEvent::TicketRedispatched { .. } => "sched.redispatch",
            TraceEvent::DeadlineMissed { .. } => "sched.deadline_miss",
            TraceEvent::RequestShed { .. } => "sched.shed",
            TraceEvent::FrameStage { .. } => "frame.stage",
            TraceEvent::FrameDone { .. } => "frame",
            TraceEvent::FlowStage { .. } => "flow.stage",
            TraceEvent::BitstreamGenerated { .. } => "bitstream.generated",
        }
    }

    /// Layer the event belongs to (Chrome trace `cat` / thread).
    pub fn category(&self) -> &'static str {
        match self {
            TraceEvent::DramAccess { .. }
            | TraceEvent::DmaBurst { .. }
            | TraceEvent::DecouplerHandshake { .. }
            | TraceEvent::IcapWrite { .. }
            | TraceEvent::Reconfiguration { .. }
            | TraceEvent::Compute { .. }
            | TraceEvent::CpuCompute { .. }
            | TraceEvent::Irq { .. }
            | TraceEvent::SeuInjected { .. }
            | TraceEvent::ScrubPass { .. }
            | TraceEvent::FrameRepaired { .. }
            | TraceEvent::RollbackCompleted { .. }
            | TraceEvent::RegionMoved { .. }
            | TraceEvent::RegionReleased { .. } => "soc",
            TraceEvent::NocTransfer { .. } => "noc",
            TraceEvent::ReconfigAttempt { .. }
            | TraceEvent::RetryBackoff { .. }
            | TraceEvent::Quarantine { .. }
            | TraceEvent::BitstreamCacheHit { .. }
            | TraceEvent::CpuFallback { .. }
            | TraceEvent::SchedDispatch { .. }
            | TraceEvent::RequestCoalesced { .. }
            | TraceEvent::PbsCacheHit { .. }
            | TraceEvent::WorkerDied { .. }
            | TraceEvent::TicketRedispatched { .. }
            | TraceEvent::DeadlineMissed { .. }
            | TraceEvent::RequestShed { .. }
            | TraceEvent::DefragPass { .. } => "runtime",
            TraceEvent::FrameStage { .. } | TraceEvent::FrameDone { .. } => "wami",
            TraceEvent::FlowStage { .. } | TraceEvent::BitstreamGenerated { .. } => "cad",
        }
    }

    /// The event payload as ordered key/value pairs.
    pub fn args(&self) -> Vec<(&'static str, JsonValue)> {
        fn n(v: u64) -> JsonValue {
            JsonValue::Number(v as f64)
        }
        fn s(v: &str) -> JsonValue {
            JsonValue::String(v.to_string())
        }
        fn loc(v: Loc) -> JsonValue {
            JsonValue::String(v.to_string())
        }
        match self {
            TraceEvent::DramAccess { bytes, waited } => {
                vec![("bytes", n(*bytes)), ("waited", n(*waited))]
            }
            TraceEvent::NocTransfer {
                plane,
                src,
                dst,
                bytes,
                flits,
                hops,
                waited,
            } => vec![
                ("plane", s(plane)),
                ("src", loc(*src)),
                ("dst", loc(*dst)),
                ("bytes", n(*bytes)),
                ("flits", n(*flits)),
                ("hops", n(*hops)),
                ("waited", n(*waited)),
            ],
            TraceEvent::DmaBurst {
                tile,
                bytes,
                direction,
            } => vec![
                ("tile", loc(*tile)),
                ("bytes", n(*bytes)),
                ("direction", s(direction)),
            ],
            TraceEvent::DecouplerHandshake {
                tile,
                decouple,
                delay,
            } => vec![
                ("tile", loc(*tile)),
                ("decouple", JsonValue::Bool(*decouple)),
                ("delay", n(*delay)),
            ],
            TraceEvent::IcapWrite {
                tile,
                words,
                ok,
                waited,
            } => vec![
                ("tile", loc(*tile)),
                ("words", n(*words)),
                ("ok", JsonValue::Bool(*ok)),
                ("waited", n(*waited)),
            ],
            TraceEvent::Reconfiguration {
                tile,
                kind,
                bytes,
                ok,
            } => vec![
                ("tile", loc(*tile)),
                ("kind", s(kind)),
                ("bytes", n(*bytes)),
                ("ok", JsonValue::Bool(*ok)),
            ],
            TraceEvent::Compute { tile, kind, cycles } => vec![
                ("tile", loc(*tile)),
                ("kind", s(kind)),
                ("cycles", n(*cycles)),
            ],
            TraceEvent::CpuCompute { kind, cycles } => {
                vec![("kind", s(kind)), ("cycles", n(*cycles))]
            }
            TraceEvent::Irq { source } => vec![("source", loc(*source))],
            TraceEvent::SeuInjected {
                frame,
                word,
                bit,
                double_bit,
            } => vec![
                ("frame", n(*frame)),
                ("word", n(*word)),
                ("bit", n(*bit)),
                ("double_bit", JsonValue::Bool(*double_bit)),
            ],
            TraceEvent::ScrubPass {
                frames,
                corrected,
                uncorrectable,
                waited,
            } => vec![
                ("frames", n(*frames)),
                ("corrected", n(*corrected)),
                ("uncorrectable", n(*uncorrectable)),
                ("waited", n(*waited)),
            ],
            TraceEvent::FrameRepaired { frame, words } => {
                vec![("frame", n(*frame)), ("words", n(*words))]
            }
            TraceEvent::RollbackCompleted { tile, frames } => {
                vec![("tile", loc(*tile)), ("frames", n(*frames))]
            }
            TraceEvent::RegionMoved {
                tile,
                frames,
                delta,
            } => vec![
                ("tile", loc(*tile)),
                ("frames", n(*frames)),
                ("delta", JsonValue::Number(*delta as f64)),
            ],
            TraceEvent::RegionReleased { tile, frames } => {
                vec![("tile", loc(*tile)), ("frames", n(*frames))]
            }
            TraceEvent::ReconfigAttempt {
                tile,
                kind,
                attempt,
                ok,
            } => vec![
                ("tile", loc(*tile)),
                ("kind", s(kind)),
                ("attempt", n(*attempt)),
                ("ok", JsonValue::Bool(*ok)),
            ],
            TraceEvent::RetryBackoff {
                tile,
                attempt,
                cycles,
            } => vec![
                ("tile", loc(*tile)),
                ("attempt", n(*attempt)),
                ("cycles", n(*cycles)),
            ],
            TraceEvent::Quarantine { tile, entered } => {
                vec![("tile", loc(*tile)), ("entered", JsonValue::Bool(*entered))]
            }
            TraceEvent::BitstreamCacheHit { tile, kind } => {
                vec![("tile", loc(*tile)), ("kind", s(kind))]
            }
            TraceEvent::CpuFallback { kind } => vec![("kind", s(kind))],
            TraceEvent::SchedDispatch {
                tile,
                ticket,
                depth,
            } => vec![
                ("tile", loc(*tile)),
                ("ticket", n(*ticket)),
                ("depth", n(*depth)),
            ],
            TraceEvent::RequestCoalesced {
                tile,
                kind,
                waiters,
            } => vec![
                ("tile", loc(*tile)),
                ("kind", s(kind)),
                ("waiters", n(*waiters)),
            ],
            TraceEvent::PbsCacheHit { tile, kind } => {
                vec![("tile", loc(*tile)), ("kind", s(kind))]
            }
            TraceEvent::WorkerDied { worker, ticket } => {
                vec![("worker", n(*worker)), ("ticket", n(*ticket))]
            }
            TraceEvent::TicketRedispatched {
                tile,
                ticket,
                attempt,
            } => vec![
                ("tile", loc(*tile)),
                ("ticket", n(*ticket)),
                ("attempt", n(*attempt)),
            ],
            TraceEvent::DeadlineMissed { tile, ticket, late } => vec![
                ("tile", loc(*tile)),
                ("ticket", n(*ticket)),
                ("late", n(*late)),
            ],
            TraceEvent::RequestShed { tile, ticket } => {
                vec![("tile", loc(*tile)), ("ticket", n(*ticket))]
            }
            TraceEvent::DefragPass { moves, frames } => {
                vec![("moves", n(*moves)), ("frames", n(*frames))]
            }
            TraceEvent::FrameStage { frame, stage } => {
                vec![("frame", n(*frame)), ("stage", s(stage))]
            }
            TraceEvent::FrameDone {
                frame,
                reconfigurations,
            } => vec![
                ("frame", n(*frame)),
                ("reconfigurations", n(*reconfigurations)),
            ],
            TraceEvent::FlowStage {
                design,
                stage,
                region,
            } => vec![
                ("design", s(design)),
                ("stage", s(stage)),
                ("region", s(region)),
            ],
            TraceEvent::BitstreamGenerated {
                design,
                region,
                kind,
                bytes,
            } => vec![
                ("design", s(design)),
                ("region", s(region)),
                ("kind", s(kind)),
                ("bytes", n(*bytes)),
            ],
        }
    }
}

/// One emitted record: a typed event plus where it sits in virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Emission order, dense from 0 per tracer.
    pub seq: u64,
    /// Clock domain `ts`/`dur` are expressed in.
    pub domain: ClockDomain,
    /// Start timestamp in the domain's unit.
    pub ts: u64,
    /// Duration in the domain's unit (0 = instant event).
    pub dur: u64,
    /// The typed payload.
    pub event: TraceEvent,
}

/// Where emitted records go. Implementations must be `Send` so traced
/// components can cross thread boundaries (the threaded runtime moves
/// the whole SoC into a worker thread).
pub trait TraceSink: Send {
    /// Accepts one record.
    fn record(&mut self, record: TraceRecord);

    /// The records retained so far, oldest first. Bounded sinks return
    /// only what they still hold.
    fn collected(&self) -> Vec<TraceRecord>;

    /// Takes all retained records, leaving the sink empty.
    fn drain(&mut self) -> Vec<TraceRecord>;
}

/// The per-component trace handle.
///
/// A disabled tracer (the default) skips payload construction entirely:
/// [`Tracer::emit`] takes the event as a closure and returns before
/// calling it when no sink is attached.
#[derive(Default)]
pub struct Tracer {
    sink: Option<SharedSink>,
    seq: u64,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.sink.is_some())
            .field("seq", &self.seq)
            .finish()
    }
}

impl Tracer {
    /// A tracer with no sink: every emit is a cheap no-op.
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// A tracer writing to `sink`.
    pub fn to_sink(sink: SharedSink) -> Tracer {
        Tracer {
            sink: Some(sink),
            seq: 0,
        }
    }

    /// Attaches `sink`; subsequent emits are recorded.
    pub fn attach(&mut self, sink: SharedSink) {
        self.sink = Some(sink);
    }

    /// Detaches and returns the current sink, disabling the tracer.
    pub fn detach(&mut self) -> Option<SharedSink> {
        self.sink.take()
    }

    /// Whether a sink is attached.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records a span of `dur` starting at `ts`. `build` only runs when a
    /// sink is attached.
    #[inline]
    pub fn emit(
        &mut self,
        domain: ClockDomain,
        ts: u64,
        dur: u64,
        build: impl FnOnce() -> TraceEvent,
    ) {
        let Some(sink) = &self.sink else { return };
        let record = TraceRecord {
            seq: self.seq,
            domain,
            ts,
            dur,
            event: build(),
        };
        self.seq += 1;
        crate::sink::record_to(sink, record);
    }

    /// Records an instant event at `ts`.
    #[inline]
    pub fn instant(&mut self, domain: ClockDomain, ts: u64, build: impl FnOnce() -> TraceEvent) {
        self.emit(domain, ts, 0, build);
    }
}

fn categories(records: &[TraceRecord]) -> Vec<&'static str> {
    let mut cats: Vec<&'static str> = Vec::new();
    for r in records {
        let c = r.event.category();
        if !cats.contains(&c) {
            cats.push(c);
        }
    }
    cats.sort_unstable();
    cats
}

/// Serializes records as a Chrome trace-event JSON document, loadable in
/// `chrome://tracing` or Perfetto. Processes map to clock domains,
/// threads to event categories; durations become complete (`"X"`) events
/// and instants become instant (`"i"`) events.
pub fn chrome_trace_json(records: &[TraceRecord]) -> String {
    let cats = categories(records);
    let tid_of = |c: &str| cats.iter().position(|x| *x == c).unwrap_or(0) as f64 + 1.0;
    let mut events = Vec::new();
    let mut domains: Vec<ClockDomain> = Vec::new();
    for r in records {
        if !domains.contains(&r.domain) {
            domains.push(r.domain);
        }
    }
    for d in &domains {
        events.push(JsonValue::Object(vec![
            ("name".into(), JsonValue::String("process_name".into())),
            ("ph".into(), JsonValue::String("M".into())),
            ("pid".into(), JsonValue::Number(d.pid() as f64)),
            (
                "args".into(),
                JsonValue::Object(vec![(
                    "name".into(),
                    JsonValue::String(d.process_name().into()),
                )]),
            ),
        ]));
        for c in &cats {
            events.push(JsonValue::Object(vec![
                ("name".into(), JsonValue::String("thread_name".into())),
                ("ph".into(), JsonValue::String("M".into())),
                ("pid".into(), JsonValue::Number(d.pid() as f64)),
                ("tid".into(), JsonValue::Number(tid_of(c))),
                (
                    "args".into(),
                    JsonValue::Object(vec![("name".into(), JsonValue::String((*c).into()))]),
                ),
            ]));
        }
    }
    for r in records {
        let mut fields = vec![
            ("name".into(), JsonValue::String(r.event.name().into())),
            ("cat".into(), JsonValue::String(r.event.category().into())),
        ];
        if r.dur > 0 {
            fields.push(("ph".into(), JsonValue::String("X".into())));
        } else {
            fields.push(("ph".into(), JsonValue::String("i".into())));
            fields.push(("s".into(), JsonValue::String("t".into())));
        }
        fields.push((
            "ts".into(),
            JsonValue::Number(r.domain.to_trace_micros(r.ts)),
        ));
        if r.dur > 0 {
            fields.push((
                "dur".into(),
                JsonValue::Number(r.domain.to_trace_micros(r.dur)),
            ));
        }
        fields.push(("pid".into(), JsonValue::Number(r.domain.pid() as f64)));
        fields.push(("tid".into(), JsonValue::Number(tid_of(r.event.category()))));
        let args = r
            .event
            .args()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        fields.push(("args".into(), JsonValue::Object(args)));
        events.push(JsonValue::Object(fields));
    }
    JsonValue::Object(vec![
        ("traceEvents".into(), JsonValue::Array(events)),
        ("displayTimeUnit".into(), JsonValue::String("ms".into())),
    ])
    .pretty()
}

/// Serializes records as deterministic one-line-per-record text:
/// `seq domain ts=.. dur=.. name key=value ...`. Two identical runs
/// produce byte-identical output, which the determinism tests rely on.
pub fn log_lines(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&format!(
            "{:06} {} ts={} dur={} {}",
            r.seq,
            r.domain.label(),
            r.ts,
            r.dur,
            r.event.name()
        ));
        for (k, v) in r.event.args() {
            out.push(' ');
            out.push_str(k);
            out.push('=');
            out.push_str(&v.pretty());
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::sink::MemorySink;

    #[test]
    fn disabled_tracer_never_builds_events() {
        let mut tracer = Tracer::disabled();
        let mut built = false;
        tracer.emit(ClockDomain::SocCycles, 0, 10, || {
            built = true;
            TraceEvent::Irq {
                source: Loc::new(0, 0),
            }
        });
        assert!(!built);
        assert!(!tracer.is_enabled());
    }

    #[test]
    fn attached_tracer_records_in_sequence() {
        let sink = MemorySink::shared();
        let mut tracer = Tracer::to_sink(sink.clone());
        tracer.emit(ClockDomain::SocCycles, 5, 10, || TraceEvent::DramAccess {
            bytes: 64,
            waited: 0,
        });
        tracer.instant(ClockDomain::SocCycles, 15, || TraceEvent::Irq {
            source: Loc::new(1, 2),
        });
        let records = crate::sink::snapshot(&sink);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[1].seq, 1);
        assert_eq!(records[1].dur, 0);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_metadata() {
        let records = vec![
            TraceRecord {
                seq: 0,
                domain: ClockDomain::SocCycles,
                ts: 78,
                dur: 78,
                event: TraceEvent::DramAccess {
                    bytes: 128,
                    waited: 4,
                },
            },
            TraceRecord {
                seq: 1,
                domain: ClockDomain::CadMilliMinutes,
                ts: 1500,
                dur: 0,
                event: TraceEvent::FlowStage {
                    design: "soc_1".into(),
                    stage: "synthesis".into(),
                    region: String::new(),
                },
            },
        ];
        let doc = chrome_trace_json(&records);
        let v = json::parse(&doc).expect("valid JSON");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        // 2 domains × (1 process + 2 threads) metadata + 2 payload events.
        assert_eq!(events.len(), 8);
        let payload = &events[events.len() - 2];
        assert_eq!(payload.get("name").unwrap().as_str(), Some("dram.access"));
        assert_eq!(payload.get("ph").unwrap().as_str(), Some("X"));
    }

    #[test]
    fn log_lines_are_deterministic() {
        let records = vec![TraceRecord {
            seq: 0,
            domain: ClockDomain::SocCycles,
            ts: 10,
            dur: 5,
            event: TraceEvent::Quarantine {
                tile: Loc::new(2, 1),
                entered: true,
            },
        }];
        let a = log_lines(&records);
        let b = log_lines(&records);
        assert_eq!(a, b);
        assert_eq!(
            a,
            "000000 soc-cycles ts=10 dur=5 quarantine tile=\"2,1\" entered=true\n"
        );
    }

    #[test]
    fn every_event_has_consistent_metadata() {
        let loc = Loc::new(0, 0);
        let events = vec![
            TraceEvent::DramAccess {
                bytes: 1,
                waited: 0,
            },
            TraceEvent::NocTransfer {
                plane: "dma",
                src: loc,
                dst: loc,
                bytes: 1,
                flits: 1,
                hops: 0,
                waited: 0,
            },
            TraceEvent::DmaBurst {
                tile: loc,
                bytes: 1,
                direction: "in",
            },
            TraceEvent::DecouplerHandshake {
                tile: loc,
                decouple: true,
                delay: 0,
            },
            TraceEvent::IcapWrite {
                tile: loc,
                words: 1,
                ok: true,
                waited: 0,
            },
            TraceEvent::Reconfiguration {
                tile: loc,
                kind: "mac".into(),
                bytes: 1,
                ok: true,
            },
            TraceEvent::Compute {
                tile: loc,
                kind: "mac".into(),
                cycles: 1,
            },
            TraceEvent::CpuCompute {
                kind: "mac".into(),
                cycles: 1,
            },
            TraceEvent::Irq { source: loc },
            TraceEvent::SeuInjected {
                frame: 1,
                word: 0,
                bit: 3,
                double_bit: false,
            },
            TraceEvent::ScrubPass {
                frames: 1,
                corrected: 1,
                uncorrectable: 0,
                waited: 0,
            },
            TraceEvent::FrameRepaired { frame: 1, words: 1 },
            TraceEvent::RollbackCompleted {
                tile: loc,
                frames: 1,
            },
            TraceEvent::RegionMoved {
                tile: loc,
                frames: 2,
                delta: -3,
            },
            TraceEvent::RegionReleased {
                tile: loc,
                frames: 2,
            },
            TraceEvent::ReconfigAttempt {
                tile: loc,
                kind: "mac".into(),
                attempt: 1,
                ok: true,
            },
            TraceEvent::RetryBackoff {
                tile: loc,
                attempt: 1,
                cycles: 1,
            },
            TraceEvent::Quarantine {
                tile: loc,
                entered: true,
            },
            TraceEvent::BitstreamCacheHit {
                tile: loc,
                kind: "mac".into(),
            },
            TraceEvent::CpuFallback { kind: "mac".into() },
            TraceEvent::SchedDispatch {
                tile: loc,
                ticket: 7,
                depth: 2,
            },
            TraceEvent::RequestCoalesced {
                tile: loc,
                kind: "mac".into(),
                waiters: 3,
            },
            TraceEvent::PbsCacheHit {
                tile: loc,
                kind: "mac".into(),
            },
            TraceEvent::WorkerDied {
                worker: 1,
                ticket: 7,
            },
            TraceEvent::TicketRedispatched {
                tile: loc,
                ticket: 7,
                attempt: 1,
            },
            TraceEvent::DeadlineMissed {
                tile: loc,
                ticket: 7,
                late: 12,
            },
            TraceEvent::RequestShed {
                tile: loc,
                ticket: 7,
            },
            TraceEvent::DefragPass {
                moves: 1,
                frames: 2,
            },
            TraceEvent::FrameStage {
                frame: 0,
                stage: "debayer".into(),
            },
            TraceEvent::FrameDone {
                frame: 0,
                reconfigurations: 0,
            },
            TraceEvent::FlowStage {
                design: "d".into(),
                stage: "synth".into(),
                region: String::new(),
            },
            TraceEvent::BitstreamGenerated {
                design: "d".into(),
                region: "r".into(),
                kind: "mac".into(),
                bytes: 1,
            },
        ];
        for e in events {
            assert!(!e.name().is_empty());
            assert!(!e.category().is_empty());
            assert!(!e.args().is_empty());
        }
    }
}
