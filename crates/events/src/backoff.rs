//! Retry backoff arithmetic shared by the runtime layers.

/// Exponential backoff before the retry following failed attempt number
/// `attempt` (1-based): `base * multiplier^(attempt - 1)`, saturating.
/// With `multiplier == 1` the backoff is constant; with `base == 0`
/// retries are immediate.
pub fn exponential(base: u64, multiplier: u64, attempt: u32) -> u64 {
    base.saturating_mul(multiplier.saturating_pow(attempt.saturating_sub(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_geometrically() {
        assert_eq!(exponential(100, 2, 1), 100);
        assert_eq!(exponential(100, 2, 2), 200);
        assert_eq!(exponential(100, 2, 3), 400);
    }

    #[test]
    fn degenerate_parameters_are_safe() {
        assert_eq!(exponential(0, 2, 5), 0);
        assert_eq!(exponential(100, 1, 9), 100);
        assert_eq!(exponential(u64::MAX, 2, 3), u64::MAX);
        assert_eq!(exponential(100, 2, 0), 100);
    }
}
