//! The PR-ESP virtual-time kernel.
//!
//! Every layer of the reproduction models time: the SoC simulator counts
//! 78 MHz fabric cycles, the runtime manager counts backoff cycles on the
//! same clock, and the CAD flow reports analytic minutes. This crate is
//! the one place that arithmetic lives:
//!
//! - [`VirtualClock`] — a monotonic `now`/`horizon` pair that every
//!   completion time is folded into.
//! - [`ResourceTimeline`] — reservation-based arbitration of one shared
//!   resource (a NoC link, the DRAM channel, the ICAP, a tile), with
//!   busy/contention accounting.
//! - [`Tracer`] / [`TraceSink`] — a structured trace layer that is free
//!   when disabled: event payloads are built inside closures that never
//!   run without an attached sink.
//! - [`json`] — the hand-rolled JSON reader/writer shared by the SoC
//!   configuration flow and the trace exporters.
//!
//! Traces serialize to Chrome trace-event JSON
//! ([`trace::chrome_trace_json`], loadable in `chrome://tracing` or
//! Perfetto) or to deterministic log lines ([`trace::log_lines`]) for
//! byte-for-byte reproducibility tests.

pub mod backoff;
pub mod clock;
pub mod json;
pub mod sink;
pub mod timeline;
pub mod trace;

pub use clock::{cycles_to_micros, cycles_to_seconds, VirtualClock, SOC_CLOCK_MHZ};
pub use sink::{MemorySink, RingBufferSink, ShardedSink, SharedSink};
pub use timeline::{Reservation, ResourceTimeline, TimelineEpoch};
pub use trace::{milliminutes, ClockDomain, Loc, TraceEvent, TraceRecord, TraceSink, Tracer};
