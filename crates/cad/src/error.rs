//! Error type for the CAD engine.

use std::fmt;

/// Errors produced by the CAD engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The design specification is inconsistent (empty static part, no name,
    /// duplicate module names, ...).
    BadSpec {
        /// Human-readable description.
        detail: String,
    },
    /// A module does not fit the region it is being placed into.
    RegionOverflow {
        /// Module being placed.
        module: String,
        /// Human-readable capacity summary.
        detail: String,
    },
    /// The whole design exceeds the device.
    DeviceOverflow {
        /// Human-readable utilization summary.
        detail: String,
    },
    /// A schedule references an unknown reconfigurable module.
    UnknownModule {
        /// The missing module name.
        name: String,
    },
    /// A semi-parallel schedule was requested with an unusable τ.
    BadParallelism {
        /// Requested τ.
        tau: usize,
        /// Number of reconfigurable modules.
        modules: usize,
    },
    /// Fabric-model error (propagated from `presp-fpga`).
    Fabric(presp_fpga::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::BadSpec { detail } => write!(f, "bad design spec: {detail}"),
            Error::RegionOverflow { module, detail } => {
                write!(f, "module '{module}' overflows its region: {detail}")
            }
            Error::DeviceOverflow { detail } => write!(f, "design exceeds device: {detail}"),
            Error::UnknownModule { name } => write!(f, "unknown reconfigurable module '{name}'"),
            Error::BadParallelism { tau, modules } => {
                write!(
                    f,
                    "invalid parallelism τ={tau} for {modules} reconfigurable modules"
                )
            }
            Error::Fabric(e) => write!(f, "fabric error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Fabric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<presp_fpga::Error> for Error {
    fn from(e: presp_fpga::Error) -> Error {
        Error::Fabric(e)
    }
}
