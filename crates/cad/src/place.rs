//! Analytic region placement and configuration-frame generation.
//!
//! Placement distributes a module's logic uniformly across the resource
//! columns of its target region (a pblock for a reconfigurable module, the
//! rest of the fabric for the static part). Uniform spread is what an
//! analytic placer converges to at the region granularity this simulation
//! works at, and it yields the two quantities downstream stages need: a
//! feasibility verdict and per-column fill fractions, from which the
//! configuration frames — and therefore partial bitstream sizes and
//! reconfiguration latencies — are derived.

use crate::error::Error;
use presp_fpga::bitstream::{Bitstream, BitstreamBuilder, BitstreamKind};
use presp_fpga::fabric::Device;
use presp_fpga::frame::{frames_per_column, FrameAddress};
use presp_fpga::pblock::Pblock;
use presp_fpga::resources::Resources;
use serde::{Deserialize, Serialize};

/// Fraction of a fully-utilized column's frames that carry configuration
/// content distinct from the erased background.
///
/// Real frames are sparse: LUT equations, used routing PIPs and initialized
/// BRAM occupy a minority of frame words, and Vivado's compression elides
/// both blank frames and repeated interconnect patterns via multi-frame
/// writes. This density constant calibrates compressed partial-bitstream
/// sizes to the hundreds-of-kilobytes range Table VI reports.
pub const FRAME_CONTENT_DENSITY: f64 = 0.18;

/// Per-kind fill fractions of a placed region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FillFractions {
    /// CLB-column fill.
    pub lut: f64,
    /// BRAM-column fill.
    pub bram: f64,
    /// DSP-column fill.
    pub dsp: f64,
}

/// A module placed into a region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionPlacement {
    /// The region rectangle.
    pub pblock: Pblock,
    /// Resources the module needed.
    pub placed: Resources,
    /// Capacity of the region.
    pub capacity: Resources,
    /// Uniform fill fractions per resource kind.
    pub fill: FillFractions,
}

impl RegionPlacement {
    /// Overall LUT utilization of the region.
    pub fn utilization(&self) -> f64 {
        self.fill.lut
    }
}

/// Places `need` into `pblock` on `device`, spreading the logic uniformly.
///
/// # Errors
///
/// Returns [`Error::RegionOverflow`] when any resource kind exceeds the
/// region's capacity, or a fabric error for an illegal pblock.
pub fn place_in_region(
    device: &Device,
    module: &str,
    pblock: Pblock,
    need: Resources,
) -> Result<RegionPlacement, Error> {
    let capacity = device.pblock_resources(&pblock)?;
    if !need.fits_in(&capacity) {
        return Err(Error::RegionOverflow {
            module: module.to_string(),
            detail: format!("need {need}, region provides {capacity}"),
        });
    }
    let frac = |n: u64, c: u64| if c == 0 { 0.0 } else { n as f64 / c as f64 };
    Ok(RegionPlacement {
        pblock,
        placed: need,
        capacity,
        fill: FillFractions {
            lut: frac(need.lut, capacity.lut),
            bram: frac(need.bram, capacity.bram),
            dsp: frac(need.dsp, capacity.dsp),
        },
    })
}

/// Deterministic frame-word generator (xorshift64*, seeded per frame).
fn frame_words(seed: u64, n: usize) -> Vec<u32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as u32
        })
        .collect()
}

/// Generates the configuration frames of a placed module.
///
/// For every column of the region, `fill × density` of its frames carry
/// deterministic pseudo-random content (seeded by `seed` and the frame
/// address — stable across runs) and the rest stay blank, which the
/// compressed bitstream mode elides.
///
/// # Errors
///
/// Propagates fabric errors for an illegal pblock.
pub fn placement_frames(
    device: &Device,
    placement: &RegionPlacement,
    seed: u64,
) -> Result<Vec<(FrameAddress, Vec<u32>)>, Error> {
    let words = device.part().family().frame_words();
    let mut out = Vec::new();
    for row in placement.pblock.row_range() {
        for col in placement.pblock.col_range() {
            let kind = device.column_kind(col);
            let total = frames_per_column(kind);
            let fill = match kind {
                presp_fpga::fabric::ColumnKind::Clb => placement.fill.lut,
                presp_fpga::fabric::ColumnKind::Bram => placement.fill.bram,
                presp_fpga::fabric::ColumnKind::Dsp => placement.fill.dsp,
                _ => 0.0,
            };
            let used = ((total as f64) * fill * FRAME_CONTENT_DENSITY).ceil() as usize;
            for minor in 0..total {
                let addr = FrameAddress::new(row as u32, col as u32, minor as u32);
                let content = if minor < used {
                    frame_words(
                        seed ^ ((row as u64) << 40) ^ ((col as u64) << 16) ^ minor as u64,
                        words,
                    )
                } else {
                    vec![0u32; words]
                };
                out.push((addr, content));
            }
        }
    }
    Ok(out)
}

/// Builds the partial bitstream of a placed reconfigurable module.
///
/// # Errors
///
/// Propagates fabric errors for an illegal pblock.
pub fn build_partial_bitstream(
    device: &Device,
    placement: &RegionPlacement,
    seed: u64,
    compressed: bool,
) -> Result<Bitstream, Error> {
    let mut builder = BitstreamBuilder::new(device, BitstreamKind::Partial);
    for (addr, frame) in placement_frames(device, placement, seed)? {
        builder.add_frame(addr, frame)?;
    }
    Ok(builder.build(compressed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use presp_fpga::part::FpgaPart;

    fn device() -> Device {
        FpgaPart::Vc707.device()
    }

    fn wide_pblock(device: &Device) -> Pblock {
        // Columns 1..120 of one clock-region row, skipping the cfg column
        // area would fail; stay left of the middle.
        let _ = device;
        Pblock::new(1, 60, 0, 1).unwrap()
    }

    #[test]
    fn placement_computes_fill_fractions() {
        let d = device();
        let pb = wide_pblock(&d);
        let cap = d.pblock_resources(&pb).unwrap();
        let need = Resources::new(cap.lut / 2, cap.ff / 2, cap.bram / 2, cap.dsp / 2);
        let placement = place_in_region(&d, "m", pb, need).unwrap();
        assert!((placement.fill.lut - 0.5).abs() < 0.05);
        assert!(placement.utilization() > 0.4);
    }

    #[test]
    fn overflow_is_rejected() {
        let d = device();
        let pb = wide_pblock(&d);
        let cap = d.pblock_resources(&pb).unwrap();
        let need = Resources::new(cap.lut + 1, 0, 0, 0);
        assert!(matches!(
            place_in_region(&d, "m", pb, need),
            Err(Error::RegionOverflow { .. })
        ));
    }

    #[test]
    fn frames_cover_whole_region() {
        let d = device();
        let pb = Pblock::new(1, 10, 0, 1).unwrap();
        let placement = place_in_region(&d, "m", pb, Resources::luts(100)).unwrap();
        let frames = placement_frames(&d, &placement, 7).unwrap();
        let expected: usize = pb
            .col_range()
            .map(|c| frames_per_column(d.column_kind(c)))
            .sum();
        assert_eq!(frames.len(), expected);
    }

    #[test]
    fn fuller_modules_have_larger_compressed_bitstreams() {
        let d = device();
        let pb = wide_pblock(&d);
        let cap = d.pblock_resources(&pb).unwrap();
        let small = place_in_region(&d, "s", pb, Resources::luts(cap.lut / 10)).unwrap();
        let large = place_in_region(&d, "l", pb, Resources::luts(cap.lut * 8 / 10)).unwrap();
        let bs_small = build_partial_bitstream(&d, &small, 1, true).unwrap();
        let bs_large = build_partial_bitstream(&d, &large, 1, true).unwrap();
        assert!(bs_large.size_bytes() > bs_small.size_bytes());
    }

    #[test]
    fn compression_shrinks_partial_bitstreams() {
        let d = device();
        let pb = wide_pblock(&d);
        let placement = place_in_region(&d, "m", pb, Resources::luts(10_000)).unwrap();
        let raw = build_partial_bitstream(&d, &placement, 3, false).unwrap();
        let compressed = build_partial_bitstream(&d, &placement, 3, true).unwrap();
        assert!(compressed.size_bytes() < raw.size_bytes() / 2);
    }

    #[test]
    fn frame_content_is_deterministic() {
        let d = device();
        let pb = Pblock::new(1, 8, 0, 1).unwrap();
        let placement = place_in_region(&d, "m", pb, Resources::luts(500)).unwrap();
        let a = placement_frames(&d, &placement, 42).unwrap();
        let b = placement_frames(&d, &placement, 42).unwrap();
        assert_eq!(a, b);
        let c = placement_frames(&d, &placement, 43).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn wami_sized_pbs_lands_in_table6_range() {
        // A Warp-sized module (34k LUTs) in a pblock provisioned at 80 % fill
        // should produce a compressed pbs in the few-hundred-KB range of
        // Table VI.
        let d = device();
        // ~42.5k LUTs of capacity: 107 CLB-ish columns over one row is the
        // whole row; use 2 rows × ~54 columns instead.
        let pb = Pblock::new(1, 60, 0, 2).unwrap();
        let cap = d.pblock_resources(&pb).unwrap();
        let need = Resources::luts((cap.lut as f64 * 0.8) as u64);
        let placement = place_in_region(&d, "warp", pb, need).unwrap();
        let pbs = build_partial_bitstream(&d, &placement, 9, true).unwrap();
        let kb = pbs.size_bytes() / 1024;
        assert!(kb > 100 && kb < 900, "pbs = {kb} KB");
    }
}
