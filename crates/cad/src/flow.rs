//! P&R scheduling: serial, semi-parallel and fully-parallel implementations
//! plus the monolithic (standard Xilinx DPR flow) baseline.

use crate::error::Error;
use crate::host::HostMachine;
use crate::model::{rm_group_run, serial_pnr, static_only_pnr, Minutes, PBLOCK_FILL};
use crate::spec::DprDesignSpec;
use crate::synth::{monolithic_synthesis, parallel_synthesis, SynthReport};
use presp_events::trace::ClockDomain;
use presp_events::{milliminutes, TraceEvent, Tracer};
use serde::{Deserialize, Serialize};

/// A P&R implementation strategy (Section IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// τ = 1: a single instance implements the whole design.
    Serial,
    /// 1 < τ < N: the RMs are grouped into τ concurrent instances, after a
    /// static-only pre-route.
    SemiParallel {
        /// Number of concurrent instances.
        tau: usize,
    },
    /// τ = N: every RM gets its own concurrent instance, after a static-only
    /// pre-route.
    FullyParallel,
}

impl Strategy {
    /// Maps a raw τ onto the strategy for a design with `n` RMs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadParallelism`] when `tau` is zero or exceeds `n`.
    pub fn from_tau(tau: usize, n: usize) -> Result<Strategy, Error> {
        match tau {
            0 => Err(Error::BadParallelism { tau, modules: n }),
            1 => Ok(Strategy::Serial),
            t if t == n => Ok(Strategy::FullyParallel),
            t if t < n => Ok(Strategy::SemiParallel { tau: t }),
            _ => Err(Error::BadParallelism { tau, modules: n }),
        }
    }

    /// The τ this strategy uses on a design with `n` RMs.
    pub fn tau(&self, n: usize) -> usize {
        match self {
            Strategy::Serial => 1,
            Strategy::SemiParallel { tau } => *tau,
            Strategy::FullyParallel => n,
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::Serial => write!(f, "serial"),
            Strategy::SemiParallel { tau } => write!(f, "semi-parallel (τ={tau})"),
            Strategy::FullyParallel => write!(f, "fully-parallel"),
        }
    }
}

/// One concurrent in-context P&R instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupRun {
    /// RM names implemented by this instance.
    pub modules: Vec<String>,
    /// Solo runtime of the instance (before host contention).
    pub solo: Minutes,
}

/// The result of one P&R schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PnrReport {
    /// Strategy executed.
    pub strategy: Strategy,
    /// Static-only pre-route time (`None` for serial).
    pub t_static: Option<Minutes>,
    /// Concurrent RM instances (empty for serial).
    pub groups: Vec<GroupRun>,
    /// `max{Ω_i}` after host contention (`None` for serial).
    pub max_omega: Option<Minutes>,
    /// Total wall-clock P&R time.
    pub wall: Minutes,
}

impl PnrReport {
    /// Total wall-clock minutes.
    pub fn wall_minutes(&self) -> f64 {
        self.wall.0
    }
}

/// A full-flow result: synthesis + P&R.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FullFlowReport {
    /// Parallel synthesis stage.
    pub synth: SynthReport,
    /// P&R stage.
    pub pnr: PnrReport,
    /// End-to-end wall-clock.
    pub total: Minutes,
}

/// The monolithic baseline: single-instance synthesis + single-instance P&R
/// (the standard Xilinx DPR flow of Table V).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonolithicReport {
    /// Whole-design synthesis time.
    pub synth: Minutes,
    /// Whole-design P&R time.
    pub pnr: Minutes,
    /// End-to-end wall-clock.
    pub total: Minutes,
}

/// The CAD flow engine: schedules P&R runs on a host machine.
#[derive(Debug, Clone, Default)]
pub struct CadFlow {
    host: HostMachine,
}

impl CadFlow {
    /// A flow on the paper's 16-core characterization host.
    pub fn new() -> CadFlow {
        CadFlow::default()
    }

    /// A flow on a custom host.
    pub fn with_host(host: HostMachine) -> CadFlow {
        CadFlow { host }
    }

    /// The host machine.
    pub fn host(&self) -> &HostMachine {
        &self.host
    }

    /// Runs the P&R stage of `spec` under `strategy`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadParallelism`] for an unusable τ (e.g.
    /// semi-parallel on a single-RM design — the paper's Class 2.2, which
    /// "can only be implemented in a serial mode").
    pub fn run_pnr(&self, spec: &DprDesignSpec, strategy: Strategy) -> Result<PnrReport, Error> {
        self.run_pnr_traced(spec, strategy, &mut Tracer::disabled())
    }

    /// Like [`CadFlow::run_pnr`], emitting [`TraceEvent::FlowStage`] spans
    /// (on the CAD milliminute timeline, starting at 0) through `tracer`.
    ///
    /// # Errors
    ///
    /// Same as [`CadFlow::run_pnr`].
    pub fn run_pnr_traced(
        &self,
        spec: &DprDesignSpec,
        strategy: Strategy,
        tracer: &mut Tracer,
    ) -> Result<PnrReport, Error> {
        let report = self.pnr(spec, strategy)?;
        trace_pnr(spec.name(), &report, 0, tracer);
        Ok(report)
    }

    fn pnr(&self, spec: &DprDesignSpec, strategy: Strategy) -> Result<PnrReport, Error> {
        let n = spec.reconfigurable().len();
        let static_kluts = spec.static_resources().lut as f64 / 1000.0;
        let total_kluts = spec.total_resources().lut as f64 / 1000.0;

        match strategy {
            Strategy::Serial => {
                let wall = serial_pnr(total_kluts);
                Ok(PnrReport {
                    strategy,
                    t_static: None,
                    groups: Vec::new(),
                    max_omega: None,
                    wall,
                })
            }
            Strategy::SemiParallel { tau } if tau < 2 || tau >= n => {
                Err(Error::BadParallelism { tau, modules: n })
            }
            Strategy::FullyParallel if n == 0 => Err(Error::BadParallelism { tau: 0, modules: 0 }),
            _ => {
                let tau = strategy.tau(n);
                // Pblocks block off requirement / fill of fabric.
                let blocked_kluts = spec.reconfigurable_total().lut as f64 / 1000.0 / PBLOCK_FILL;
                let t_static = static_only_pnr(static_kluts, blocked_kluts, n);
                let groups = lpt_groups(spec, tau);
                let runs: Vec<GroupRun> = groups
                    .into_iter()
                    .map(|members| {
                        let kluts: Vec<f64> = members
                            .iter()
                            .map(|m| {
                                spec.rm(m).expect("grouped from spec").resources.lut as f64 / 1000.0
                            })
                            .collect();
                        GroupRun {
                            modules: members,
                            solo: rm_group_run(static_kluts, &kluts),
                        }
                    })
                    .collect();
                let solos: Vec<Minutes> = runs.iter().map(|g| g.solo).collect();
                let max_omega = self.host.concurrent_wall(&solos);
                Ok(PnrReport {
                    strategy,
                    t_static: Some(t_static),
                    groups: runs,
                    max_omega: Some(max_omega),
                    wall: t_static + max_omega,
                })
            }
        }
    }

    /// Runs the complete PR-ESP flow (parallel synthesis + scheduled P&R).
    ///
    /// # Errors
    ///
    /// Propagates spec and parallelism errors.
    pub fn run_full_flow(
        &self,
        spec: &DprDesignSpec,
        strategy: Strategy,
    ) -> Result<FullFlowReport, Error> {
        self.run_full_flow_traced(spec, strategy, &mut Tracer::disabled())
    }

    /// Like [`CadFlow::run_full_flow`], emitting [`TraceEvent::FlowStage`]
    /// spans through `tracer`: synthesis from 0, P&R stages after it, all on
    /// the CAD milliminute timeline. Table V's PR-ESP column is the end of
    /// the last span.
    ///
    /// # Errors
    ///
    /// Same as [`CadFlow::run_full_flow`].
    pub fn run_full_flow_traced(
        &self,
        spec: &DprDesignSpec,
        strategy: Strategy,
        tracer: &mut Tracer,
    ) -> Result<FullFlowReport, Error> {
        let synth = parallel_synthesis(spec, &self.host)?;
        let pnr = self.pnr(spec, strategy)?;
        let synth_mm = milliminutes(synth.wall.value());
        tracer.emit(ClockDomain::CadMilliMinutes, 0, synth_mm, || {
            TraceEvent::FlowStage {
                design: spec.name().to_string(),
                stage: "synthesis".to_string(),
                region: String::new(),
            }
        });
        trace_pnr(spec.name(), &pnr, synth_mm, tracer);
        let total = synth.wall + pnr.wall;
        Ok(FullFlowReport { synth, pnr, total })
    }

    /// Runs the monolithic baseline (standard Xilinx DPR flow, always a
    /// single Vivado instance).
    pub fn run_monolithic(&self, spec: &DprDesignSpec) -> MonolithicReport {
        self.run_monolithic_traced(spec, &mut Tracer::disabled())
    }

    /// Like [`CadFlow::run_monolithic`], emitting the baseline's two
    /// [`TraceEvent::FlowStage`] spans (`synthesis-monolithic`,
    /// `pnr-monolithic`) through `tracer` so Table V's comparison is
    /// derivable from one trace.
    pub fn run_monolithic_traced(
        &self,
        spec: &DprDesignSpec,
        tracer: &mut Tracer,
    ) -> MonolithicReport {
        let total_kluts = spec.total_resources().lut as f64 / 1000.0;
        let synth = monolithic_synthesis(spec);
        let pnr = crate::model::monolithic_pnr(total_kluts);
        let stage = |name: &str| TraceEvent::FlowStage {
            design: spec.name().to_string(),
            stage: name.to_string(),
            region: String::new(),
        };
        tracer.emit(
            ClockDomain::CadMilliMinutes,
            0,
            milliminutes(synth.value()),
            || stage("synthesis-monolithic"),
        );
        tracer.emit(
            ClockDomain::CadMilliMinutes,
            milliminutes(synth.value()),
            milliminutes(pnr.value()),
            || stage("pnr-monolithic"),
        );
        MonolithicReport {
            synth,
            pnr,
            total: synth + pnr,
        }
    }
}

/// Emits one span per P&R scheduling step, starting at `at` milliminutes:
/// `pnr-serial` for the single-instance schedule, or `pnr-static` followed
/// by one `pnr-group` span per concurrent instance (tagged with its RM
/// group in `region`) and a `pnr-parallel` envelope covering the
/// host-contended `max{Ω_i}`.
fn trace_pnr(design: &str, report: &PnrReport, at: u64, tracer: &mut Tracer) {
    if !tracer.is_enabled() {
        return;
    }
    let stage = |name: &str, region: String| TraceEvent::FlowStage {
        design: design.to_string(),
        stage: name.to_string(),
        region,
    };
    match report.t_static {
        None => {
            tracer.emit(
                ClockDomain::CadMilliMinutes,
                at,
                milliminutes(report.wall.value()),
                || stage("pnr-serial", String::new()),
            );
        }
        Some(t_static) => {
            tracer.emit(
                ClockDomain::CadMilliMinutes,
                at,
                milliminutes(t_static.value()),
                || stage("pnr-static", String::new()),
            );
            let groups_at = at + milliminutes(t_static.value());
            for group in &report.groups {
                tracer.emit(
                    ClockDomain::CadMilliMinutes,
                    groups_at,
                    milliminutes(group.solo.value()),
                    || stage("pnr-group", group.modules.join("+")),
                );
            }
            if let Some(max_omega) = report.max_omega {
                tracer.emit(
                    ClockDomain::CadMilliMinutes,
                    groups_at,
                    milliminutes(max_omega.value()),
                    || stage("pnr-parallel", String::new()),
                );
            }
        }
    }
}

/// Longest-processing-time grouping: RMs sorted by descending size, each
/// assigned to the least-loaded of `tau` groups. Returns the member names
/// per group (empty groups are dropped).
fn lpt_groups(spec: &DprDesignSpec, tau: usize) -> Vec<Vec<String>> {
    let mut rms: Vec<(&str, u64)> = spec
        .reconfigurable()
        .iter()
        .map(|r| (r.name.as_str(), r.resources.lut))
        .collect();
    rms.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let mut groups: Vec<(u64, Vec<String>)> = vec![(0, Vec::new()); tau.max(1)];
    for (name, luts) in rms {
        let g = groups
            .iter_mut()
            .min_by_key(|(load, _)| *load)
            .expect("tau >= 1");
        g.0 += luts;
        g.1.push(name.to_string());
    }
    groups
        .into_iter()
        .filter(|(_, m)| !m.is_empty())
        .map(|(_, m)| m)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use presp_fpga::part::FpgaPart;
    use presp_fpga::resources::Resources;

    /// SOC_2 of the characterization (Class 1.2).
    fn soc2() -> DprDesignSpec {
        DprDesignSpec::builder("soc2", FpgaPart::Vc707)
            .static_part(Resources::luts(82_267))
            .reconfigurable("conv2d", Resources::luts(36_741))
            .reconfigurable("gemm", Resources::luts(30_617))
            .reconfigurable("fft", Resources::luts(33_690))
            .reconfigurable("sort", Resources::luts(20_468))
            .build()
            .unwrap()
    }

    /// SOC_1 of the characterization (Class 1.1): sixteen small MACs.
    fn soc1() -> DprDesignSpec {
        let mut b =
            DprDesignSpec::builder("soc1", FpgaPart::Vc707).static_part(Resources::luts(82_267));
        for i in 0..16 {
            b = b.reconfigurable(format!("mac{i}"), Resources::luts(2_450));
        }
        b.build().unwrap()
    }

    #[test]
    fn strategy_from_tau() {
        assert_eq!(Strategy::from_tau(1, 4).unwrap(), Strategy::Serial);
        assert_eq!(
            Strategy::from_tau(2, 4).unwrap(),
            Strategy::SemiParallel { tau: 2 }
        );
        assert_eq!(Strategy::from_tau(4, 4).unwrap(), Strategy::FullyParallel);
        assert!(Strategy::from_tau(0, 4).is_err());
        assert!(Strategy::from_tau(5, 4).is_err());
    }

    #[test]
    fn serial_report_has_no_static_step() {
        let flow = CadFlow::new();
        let report = flow.run_pnr(&soc2(), Strategy::Serial).unwrap();
        assert!(report.t_static.is_none());
        assert!(report.groups.is_empty());
        assert!(report.wall.0 > 0.0);
    }

    #[test]
    fn fully_parallel_gives_one_group_per_rm() {
        let flow = CadFlow::new();
        let report = flow.run_pnr(&soc2(), Strategy::FullyParallel).unwrap();
        assert_eq!(report.groups.len(), 4);
        assert!(report.groups.iter().all(|g| g.modules.len() == 1));
        let wall = report.t_static.unwrap() + report.max_omega.unwrap();
        assert!((report.wall.0 - wall.0).abs() < 1e-9);
    }

    #[test]
    fn semi_parallel_balances_groups() {
        let flow = CadFlow::new();
        let report = flow
            .run_pnr(&soc2(), Strategy::SemiParallel { tau: 2 })
            .unwrap();
        assert_eq!(report.groups.len(), 2);
        let sizes: Vec<usize> = report.groups.iter().map(|g| g.modules.len()).collect();
        assert_eq!(sizes, vec![2, 2]);
    }

    #[test]
    fn class_1_2_prefers_fully_parallel() {
        // The headline Table III result for SOC_2: τ=4 beats τ=2,3 and serial.
        let flow = CadFlow::new();
        let serial = flow.run_pnr(&soc2(), Strategy::Serial).unwrap().wall.0;
        let semi2 = flow
            .run_pnr(&soc2(), Strategy::SemiParallel { tau: 2 })
            .unwrap()
            .wall
            .0;
        let semi3 = flow
            .run_pnr(&soc2(), Strategy::SemiParallel { tau: 3 })
            .unwrap()
            .wall
            .0;
        let full = flow
            .run_pnr(&soc2(), Strategy::FullyParallel)
            .unwrap()
            .wall
            .0;
        assert!(
            full < semi3 && semi3 < semi2 && semi2 < serial,
            "full {full:.0}, semi3 {semi3:.0}, semi2 {semi2:.0}, serial {serial:.0}"
        );
    }

    #[test]
    fn class_1_1_prefers_serial() {
        // The paper's counter-intuitive SOC_1 result: serial beats every
        // parallel configuration for many-small-RM designs.
        let flow = CadFlow::new();
        let serial = flow.run_pnr(&soc1(), Strategy::Serial).unwrap().wall.0;
        for tau in [2usize, 4, 8, 16] {
            let strategy = Strategy::from_tau(tau, 16).unwrap();
            let t = flow.run_pnr(&soc1(), strategy).unwrap().wall.0;
            assert!(serial < t, "τ={tau}: serial {serial:.0} vs parallel {t:.0}");
        }
    }

    #[test]
    fn bad_parallelism_is_rejected() {
        let flow = CadFlow::new();
        assert!(flow
            .run_pnr(&soc2(), Strategy::SemiParallel { tau: 4 })
            .is_err());
        assert!(flow
            .run_pnr(&soc2(), Strategy::SemiParallel { tau: 1 })
            .is_err());
    }

    #[test]
    fn full_flow_totals_add_up() {
        let flow = CadFlow::new();
        let report = flow
            .run_full_flow(&soc2(), Strategy::FullyParallel)
            .unwrap();
        assert!((report.total.0 - report.synth.wall.0 - report.pnr.wall.0).abs() < 1e-9);
    }

    #[test]
    fn pr_esp_beats_monolithic_on_class_1_2() {
        // Table V: SoC_A (Class 1.2) improves by ~19 % over monolithic.
        let flow = CadFlow::new();
        let presp = flow
            .run_full_flow(&soc2(), Strategy::FullyParallel)
            .unwrap()
            .total
            .0;
        let mono = flow.run_monolithic(&soc2()).total.0;
        assert!(presp < mono, "PR-ESP {presp:.0} vs monolithic {mono:.0}");
    }

    #[test]
    fn monolithic_beats_pr_esp_serial_slightly_on_class_1_1() {
        // Table V: SoC_B (Class 1.1) is ~2.5 % slower in PR-ESP.
        let flow = CadFlow::new();
        let presp = flow
            .run_full_flow(&soc1(), Strategy::Serial)
            .unwrap()
            .total
            .0;
        let mono = flow.run_monolithic(&soc1()).total.0;
        assert!(
            presp > mono * 0.95 && presp < mono * 1.25,
            "PR-ESP serial {presp:.0} vs monolithic {mono:.0}"
        );
    }
}
