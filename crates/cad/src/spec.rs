//! DPR design specifications consumed by the CAD flow.

use crate::error::Error;
use presp_fpga::part::FpgaPart;
use presp_fpga::resources::Resources;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One reconfigurable module (the contents of one reconfigurable tile).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RmSpec {
    /// Instance name (unique within a design).
    pub name: String,
    /// Post-synthesis resource footprint.
    pub resources: Resources,
}

/// A complete DPR design: the static part plus its reconfigurable modules.
///
/// Built with [`DprDesignSpec::builder`]; see the crate-level example.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DprDesignSpec {
    name: String,
    part: FpgaPart,
    static_resources: Resources,
    reconfigurable: Vec<RmSpec>,
}

impl DprDesignSpec {
    /// Starts building a design spec.
    pub fn builder(name: impl Into<String>, part: FpgaPart) -> DprDesignSpecBuilder {
        DprDesignSpecBuilder {
            name: name.into(),
            part,
            static_resources: Resources::ZERO,
            reconfigurable: Vec::new(),
        }
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Target part.
    pub fn part(&self) -> FpgaPart {
        self.part
    }

    /// Resources of the static part (every non-reconfigurable tile, the NoC
    /// and the sockets).
    pub fn static_resources(&self) -> Resources {
        self.static_resources
    }

    /// The reconfigurable modules.
    pub fn reconfigurable(&self) -> &[RmSpec] {
        &self.reconfigurable
    }

    /// Looks up a reconfigurable module by name.
    pub fn rm(&self, name: &str) -> Option<&RmSpec> {
        self.reconfigurable.iter().find(|r| r.name == name)
    }

    /// Sum of all reconfigurable module resources.
    pub fn reconfigurable_total(&self) -> Resources {
        self.reconfigurable.iter().map(|r| r.resources).sum()
    }

    /// Total design resources (static + all reconfigurable modules).
    pub fn total_resources(&self) -> Resources {
        self.static_resources + self.reconfigurable_total()
    }

    /// The paper's Eq. (1) size metrics `(κ, α_av, γ)` against the part's
    /// nominal LUT capacity.
    ///
    /// `κ` is the static fraction of the device, `α_av` the average
    /// reconfigurable-module fraction, `γ` the reconfigurable-to-static
    /// ratio. Returns `(κ, 0, 0)` for a design with no reconfigurable
    /// modules.
    pub fn size_metrics(&self) -> (f64, f64, f64) {
        let lut_tot = self.part.nominal_capacity().lut as f64;
        let static_luts = self.static_resources.lut as f64;
        let kappa = static_luts / lut_tot;
        let n = self.reconfigurable.len();
        if n == 0 || static_luts == 0.0 {
            return (kappa, 0.0, 0.0);
        }
        let sum: u64 = self.reconfigurable.iter().map(|r| r.resources.lut).sum();
        let alpha_av = sum as f64 / (n as f64 * lut_tot);
        let gamma = sum as f64 / static_luts;
        (kappa, alpha_av, gamma)
    }
}

/// Builder for [`DprDesignSpec`].
#[derive(Debug, Clone)]
pub struct DprDesignSpecBuilder {
    name: String,
    part: FpgaPart,
    static_resources: Resources,
    reconfigurable: Vec<RmSpec>,
}

impl DprDesignSpecBuilder {
    /// Sets the static part's resources.
    pub fn static_part(mut self, resources: Resources) -> Self {
        self.static_resources = resources;
        self
    }

    /// Adds a reconfigurable module.
    pub fn reconfigurable(mut self, name: impl Into<String>, resources: Resources) -> Self {
        self.reconfigurable.push(RmSpec {
            name: name.into(),
            resources,
        });
        self
    }

    /// Finalizes the spec.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadSpec`] for an empty name, a zero-LUT static part,
    /// duplicate module names or a zero-LUT module; and
    /// [`Error::DeviceOverflow`] when the total exceeds the part's nominal
    /// capacity.
    pub fn build(self) -> Result<DprDesignSpec, Error> {
        if self.name.is_empty() {
            return Err(Error::BadSpec {
                detail: "design name is empty".into(),
            });
        }
        if self.static_resources.lut == 0 {
            return Err(Error::BadSpec {
                detail: "static part has no logic".into(),
            });
        }
        let mut names = BTreeSet::new();
        for rm in &self.reconfigurable {
            if rm.resources.lut == 0 {
                return Err(Error::BadSpec {
                    detail: format!("module '{}' has no logic", rm.name),
                });
            }
            if !names.insert(&rm.name) {
                return Err(Error::BadSpec {
                    detail: format!("duplicate module name '{}'", rm.name),
                });
            }
        }
        let spec = DprDesignSpec {
            name: self.name,
            part: self.part,
            static_resources: self.static_resources,
            reconfigurable: self.reconfigurable,
        };
        let total = spec.total_resources();
        let cap = spec.part.nominal_capacity();
        if !total.fits_in(&cap) {
            return Err(Error::DeviceOverflow {
                detail: format!("need {total}, device has {cap}"),
            });
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DprDesignSpec {
        DprDesignSpec::builder("soc2", FpgaPart::Vc707)
            .static_part(Resources::luts(82_267))
            .reconfigurable("conv2d", Resources::luts(36_741))
            .reconfigurable("gemm", Resources::luts(30_617))
            .reconfigurable("fft", Resources::luts(33_690))
            .reconfigurable("sort", Resources::luts(20_468))
            .build()
            .unwrap()
    }

    #[test]
    fn soc2_metrics_match_table3() {
        // Table III reports SOC_2 as α_av = 10.1 %, κ = 27.2 %, γ = 1.47.
        let (kappa, alpha, gamma) = spec().size_metrics();
        assert!((kappa - 0.271).abs() < 0.005, "κ = {kappa}");
        assert!((alpha - 0.100).abs() < 0.005, "α_av = {alpha}");
        assert!((gamma - 1.477).abs() < 0.01, "γ = {gamma}");
    }

    #[test]
    fn totals_add_up() {
        let s = spec();
        assert_eq!(s.reconfigurable_total().lut, 121_516);
        assert_eq!(s.total_resources().lut, 121_516 + 82_267);
    }

    #[test]
    fn builder_rejects_empty_static() {
        let err = DprDesignSpec::builder("x", FpgaPart::Vc707).build();
        assert!(matches!(err, Err(Error::BadSpec { .. })));
    }

    #[test]
    fn builder_rejects_duplicates() {
        let err = DprDesignSpec::builder("x", FpgaPart::Vc707)
            .static_part(Resources::luts(1000))
            .reconfigurable("a", Resources::luts(10))
            .reconfigurable("a", Resources::luts(20))
            .build();
        assert!(matches!(err, Err(Error::BadSpec { .. })));
    }

    #[test]
    fn builder_rejects_device_overflow() {
        let err = DprDesignSpec::builder("x", FpgaPart::Vc707)
            .static_part(Resources::luts(300_000))
            .reconfigurable("a", Resources::luts(100_000))
            .build();
        assert!(matches!(err, Err(Error::DeviceOverflow { .. })));
    }

    #[test]
    fn metrics_with_no_rms() {
        let s = DprDesignSpec::builder("static-only", FpgaPart::Vc707)
            .static_part(Resources::luts(50_000))
            .build()
            .unwrap();
        let (kappa, alpha, gamma) = s.size_metrics();
        assert!(kappa > 0.0);
        assert_eq!((alpha, gamma), (0.0, 0.0));
    }
}
