//! The multi-core host machine running CAD instances.
//!
//! The paper's characterization host is a 16-core Intel Core-i7 at 3.6 GHz
//! with 64 GB of DRAM. Vivado's P&R "uses a limited number of the cores"
//! (the paper cites RapidStream on this), so a few concurrent instances run
//! essentially unimpeded and contention sets in gradually — memory
//! bandwidth first, cores later.

use crate::model::Minutes;
use serde::{Deserialize, Serialize};

/// Cores a single CAD instance grabs while running (Vivado's default
/// `maxThreads` era behaviour: a handful of threads spinning even when the
/// P&R algorithms are serial).
pub const CORES_PER_INSTANCE: usize = 8;

/// A host machine with a fixed core count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostMachine {
    cores: usize,
}

impl Default for HostMachine {
    fn default() -> HostMachine {
        HostMachine { cores: 16 }
    }
}

impl HostMachine {
    /// A host with `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize) -> HostMachine {
        assert!(cores > 0, "host needs at least one core");
        HostMachine { cores }
    }

    /// Core count.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Slowdown factor experienced by each of `k` concurrent instances.
    ///
    /// Up to `cores / CORES_PER_INSTANCE` instances run at full speed; each
    /// further instance adds a mild memory/CPU contention penalty.
    pub fn slowdown(&self, k: usize) -> f64 {
        if k == 0 {
            return 1.0;
        }
        let free_slots = (self.cores / CORES_PER_INSTANCE).max(1);
        if k <= free_slots {
            // Even co-resident instances share memory bandwidth a little.
            1.0 + 0.035 * (k.saturating_sub(1)) as f64
        } else {
            let base = 1.0 + 0.035 * (free_slots - 1) as f64;
            base + 0.07 * (k - free_slots) as f64
        }
    }

    /// Wall-clock minutes of launching `jobs` concurrently, under
    /// processor sharing: while `k` jobs are alive, each progresses at
    /// `1 / slowdown(k)`; as short jobs drain, the survivors speed back up.
    pub fn concurrent_wall(&self, jobs: &[Minutes]) -> Minutes {
        let mut remaining: Vec<f64> = jobs.iter().map(|m| m.0.max(0.0)).collect();
        remaining.sort_by(|a, b| a.partial_cmp(b).expect("finite minutes"));
        let mut wall = 0.0;
        let mut done = 0.0;
        for (i, &r) in remaining.iter().enumerate() {
            let alive = remaining.len() - i;
            // Work left in this job beyond what already completed jobs did.
            let slice = r - done;
            if slice > 0.0 {
                wall += slice * self.slowdown(alive);
                done = r;
            }
        }
        Minutes(wall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn few_instances_run_nearly_free() {
        let host = HostMachine::default();
        assert!((host.slowdown(1) - 1.0).abs() < 1e-12);
        assert!(host.slowdown(2) < 1.1);
        assert!(host.slowdown(4) < 1.25);
    }

    #[test]
    fn contention_is_monotone() {
        let host = HostMachine::default();
        for k in 1..20 {
            assert!(host.slowdown(k + 1) >= host.slowdown(k), "k = {k}");
        }
    }

    #[test]
    fn oversubscription_costs_visibly() {
        let host = HostMachine::default();
        assert!(host.slowdown(16) > 1.5);
        assert!(host.slowdown(16) < 3.0);
    }

    #[test]
    fn smaller_hosts_contend_sooner() {
        let small = HostMachine::new(4);
        let big = HostMachine::new(32);
        assert!(small.slowdown(4) > big.slowdown(4));
    }

    #[test]
    fn concurrent_wall_is_between_max_and_fully_contended_max() {
        let host = HostMachine::default();
        let jobs = vec![Minutes(10.0), Minutes(30.0), Minutes(20.0)];
        let wall = host.concurrent_wall(&jobs);
        assert!(wall.0 >= 30.0);
        assert!(wall.0 <= 30.0 * host.slowdown(3) + 1e-9);
    }

    #[test]
    fn short_jobs_barely_delay_a_long_job() {
        // Sixteen 4-minute jobs next to one 40-minute job: the long job runs
        // mostly alone after the burst drains.
        let host = HostMachine::default();
        let mut jobs = vec![Minutes(4.0); 16];
        jobs.push(Minutes(40.0));
        let wall = host.concurrent_wall(&jobs);
        assert!(wall.0 < 50.0, "wall = {wall}");
        assert!(wall.0 > 40.0);
    }

    #[test]
    fn equal_jobs_pay_full_contention() {
        let host = HostMachine::default();
        let jobs = vec![Minutes(10.0); 5];
        let wall = host.concurrent_wall(&jobs);
        assert!((wall.0 - 10.0 * host.slowdown(5)).abs() < 1e-9);
    }

    #[test]
    fn empty_job_list_takes_no_time() {
        let host = HostMachine::default();
        assert_eq!(host.concurrent_wall(&[]), Minutes::ZERO);
    }
}
