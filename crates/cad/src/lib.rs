//! CAD-engine substitute for the Xilinx Vivado tool.
//!
//! The PR-ESP paper's FPGA-flow contribution is *scheduling*: deciding how
//! to split a DPR design's place-and-route across parallel Vivado instances
//! so the total compilation time shrinks. Reproducing that without Vivado
//! requires a CAD engine whose runtimes behave like Vivado's — which is
//! precisely what the paper itself built ("an approximate model that
//! correlates the size of the design with the P&R runtime", Section I).
//!
//! This crate provides:
//!
//! * [`spec`] — DPR design specifications (static part + reconfigurable
//!   modules with resource footprints).
//! * [`synth`] — a synthesis engine with out-of-context (OoC) support and a
//!   linear-in-size runtime model.
//! * [`place`] — an analytic region placer that actually assigns logic to
//!   fabric columns, verifies capacity, and produces the configuration-frame
//!   content that `presp-fpga` serializes into (partial) bitstreams.
//! * [`model`] — the empirical runtime model (minutes as a function of
//!   design size and congestion), calibrated against the paper's Table III.
//! * [`host`] — the multi-core host machine running concurrent CAD
//!   instances with contention.
//! * [`flow`] — the serial / semi-parallel / fully-parallel P&R schedules
//!   and the monolithic (standard Xilinx DPR flow) baseline.
//!
//! # Example
//!
//! ```
//! use presp_cad::flow::{CadFlow, Strategy};
//! use presp_cad::spec::DprDesignSpec;
//! use presp_fpga::part::FpgaPart;
//! use presp_fpga::resources::Resources;
//!
//! let spec = DprDesignSpec::builder("demo", FpgaPart::Vc707)
//!     .static_part(Resources::luts(82_000))
//!     .reconfigurable("rt0", Resources::luts(36_000))
//!     .reconfigurable("rt1", Resources::luts(30_000))
//!     .build()?;
//! let flow = CadFlow::new();
//! let report = flow.run_pnr(&spec, Strategy::FullyParallel)?;
//! assert!(report.wall_minutes() > 0.0);
//! # Ok::<(), presp_cad::Error>(())
//! ```

pub mod error;
pub mod flow;
pub mod host;
pub mod model;
pub mod place;
pub mod spec;
pub mod synth;

pub use error::Error;
pub use flow::{CadFlow, PnrReport, Strategy};
pub use spec::DprDesignSpec;
