//! Synthesis engine: out-of-context module synthesis and static-part
//! synthesis with black-box replacement.

use crate::error::Error;
use crate::host::HostMachine;
use crate::model::{monolithic_synth, ooc_synth, static_synth, Minutes};
use crate::spec::DprDesignSpec;
use presp_fpga::resources::Resources;
use serde::{Deserialize, Serialize};

/// A synthesized netlist checkpoint (the analogue of a post-synth DCP).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SynthCheckpoint {
    /// Module name.
    pub module: String,
    /// Post-synthesis resources.
    pub resources: Resources,
    /// Whether this was an out-of-context run.
    pub ooc: bool,
    /// Names of black-boxed reconfigurable modules (static checkpoint only).
    pub blackboxes: Vec<String>,
}

/// Result of the parallel synthesis stage (Fig. 1, first stage).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthReport {
    /// The static checkpoint with black-boxed accelerators.
    pub static_checkpoint: SynthCheckpoint,
    /// One OoC checkpoint per reconfigurable module.
    pub rm_checkpoints: Vec<SynthCheckpoint>,
    /// Solo runtime of each synthesis job, `(module, minutes)`.
    pub job_minutes: Vec<(String, Minutes)>,
    /// Wall-clock of the stage (all jobs launched concurrently).
    pub wall: Minutes,
}

/// Runs PR-ESP's parallel synthesis: the static part and every
/// reconfigurable tile synthesize in separate concurrent instances, with the
/// reconfigurable accelerators inside the static part replaced by
/// auto-generated black-box wrappers.
///
/// # Errors
///
/// Returns [`Error::BadSpec`] if the spec has no reconfigurable modules and
/// an empty static part (cannot happen for specs built via the builder).
pub fn parallel_synthesis(spec: &DprDesignSpec, host: &HostMachine) -> Result<SynthReport, Error> {
    let static_kluts = spec.static_resources().lut as f64 / 1000.0;
    if static_kluts <= 0.0 {
        return Err(Error::BadSpec {
            detail: "static part has no logic".into(),
        });
    }
    let static_checkpoint = SynthCheckpoint {
        module: format!("{}_static", spec.name()),
        resources: spec.static_resources(),
        ooc: false,
        blackboxes: spec
            .reconfigurable()
            .iter()
            .map(|r| r.name.clone())
            .collect(),
    };
    let mut job_minutes = vec![(static_checkpoint.module.clone(), static_synth(static_kluts))];
    let mut rm_checkpoints = Vec::new();
    for rm in spec.reconfigurable() {
        rm_checkpoints.push(SynthCheckpoint {
            module: rm.name.clone(),
            resources: rm.resources,
            ooc: true,
            blackboxes: Vec::new(),
        });
        job_minutes.push((rm.name.clone(), ooc_synth(rm.resources.lut as f64 / 1000.0)));
    }
    let jobs: Vec<Minutes> = job_minutes.iter().map(|(_, m)| *m).collect();
    let wall = host.concurrent_wall(&jobs);
    Ok(SynthReport {
        static_checkpoint,
        rm_checkpoints,
        job_minutes,
        wall,
    })
}

/// Runs the monolithic (single-instance, whole-design) synthesis the
/// standard Xilinx DPR flow uses; returns its runtime.
pub fn monolithic_synthesis(spec: &DprDesignSpec) -> Minutes {
    monolithic_synth(spec.total_resources().lut as f64 / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use presp_fpga::part::FpgaPart;

    fn spec() -> DprDesignSpec {
        DprDesignSpec::builder("soc_a", FpgaPart::Vc707)
            .static_part(Resources::luts(85_000))
            .reconfigurable("warp", Resources::luts(34_000))
            .reconfigurable("sd_update", Resources::luts(24_000))
            .reconfigurable("delta_p", Resources::luts(27_000))
            .reconfigurable("matrix_invert", Resources::luts(21_500))
            .build()
            .unwrap()
    }

    #[test]
    fn every_rm_gets_an_ooc_checkpoint() {
        let report = parallel_synthesis(&spec(), &HostMachine::default()).unwrap();
        assert_eq!(report.rm_checkpoints.len(), 4);
        assert!(report.rm_checkpoints.iter().all(|c| c.ooc));
        assert!(!report.static_checkpoint.ooc);
    }

    #[test]
    fn static_checkpoint_blackboxes_every_rm() {
        let report = parallel_synthesis(&spec(), &HostMachine::default()).unwrap();
        assert_eq!(report.static_checkpoint.blackboxes.len(), 4);
        assert!(report
            .static_checkpoint
            .blackboxes
            .contains(&"warp".to_string()));
    }

    #[test]
    fn parallel_wall_beats_sum_of_jobs() {
        let report = parallel_synthesis(&spec(), &HostMachine::default()).unwrap();
        let sum: Minutes = report.job_minutes.iter().map(|(_, m)| *m).sum();
        assert!(report.wall.0 < sum.0);
        // Wall is at least the slowest job.
        let max = report
            .job_minutes
            .iter()
            .map(|(_, m)| m.0)
            .fold(0.0f64, f64::max);
        assert!(report.wall.0 >= max);
    }

    #[test]
    fn parallel_synthesis_beats_monolithic() {
        // Table V: PR-ESP synthesis (47–54 min) vs monolithic (60–91 min).
        let s = spec();
        let par = parallel_synthesis(&s, &HostMachine::default())
            .unwrap()
            .wall;
        let mono = monolithic_synthesis(&s);
        assert!(par.0 < mono.0, "parallel {par} vs monolithic {mono}");
    }

    #[test]
    fn synthesis_minutes_are_in_paper_range() {
        // SoC_A-sized design: paper reports 47 (PR-ESP) and 91 (monolithic).
        let s = spec();
        let par = parallel_synthesis(&s, &HostMachine::default())
            .unwrap()
            .wall;
        let mono = monolithic_synthesis(&s);
        assert!(par.0 > 30.0 && par.0 < 70.0, "parallel = {par}");
        assert!(mono.0 > 65.0 && mono.0 < 120.0, "monolithic = {mono}");
    }
}
