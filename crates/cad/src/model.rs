//! The empirical CAD runtime model.
//!
//! Mirrors the model the paper built from "an exhaustive characterization of
//! the Vivado tool" (Section IV): compile minutes as a function of design
//! size (kLUTs) and run structure. The constants below were fitted against
//! Table III (the four characterization SoCs on the VC707, Vivado 2019.2,
//! 16-core host); `EXPERIMENTS.md` records the model-vs-paper residuals.
//!
//! Fitted forms (sizes in kLUTs):
//!
//! * monolithic / serial full P&R: `C·L^P` (serial pays a checkpoint-
//!   stitching overhead on top) — fitted to SOC_1 (89 min @ 121.5k) and
//!   SOC_2 (181 min @ 203.8k), giving `P = 1.373`;
//! * static-only P&R: `C·S^P + K·S·B + stitch·n`, where `B` is the fabric
//!   blocked by reconfigurable pblocks — the `S·B` interaction captures the
//!   static router detouring around reserved regions and fits all four
//!   characterization SoCs within ~8 %;
//! * in-context RM run: `ctx(S) + Σ (fixed + slope·rm)` — the per-RM cost is
//!   close to linear in the paper's Ω data.

use serde::{Deserialize, Serialize};

/// Monolithic P&R coefficient: `minutes = C · (kLUTs)^P`.
pub const BASE_COEFF: f64 = 0.10626;
/// Exponent of the size term (fitted on SOC_1/SOC_2 serial runs).
pub const BASE_EXP: f64 = 1.373;
/// Checkpoint-stitching overhead of the PR-ESP serial schedule relative to
/// a monolithic run (loading OoC checkpoints, per-RP constraint handling).
pub const SERIAL_DPR_OVERHEAD: f64 = 1.15;
/// Static-only interaction coefficient: minutes per (static kLUT × blocked
/// kLUT / 1000) — the static router detours around reserved pblocks.
pub const STATIC_BLOCKED_COEFF: f64 = 3.5e-3;
/// Per-reconfigurable-partition cost of stitching an empty placeholder
/// hard-macro into the static-only run, minutes.
pub const PLACEHOLDER_STITCH_MIN: f64 = 0.9;
/// Context-load cost of an in-context RM run: `CTX · (static kLUTs)^0.8`.
pub const CONTEXT_LOAD_COEFF: f64 = 0.46;
/// Exponent of the context-load term.
pub const CONTEXT_LOAD_EXP: f64 = 0.8;
/// Fixed per-RM cost inside an in-context run (checkpoint load, interface
/// routing, bitstream-region carving), minutes.
pub const RM_FIXED_MIN: f64 = 3.0;
/// Per-kLUT cost of placing an RM inside its pblock, minutes.
pub const RM_PER_KLUT_MIN: f64 = 0.55;
/// Effective fill of a reconfigurable pblock (the floorplanner provisions
/// 1/0.8 of the requirement), used to compute blocked fabric.
pub const PBLOCK_FILL: f64 = 0.8;
/// Synthesis: `S0 + S1 · kLUTs` for an OoC module run.
pub const SYNTH_BASE_MIN: f64 = 3.0;
/// Synthesis minutes per kLUT.
pub const SYNTH_PER_KLUT: f64 = 0.40;
/// Extra synthesis weight of the static part (NoC, sockets, memory
/// controllers synthesize slower than HLS datapaths).
pub const SYNTH_STATIC_FACTOR: f64 = 1.2;
/// Extra weight of a monolithic whole-SoC synthesis (cross-module
/// optimization over the full hierarchy).
pub const SYNTH_MONO_FACTOR: f64 = 1.0;

/// Simulated compile time in minutes.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Minutes(pub f64);

impl Minutes {
    /// Zero minutes.
    pub const ZERO: Minutes = Minutes(0.0);

    /// The underlying value.
    pub fn value(&self) -> f64 {
        self.0
    }
}

impl std::ops::Add for Minutes {
    type Output = Minutes;
    fn add(self, rhs: Minutes) -> Minutes {
        Minutes(self.0 + rhs.0)
    }
}

impl std::iter::Sum for Minutes {
    fn sum<I: Iterator<Item = Minutes>>(iter: I) -> Minutes {
        Minutes(iter.map(|m| m.0).sum())
    }
}

impl std::fmt::Display for Minutes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1} min", self.0)
    }
}

/// Superlinear base P&R cost of placing `kluts` thousand LUTs.
pub fn base_pnr(kluts: f64) -> f64 {
    BASE_COEFF * kluts.max(0.0).powf(BASE_EXP)
}

/// Minutes for a monolithic P&R of the whole design (the standard Xilinx
/// DPR flow runs exactly one such instance).
pub fn monolithic_pnr(total_kluts: f64) -> Minutes {
    Minutes(base_pnr(total_kluts))
}

/// Minutes for PR-ESP's serial schedule: one instance, whole design, plus
/// checkpoint-stitching overhead.
pub fn serial_pnr(total_kluts: f64) -> Minutes {
    Minutes(base_pnr(total_kluts) * SERIAL_DPR_OVERHEAD)
}

/// Minutes for the static-only P&R with `n_partitions` placeholder
/// hard-macros, where the pblocks reserve `blocked_kluts` of fabric.
pub fn static_only_pnr(static_kluts: f64, blocked_kluts: f64, n_partitions: usize) -> Minutes {
    Minutes(
        base_pnr(static_kluts)
            + STATIC_BLOCKED_COEFF * static_kluts * blocked_kluts
            + PLACEHOLDER_STITCH_MIN * n_partitions as f64,
    )
}

/// Context-load minutes of an in-context RM instance (reading the routed
/// static design).
pub fn context_load(static_kluts: f64) -> Minutes {
    Minutes(CONTEXT_LOAD_COEFF * static_kluts.max(0.0).powf(CONTEXT_LOAD_EXP))
}

/// Minutes for placing one RM inside its pblock (excluding context load).
pub fn rm_pnr(rm_kluts: f64) -> Minutes {
    Minutes(RM_FIXED_MIN + RM_PER_KLUT_MIN * rm_kluts.max(0.0))
}

/// Minutes for one in-context instance placing a group of RMs.
pub fn rm_group_run(static_kluts: f64, rm_kluts: &[f64]) -> Minutes {
    Minutes(context_load(static_kluts).0 + rm_kluts.iter().map(|&l| rm_pnr(l).0).sum::<f64>())
}

/// Minutes for an OoC synthesis of one module.
pub fn ooc_synth(kluts: f64) -> Minutes {
    Minutes(SYNTH_BASE_MIN + SYNTH_PER_KLUT * kluts)
}

/// Minutes for synthesizing the static part (NoC-heavy).
pub fn static_synth(static_kluts: f64) -> Minutes {
    Minutes(SYNTH_BASE_MIN + SYNTH_PER_KLUT * SYNTH_STATIC_FACTOR * static_kluts)
}

/// Minutes for a monolithic whole-design synthesis.
pub fn monolithic_synth(total_kluts: f64) -> Minutes {
    Minutes(SYNTH_BASE_MIN + SYNTH_PER_KLUT * SYNTH_MONO_FACTOR * total_kluts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_cost_is_superlinear() {
        assert!(base_pnr(200.0) > 2.0 * base_pnr(100.0));
        assert_eq!(base_pnr(0.0), 0.0);
    }

    #[test]
    fn serial_matches_soc1_and_soc2_calibration_points() {
        // Table III: SOC_1 serial = 89 min (121.5 kLUTs), SOC_2 = 181 min
        // (203.8 kLUTs). These are the fit's anchor points.
        let soc1 = serial_pnr(121.5);
        let soc2 = serial_pnr(203.8);
        assert!((soc1.0 - 89.0).abs() < 3.0, "SOC_1 serial = {soc1}");
        assert!((soc2.0 - 181.0).abs() < 5.0, "SOC_2 serial = {soc2}");
    }

    #[test]
    fn static_only_matches_characterization() {
        // Table III t_static under parallelism: SOC_1 = 75, SOC_2 = 94,
        // SOC_3 = 86, SOC_4 = 42 (blocked = Σrm / 0.8 fill).
        let soc1 = static_only_pnr(82.3, 39.2 / 0.8, 16);
        let soc2 = static_only_pnr(82.3, 121.5 / 0.8, 4);
        let soc3 = static_only_pnr(82.3, 87.8 / 0.8, 3);
        let soc4 = static_only_pnr(40.7, 163.0 / 0.8, 5);
        assert!((soc1.0 - 75.0).abs() < 10.0, "SOC_1 t_static = {soc1}");
        assert!((soc2.0 - 94.0).abs() < 10.0, "SOC_2 t_static = {soc2}");
        assert!((soc3.0 - 86.0).abs() < 10.0, "SOC_3 t_static = {soc3}");
        assert!((soc4.0 - 42.0).abs() < 10.0, "SOC_4 t_static = {soc4}");
    }

    #[test]
    fn serial_is_slower_than_monolithic() {
        let mono = monolithic_pnr(180.0);
        let serial = serial_pnr(180.0);
        assert!((serial.0 / mono.0 - SERIAL_DPR_OVERHEAD).abs() < 1e-12);
    }

    #[test]
    fn static_only_charges_for_placeholders() {
        let none = static_only_pnr(82.0, 150.0, 0);
        let four = static_only_pnr(82.0, 150.0, 4);
        assert!((four.0 - none.0 - 4.0 * PLACEHOLDER_STITCH_MIN).abs() < 1e-9);
    }

    #[test]
    fn blocked_fabric_raises_static_cost() {
        let open = static_only_pnr(82.0, 40.0, 4);
        let tight = static_only_pnr(82.0, 200.0, 4);
        assert!(tight.0 > open.0);
    }

    #[test]
    fn rm_group_is_load_plus_members() {
        let solo = rm_group_run(82.0, &[36.7]);
        let pair = rm_group_run(82.0, &[36.7, 20.5]);
        let expected = solo.0 + rm_pnr(20.5).0;
        assert!((pair.0 - expected).abs() < 1e-9);
    }

    #[test]
    fn in_context_mac_run_is_mostly_context_load() {
        // SOC_1's MACs are tiny; the in-context instance cost is dominated
        // by loading the 82k-LUT routed static design.
        let mac = rm_group_run(82.3, &[2.45]);
        let load = context_load(82.3);
        assert!(load.0 / mac.0 > 0.7, "load {load} of {mac}");
        assert!(mac.0 > 10.0 && mac.0 < 30.0, "MAC in-context = {mac}");
    }

    #[test]
    fn synthesis_is_linear() {
        let a = ooc_synth(10.0);
        let b = ooc_synth(20.0);
        let c = ooc_synth(30.0);
        assert!(((c.0 - b.0) - (b.0 - a.0)).abs() < 1e-9);
    }

    #[test]
    fn minutes_display_and_sum() {
        let total: Minutes = [Minutes(1.5), Minutes(2.5)].into_iter().sum();
        assert_eq!(total, Minutes(4.0));
        assert_eq!(format!("{total}"), "4.0 min");
    }
}
