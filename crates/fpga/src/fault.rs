//! Deterministic fault injection for the DPR stack.
//!
//! Real partial-reconfiguration deployments fail in a handful of
//! characteristic ways: a bitstream word is corrupted between DRAM and the
//! ICAP (caught by the embedded CRC), the DFX controller reports BUSY and
//! stalls the trigger, the software registry hands out a stale or missing
//! bitstream, and the decoupler acknowledges late. A [`FaultPlan`] scripts
//! all four from a single seed so every failure a test observes is exactly
//! reproducible: each hook draws from its own [`SplitMix64`] stream (so
//! faults on one hook never perturb another) and keeps a call counter, and
//! individual calls can be forced to fail regardless of the seeded rates.
//!
//! The plan is deliberately passive — it only *decides*; the SoC simulator
//! and the runtime manager own the hook points and apply the decisions
//! through the same machinery real faults would exercise (the corrupted
//! stream really flows through the ICAP and really fails its CRC check).

use std::collections::BTreeSet;

/// A small, fast, seedable generator (SplitMix64). Public so test
/// harnesses can derive schedules from the same primitive the plan uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform draw in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        self.next_u64() % bound
    }
}

/// Rates and magnitudes of the injected faults. All rates are
/// probabilities in `[0, 1]`; the default configuration injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultConfig {
    /// Probability that an ICAP load sees one flipped bitstream word.
    pub icap_flip_rate: f64,
    /// Probability that the DFXC reports BUSY before accepting a trigger.
    pub dfxc_stall_rate: f64,
    /// Maximum BUSY stall, in SoC cycles (the draw is uniform in
    /// `[1, max]`).
    pub dfxc_stall_max_cycles: u64,
    /// Probability that a registry lookup returns a stale/missing entry.
    pub registry_miss_rate: f64,
    /// Probability that a decoupler CSR write acknowledges late.
    pub decoupler_delay_rate: f64,
    /// Maximum decoupler ack delay, in SoC cycles (uniform in `[1, max]`).
    pub decoupler_delay_max_cycles: u64,
    /// Mean configuration-memory upsets (SEUs) per million SoC cycles.
    /// Arrivals follow a Poisson process over virtual time: exponential
    /// inter-arrival gaps drawn from the plan's dedicated SEU stream.
    pub seu_per_mcycle: f64,
    /// Probability that an upset flips two bits of the same frame word
    /// (uncorrectable by SECDED) instead of one.
    pub seu_double_bit_rate: f64,
}

impl FaultConfig {
    /// A configuration injecting every fault class at `rate`, with small
    /// default magnitudes — the usual starting point for stress tests.
    pub fn uniform(rate: f64) -> FaultConfig {
        FaultConfig {
            icap_flip_rate: rate,
            dfxc_stall_rate: rate,
            dfxc_stall_max_cycles: 256,
            registry_miss_rate: rate,
            decoupler_delay_rate: rate,
            decoupler_delay_max_cycles: 64,
            seu_per_mcycle: 0.0,
            seu_double_bit_rate: 0.0,
        }
    }

    /// Enables the SEU arrival process on top of this configuration.
    pub fn with_seu(mut self, per_mcycle: f64, double_bit_rate: f64) -> FaultConfig {
        self.seu_per_mcycle = per_mcycle;
        self.seu_double_bit_rate = double_bit_rate;
        self
    }
}

/// One scripted bitstream corruption: flip `bit` of word `index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcapFault {
    /// Word index into the bitstream's word vector.
    pub index: usize,
    /// Bit position, `0..32`.
    pub bit: u32,
}

impl IcapFault {
    /// Applies the flip to a copy of `words`.
    pub fn corrupt(&self, words: &[u32]) -> Vec<u32> {
        let mut out = words.to_vec();
        out[self.index] ^= 1 << self.bit;
        out
    }
}

/// Counts of faults actually injected so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InjectedFaults {
    /// ICAP loads handed a corrupted stream.
    pub icap_corruptions: u64,
    /// DFXC triggers stalled by BUSY.
    pub dfxc_stalls: u64,
    /// Total BUSY cycles added.
    pub dfxc_stall_cycles: u64,
    /// Registry lookups forced stale/missing.
    pub registry_misses: u64,
    /// Decoupler CSR writes acknowledged late.
    pub decoupler_delays: u64,
    /// Total decoupler delay cycles added.
    pub decoupler_delay_cycles: u64,
    /// Configuration-memory upsets delivered (single- and double-bit).
    pub seu_upsets: u64,
    /// The subset of upsets that were double-bit (uncorrectable).
    pub seu_double_bits: u64,
}

impl InjectedFaults {
    /// Total faults injected across all classes.
    pub fn total(&self) -> u64 {
        self.icap_corruptions
            + self.dfxc_stalls
            + self.registry_misses
            + self.decoupler_delays
            + self.seu_upsets
    }
}

/// One independently-seeded fault stream with a call counter and a set of
/// call indices forced to fire.
#[derive(Debug, Clone)]
struct Hook {
    rng: SplitMix64,
    calls: u64,
    forced: BTreeSet<u64>,
}

impl Hook {
    fn new(seed: u64) -> Hook {
        Hook {
            rng: SplitMix64::new(seed),
            calls: 0,
            forced: BTreeSet::new(),
        }
    }

    /// Advances the stream one call; returns whether this call faults.
    /// The random draw happens unconditionally so forcing call N does not
    /// shift the outcomes of calls N+1.. .
    fn fires(&mut self, rate: f64) -> bool {
        let n = self.calls;
        self.calls += 1;
        let seeded = self.rng.next_f64() < rate;
        self.forced.remove(&n) || seeded
    }
}

/// One configuration-memory upset decided by the plan.
///
/// The plan stays passive: it picks abstract selectors and the SoC
/// simulator maps them onto concrete frames (biased toward the frames of
/// active pblocks) and applies the flips through the config-memory SEU
/// backdoor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeuUpset {
    /// Virtual cycle the upset strikes at.
    pub cycle: u64,
    /// Whether two bits of the same word flip (uncorrectable by SECDED).
    pub double_bit: bool,
    /// Raw selector the consumer reduces modulo its candidate-frame count.
    pub frame_select: u64,
    /// Raw selector reduced modulo the frame word count.
    pub word_select: u64,
    /// First flipped bit, `0..32`.
    pub bit: u32,
    /// Second flipped bit (distinct from `bit`); only used when
    /// `double_bit` is set.
    pub second_bit: u32,
}

/// A seeded, scripted fault schedule for one SoC.
///
/// # Example
///
/// ```
/// use presp_fpga::fault::{FaultConfig, FaultPlan};
///
/// // Force the second ICAP load to corrupt, inject nothing else.
/// let mut plan = FaultPlan::new(7, FaultConfig::default());
/// plan.force_icap_fault(1);
/// assert!(plan.next_icap_fault(1000).is_none());
/// assert!(plan.next_icap_fault(1000).is_some());
/// assert_eq!(plan.injected().icap_corruptions, 1);
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    icap: Hook,
    dfxc: Hook,
    registry: Hook,
    decoupler: Hook,
    seu_rng: SplitMix64,
    /// Next pending seeded SEU arrival, in (fractional) cycles. Scheduled
    /// lazily on the first drain so a zero-rate plan never draws.
    seu_next: Option<f64>,
    /// Forced upsets: `(cycle, double_bit)`, drained alongside the seeded
    /// stream but drawing selectors from their own generator so forcing
    /// never shifts seeded outcomes.
    seu_forced: Vec<(u64, bool)>,
    seu_forced_rng: SplitMix64,
    injected: InjectedFaults,
}

impl FaultPlan {
    /// A plan drawing from `seed` with the given rates.
    pub fn new(seed: u64, config: FaultConfig) -> FaultPlan {
        FaultPlan {
            config,
            icap: Hook::new(seed ^ 0x1CAF_1CAF_1CAF_1CAF),
            dfxc: Hook::new(seed ^ 0xDF0C_DF0C_DF0C_DF0C),
            registry: Hook::new(seed ^ 0x4E61_4E61_4E61_4E61),
            decoupler: Hook::new(seed ^ 0xDECC_DECC_DECC_DECC),
            seu_rng: SplitMix64::new(seed ^ 0x05E0_05E0_05E0_05E0),
            seu_next: None,
            seu_forced: Vec::new(),
            seu_forced_rng: SplitMix64::new(seed ^ 0xF05E_F05E_F05E_F05E),
            injected: InjectedFaults::default(),
        }
    }

    /// The configured rates.
    pub fn config(&self) -> FaultConfig {
        self.config
    }

    /// Faults injected so far.
    pub fn injected(&self) -> InjectedFaults {
        self.injected
    }

    /// Forces the `nth` ICAP load (0-based, counted from plan creation) to
    /// receive a corrupted stream.
    pub fn force_icap_fault(&mut self, nth: u64) {
        self.icap.forced.insert(nth);
    }

    /// Forces the `nth` registry lookup to return stale/missing.
    pub fn force_registry_miss(&mut self, nth: u64) {
        self.registry.forced.insert(nth);
    }

    /// Forces the `nth` DFXC trigger to stall.
    pub fn force_dfxc_stall(&mut self, nth: u64) {
        self.dfxc.forced.insert(nth);
    }

    /// Forces the `nth` decoupler CSR write to acknowledge late.
    pub fn force_decoupler_delay(&mut self, nth: u64) {
        self.decoupler.forced.insert(nth);
    }

    /// Schedules one upset at `cycle` regardless of the seeded rate. The
    /// upset's selectors come from a dedicated generator, so forcing never
    /// shifts the seeded SEU stream.
    pub fn force_seu(&mut self, cycle: u64, double_bit: bool) {
        self.seu_forced.push((cycle, double_bit));
        self.seu_forced.sort_unstable();
    }

    fn exponential_gap(&mut self) -> f64 {
        // Mean gap 1e6 / seu_per_mcycle cycles; the caller guards rate > 0.
        let lambda = self.config.seu_per_mcycle / 1_000_000.0;
        let u = self.seu_rng.next_f64();
        -(1.0 - u).ln() / lambda
    }

    fn draw_upset(cycle: u64, double_bit: bool, rng: &mut SplitMix64) -> SeuUpset {
        let frame_select = rng.next_u64();
        let word_select = rng.next_u64();
        let bit = (rng.next_u64() % 32) as u32;
        let mut second_bit = (rng.next_u64() % 31) as u32;
        if second_bit >= bit {
            second_bit += 1;
        }
        SeuUpset {
            cycle,
            double_bit,
            frame_select,
            word_select,
            bit,
            second_bit,
        }
    }

    /// SEU hook: drains every upset (forced and seeded) arriving at or
    /// before `upto_cycle`, in arrival order.
    ///
    /// Successive calls must pass non-decreasing cycles (the SoC's virtual
    /// clock guarantees this); a pending arrival beyond `upto_cycle` stays
    /// scheduled, so how the caller slices time never changes the stream.
    pub fn next_seu_upsets(&mut self, upto_cycle: u64) -> Vec<SeuUpset> {
        let mut upsets = Vec::new();
        while let Some(&(cycle, double_bit)) = self.seu_forced.first() {
            if cycle > upto_cycle {
                break;
            }
            self.seu_forced.remove(0);
            upsets.push(Self::draw_upset(
                cycle,
                double_bit,
                &mut self.seu_forced_rng,
            ));
        }
        if self.config.seu_per_mcycle > 0.0 {
            if self.seu_next.is_none() {
                let gap = self.exponential_gap();
                self.seu_next = Some(gap);
            }
            while self.seu_next.is_some_and(|t| t <= upto_cycle as f64) {
                let t = self.seu_next.unwrap_or_default();
                let double_bit = self.seu_rng.next_f64() < self.config.seu_double_bit_rate;
                upsets.push(Self::draw_upset(
                    t.max(0.0) as u64,
                    double_bit,
                    &mut self.seu_rng,
                ));
                let gap = self.exponential_gap();
                self.seu_next = Some(t + gap.max(1.0));
            }
        }
        upsets.sort_by_key(|u| u.cycle);
        for upset in &upsets {
            self.injected.seu_upsets += 1;
            if upset.double_bit {
                self.injected.seu_double_bits += 1;
            }
        }
        upsets
    }

    /// ICAP hook: decides whether the upcoming load of a `words`-word
    /// stream is corrupted, and where.
    ///
    /// The flip targets either the first frame-payload word (index 11 —
    /// the builder's 8-word preamble plus a FAR write and the FDRI header)
    /// or the embedded CRC value itself (`words - 3`); both are covered by
    /// the CRC check, so an injected fault is always *detected*, never
    /// silent. Streams too short to carry a frame corrupt the CRC word.
    pub fn next_icap_fault(&mut self, words: usize) -> Option<IcapFault> {
        if !self.icap.fires(self.config.icap_flip_rate) || words < 4 {
            return None;
        }
        let crc_index = words - 3;
        let index = if words > 16 && self.icap.rng.next_u64() & 1 == 0 {
            11
        } else {
            crc_index
        };
        let bit = (self.icap.rng.next_u64() % 32) as u32;
        self.injected.icap_corruptions += 1;
        Some(IcapFault { index, bit })
    }

    /// DFXC hook: cycles of BUSY stall before the upcoming trigger is
    /// accepted (0 = no stall).
    pub fn next_dfxc_stall(&mut self) -> u64 {
        if !self.dfxc.fires(self.config.dfxc_stall_rate) {
            return 0;
        }
        let max = self.config.dfxc_stall_max_cycles.max(1);
        let cycles = 1 + self.dfxc.rng.below(max);
        self.injected.dfxc_stalls += 1;
        self.injected.dfxc_stall_cycles += cycles;
        cycles
    }

    /// Registry hook: whether the upcoming lookup reads a stale/missing
    /// entry (a transient software-level failure; the caller retries).
    pub fn next_registry_miss(&mut self) -> bool {
        if !self.registry.fires(self.config.registry_miss_rate) {
            return false;
        }
        self.injected.registry_misses += 1;
        true
    }

    /// Decoupler hook: extra cycles before the upcoming decouple/re-couple
    /// CSR write acknowledges (0 = on time).
    pub fn next_decoupler_delay(&mut self) -> u64 {
        if !self.decoupler.fires(self.config.decoupler_delay_rate) {
            return 0;
        }
        let max = self.config.decoupler_delay_max_cycles.max(1);
        let cycles = 1 + self.decoupler.rng.below(max);
        self.injected.decoupler_delays += 1;
        self.injected.decoupler_delay_cycles += cycles;
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let config = FaultConfig::uniform(0.3);
        let mut a = FaultPlan::new(42, config);
        let mut b = FaultPlan::new(42, config);
        for _ in 0..200 {
            assert_eq!(a.next_icap_fault(500), b.next_icap_fault(500));
            assert_eq!(a.next_dfxc_stall(), b.next_dfxc_stall());
            assert_eq!(a.next_registry_miss(), b.next_registry_miss());
            assert_eq!(a.next_decoupler_delay(), b.next_decoupler_delay());
        }
        assert_eq!(a.injected(), b.injected());
        assert!(
            a.injected().total() > 0,
            "a 30% rate over 800 draws injects something"
        );
    }

    #[test]
    fn hooks_are_independent_streams() {
        // Draining one hook must not change another hook's outcomes.
        let config = FaultConfig::uniform(0.5);
        let mut interleaved = FaultPlan::new(9, config);
        let mut sequential = FaultPlan::new(9, config);
        let mut inter_stalls = Vec::new();
        for _ in 0..50 {
            interleaved.next_icap_fault(300);
            inter_stalls.push(interleaved.next_dfxc_stall());
            interleaved.next_registry_miss();
        }
        let seq_stalls: Vec<u64> = (0..50).map(|_| sequential.next_dfxc_stall()).collect();
        assert_eq!(inter_stalls, seq_stalls);
    }

    #[test]
    fn forcing_does_not_shift_later_outcomes() {
        let config = FaultConfig {
            icap_flip_rate: 0.2,
            ..FaultConfig::default()
        };
        let mut plain = FaultPlan::new(5, config);
        let mut forced = FaultPlan::new(5, config);
        forced.force_icap_fault(0);
        assert!(forced.next_icap_fault(200).is_some());
        plain.next_icap_fault(200);
        for _ in 0..100 {
            assert_eq!(plain.next_icap_fault(200), forced.next_icap_fault(200));
        }
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let mut plan = FaultPlan::new(1, FaultConfig::default());
        for _ in 0..100 {
            assert!(plan.next_icap_fault(500).is_none());
            assert_eq!(plan.next_dfxc_stall(), 0);
            assert!(!plan.next_registry_miss());
            assert_eq!(plan.next_decoupler_delay(), 0);
        }
        assert_eq!(plan.injected().total(), 0);
    }

    #[test]
    fn seu_stream_is_seed_deterministic_and_slice_invariant() {
        let config = FaultConfig::default().with_seu(500.0, 0.25);
        let mut coarse = FaultPlan::new(11, config);
        let mut fine = FaultPlan::new(11, config);
        let all = coarse.next_seu_upsets(100_000);
        let mut sliced = Vec::new();
        for upto in (10_000..=100_000).step_by(10_000) {
            sliced.extend(fine.next_seu_upsets(upto));
        }
        assert_eq!(all, sliced, "time slicing must not change the stream");
        assert!(all.len() > 10, "~50 expected upsets over 100k cycles");
        assert!(all.iter().any(|u| u.double_bit));
        assert!(all.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        assert_eq!(coarse.injected().seu_upsets, all.len() as u64);
    }

    #[test]
    fn forcing_seu_does_not_shift_seeded_arrivals() {
        let config = FaultConfig::default().with_seu(200.0, 0.0);
        let mut plain = FaultPlan::new(21, config);
        let mut forced = FaultPlan::new(21, config);
        forced.force_seu(5_000, true);
        let seeded: Vec<SeuUpset> = plain.next_seu_upsets(200_000);
        let mixed: Vec<SeuUpset> = forced.next_seu_upsets(200_000);
        let forced_only: Vec<&SeuUpset> = mixed.iter().filter(|u| u.double_bit).collect();
        assert_eq!(forced_only.len(), 1);
        assert_eq!(forced_only[0].cycle, 5_000);
        assert_ne!(forced_only[0].bit, forced_only[0].second_bit);
        let seeded_in_mixed: Vec<SeuUpset> =
            mixed.iter().filter(|u| !u.double_bit).copied().collect();
        assert_eq!(seeded, seeded_in_mixed);
    }

    #[test]
    fn zero_seu_rate_draws_nothing() {
        let mut plan = FaultPlan::new(2, FaultConfig::uniform(0.4));
        assert!(plan.next_seu_upsets(1_000_000).is_empty());
        assert_eq!(plan.injected().seu_upsets, 0);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut plan = FaultPlan::new(3, FaultConfig::default());
        plan.force_icap_fault(0);
        let fault = plan.next_icap_fault(64).unwrap();
        let words: Vec<u32> = (0..64).collect();
        let corrupted = fault.corrupt(&words);
        let diffs: Vec<usize> = (0..64).filter(|&i| words[i] != corrupted[i]).collect();
        assert_eq!(diffs, vec![fault.index]);
        assert_eq!(
            (words[fault.index] ^ corrupted[fault.index]).count_ones(),
            1
        );
    }
}
