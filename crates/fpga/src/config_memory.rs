//! Device configuration memory: the frame-addressable state the ICAP writes.

use crate::error::Error;
use crate::fabric::Device;
use crate::frame::FrameAddress;
use std::collections::BTreeMap;

/// One configuration frame's payload.
pub type Frame = Vec<u32>;

/// The frame-addressable configuration memory of a device.
///
/// Frames that were never written read back as all-zero (the post-PROG state
/// of the real device).
///
/// # Example
///
/// ```
/// use presp_fpga::config_memory::ConfigMemory;
/// use presp_fpga::frame::FrameAddress;
/// use presp_fpga::part::FpgaPart;
///
/// let device = FpgaPart::Vc707.device();
/// let mut mem = ConfigMemory::new(&device);
/// let addr = FrameAddress::new(0, 1, 0);
/// mem.write_frame(addr, vec![0xDEAD_BEEF; mem.frame_words()])?;
/// assert_eq!(mem.frame(addr)[0], 0xDEAD_BEEF);
/// # Ok::<(), presp_fpga::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct ConfigMemory {
    device: Device,
    frame_words: usize,
    frames: BTreeMap<FrameAddress, Frame>,
}

impl ConfigMemory {
    /// Creates an all-zero configuration memory for `device`.
    pub fn new(device: &Device) -> ConfigMemory {
        ConfigMemory {
            device: device.clone(),
            frame_words: device.part().family().frame_words(),
            frames: BTreeMap::new(),
        }
    }

    /// Words per frame on this device.
    pub fn frame_words(&self) -> usize {
        self.frame_words
    }

    /// The device this memory belongs to.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Writes one frame.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadFrameAddress`] if the address does not exist on the
    /// device or the payload length differs from the frame size.
    pub fn write_frame(&mut self, addr: FrameAddress, data: Frame) -> Result<(), Error> {
        self.device.validate_frame(addr)?;
        if data.len() != self.frame_words {
            return Err(Error::BadFrameAddress {
                detail: format!(
                    "frame payload {} words, expected {}",
                    data.len(),
                    self.frame_words
                ),
            });
        }
        if data.iter().all(|&w| w == 0) {
            // All-zero equals the erased state; keep the map sparse.
            self.frames.remove(&addr);
        } else {
            self.frames.insert(addr, data);
        }
        Ok(())
    }

    /// Reads back one frame (all-zero if never written).
    pub fn frame(&self, addr: FrameAddress) -> Frame {
        self.frames
            .get(&addr)
            .cloned()
            .unwrap_or_else(|| vec![0; self.frame_words])
    }

    /// Returns `true` if the frame was written with non-zero content.
    pub fn is_configured(&self, addr: FrameAddress) -> bool {
        self.frames.contains_key(&addr)
    }

    /// Number of frames holding non-zero content.
    pub fn configured_frames(&self) -> usize {
        self.frames.len()
    }

    /// Clears every frame in `addrs` back to the erased state.
    ///
    /// # Errors
    ///
    /// Returns an error on the first invalid address.
    pub fn clear_frames<'a, I: IntoIterator<Item = &'a FrameAddress>>(
        &mut self,
        addrs: I,
    ) -> Result<(), Error> {
        for addr in addrs {
            self.device.validate_frame(*addr)?;
            self.frames.remove(addr);
        }
        Ok(())
    }

    /// Addresses whose content differs between `self` and `other`.
    pub fn diff(&self, other: &ConfigMemory) -> Vec<FrameAddress> {
        let mut addrs: Vec<FrameAddress> = self
            .frames
            .keys()
            .chain(other.frames.keys())
            .copied()
            .collect();
        addrs.sort_unstable();
        addrs.dedup();
        addrs
            .into_iter()
            .filter(|a| self.frame(*a) != other.frame(*a))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::part::FpgaPart;

    fn mem() -> ConfigMemory {
        ConfigMemory::new(&FpgaPart::Vc707.device())
    }

    #[test]
    fn unwritten_frames_read_zero() {
        let m = mem();
        let addr = FrameAddress::new(2, 3, 1);
        assert!(m.frame(addr).iter().all(|&w| w == 0));
        assert!(!m.is_configured(addr));
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut m = mem();
        let addr = FrameAddress::new(1, 2, 3);
        let data: Frame = (0..m.frame_words() as u32).collect();
        m.write_frame(addr, data.clone()).unwrap();
        assert_eq!(m.frame(addr), data);
        assert_eq!(m.configured_frames(), 1);
    }

    #[test]
    fn zero_write_erases() {
        let mut m = mem();
        let addr = FrameAddress::new(1, 2, 3);
        m.write_frame(addr, vec![7; m.frame_words()]).unwrap();
        m.write_frame(addr, vec![0; m.frame_words()]).unwrap();
        assert!(!m.is_configured(addr));
    }

    #[test]
    fn wrong_length_is_rejected() {
        let mut m = mem();
        let addr = FrameAddress::new(0, 1, 0);
        assert!(m.write_frame(addr, vec![1, 2, 3]).is_err());
    }

    #[test]
    fn invalid_address_is_rejected() {
        let mut m = mem();
        let words = m.frame_words();
        assert!(m
            .write_frame(FrameAddress::new(999, 0, 0), vec![1; words])
            .is_err());
    }

    #[test]
    fn diff_reports_changed_frames() {
        let mut a = mem();
        let mut b = mem();
        let f1 = FrameAddress::new(0, 1, 0);
        let f2 = FrameAddress::new(0, 1, 1);
        let words = a.frame_words();
        a.write_frame(f1, vec![1; words]).unwrap();
        b.write_frame(f1, vec![1; words]).unwrap();
        b.write_frame(f2, vec![2; words]).unwrap();
        assert_eq!(a.diff(&b), vec![f2]);
        assert_eq!(a.diff(&a), Vec::new());
    }

    #[test]
    fn clear_frames_restores_erased_state() {
        let mut m = mem();
        let addr = FrameAddress::new(3, 4, 2);
        m.write_frame(addr, vec![9; m.frame_words()]).unwrap();
        m.clear_frames(std::iter::once(&addr)).unwrap();
        assert_eq!(m.configured_frames(), 0);
    }
}
