//! Device configuration memory: the frame-addressable state the ICAP writes.
//!
//! This module is the **ECC doorway**: every legitimate frame mutation goes
//! through [`ConfigMemory::write_frame`] (or [`ConfigMemory::restore`]),
//! which keeps the per-frame SECDED shadow in [`crate::ecc`] consistent
//! with the payload. The only path that bypasses the shadow on purpose is
//! [`ConfigMemory::corrupt_bit`] — the SEU backdoor, which models an
//! in-fabric upset precisely because it does *not* touch the check codes.
//! `presp-lint` forbids direct `frames` map manipulation anywhere else in
//! the crate.

use crate::ecc::{scrub_frame_words, FrameEcc, FrameRepair};
use crate::error::Error;
use crate::fabric::Device;
use crate::frame::FrameAddress;
use std::collections::BTreeMap;

/// One configuration frame's payload.
pub type Frame = Vec<u32>;

/// A bit-exact copy of a set of frames and their check codes, used both as
/// the per-tile golden store and as the pre-transaction image a failed
/// reconfiguration rolls back to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionSnapshot {
    frames: BTreeMap<FrameAddress, (Frame, FrameEcc)>,
    frame_words: usize,
}

impl RegionSnapshot {
    /// Addresses captured by this snapshot.
    pub fn addresses(&self) -> Vec<FrameAddress> {
        self.frames.keys().copied().collect()
    }

    /// Number of captured frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when no frames are captured.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Returns a copy of this snapshot re-addressed `col_delta` columns
    /// away, payload and check codes bit-exact.
    ///
    /// This is the configuration-memory half of region relocation: restore
    /// the shifted snapshot and the ECC shadow at the destination is in the
    /// exact state it held at the source — an upset captured mid-move stays
    /// detectable instead of being silently re-encoded as truth.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadFrameAddress`] when a shifted address leaves the
    /// fabric or lands on a column of a different kind.
    pub fn shift_columns(&self, device: &Device, col_delta: i64) -> Result<RegionSnapshot, Error> {
        let mut frames = BTreeMap::new();
        for (addr, entry) in &self.frames {
            let col = addr.column as i64 + col_delta;
            if col < 0 || col as usize >= device.columns() {
                return Err(Error::BadFrameAddress {
                    detail: format!(
                        "shifted column {col} outside the fabric's {} columns",
                        device.columns()
                    ),
                });
            }
            let src_kind = device.column_kind(addr.column as usize);
            let dst_kind = device.column_kind(col as usize);
            if src_kind != dst_kind {
                return Err(Error::BadFrameAddress {
                    detail: format!(
                        "shift maps {src_kind:?} column {} onto {dst_kind:?} column {col}: \
                         frame geometry differs",
                        addr.column
                    ),
                });
            }
            let new = FrameAddress::new(addr.row, col as u32, addr.minor);
            device.validate_frame(new)?;
            frames.insert(new, entry.clone());
        }
        Ok(RegionSnapshot {
            frames,
            frame_words: self.frame_words,
        })
    }
}

/// The frame-addressable configuration memory of a device.
///
/// Frames that were never written read back as all-zero (the post-PROG state
/// of the real device). An erased frame implicitly carries an all-zero check
/// code, which is exactly `FrameEcc::encode(&zeros)` — the sparse map and the
/// ECC shadow agree by construction.
///
/// # Example
///
/// ```
/// use presp_fpga::config_memory::ConfigMemory;
/// use presp_fpga::frame::FrameAddress;
/// use presp_fpga::part::FpgaPart;
///
/// let device = FpgaPart::Vc707.device();
/// let mut mem = ConfigMemory::new(&device);
/// let addr = FrameAddress::new(0, 1, 0);
/// mem.write_frame(addr, vec![0xDEAD_BEEF; mem.frame_words()])?;
/// assert_eq!(mem.frame(addr)[0], 0xDEAD_BEEF);
/// # Ok::<(), presp_fpga::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct ConfigMemory {
    device: Device,
    frame_words: usize,
    frames: BTreeMap<FrameAddress, Frame>,
    ecc: BTreeMap<FrameAddress, FrameEcc>,
}

impl ConfigMemory {
    /// Creates an all-zero configuration memory for `device`.
    pub fn new(device: &Device) -> ConfigMemory {
        ConfigMemory {
            device: device.clone(),
            frame_words: device.part().family().frame_words(),
            frames: BTreeMap::new(),
            ecc: BTreeMap::new(),
        }
    }

    /// Words per frame on this device.
    pub fn frame_words(&self) -> usize {
        self.frame_words
    }

    /// The device this memory belongs to.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Writes one frame, refreshing its SECDED check codes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadFrameAddress`] if the address does not exist on the
    /// device or the payload length differs from the frame size.
    pub fn write_frame(&mut self, addr: FrameAddress, data: Frame) -> Result<(), Error> {
        self.device.validate_frame(addr)?;
        if data.len() != self.frame_words {
            return Err(Error::BadFrameAddress {
                detail: format!(
                    "frame payload {} words, expected {}",
                    data.len(),
                    self.frame_words
                ),
            });
        }
        if data.iter().all(|&w| w == 0) {
            // All-zero equals the erased state; keep the map sparse. The
            // implicit check code of an erased frame is all-zero too.
            self.frames.remove(&addr);
            self.ecc.remove(&addr);
        } else {
            self.ecc.insert(addr, FrameEcc::encode(&data));
            self.frames.insert(addr, data);
        }
        Ok(())
    }

    /// Reads back one frame (all-zero if never written).
    pub fn frame(&self, addr: FrameAddress) -> Frame {
        self.frames
            .get(&addr)
            .cloned()
            .unwrap_or_else(|| vec![0; self.frame_words])
    }

    /// The SECDED check codes currently shadowing `addr` (the implicit
    /// all-zero code for erased frames).
    pub fn frame_ecc(&self, addr: FrameAddress) -> FrameEcc {
        self.ecc
            .get(&addr)
            .cloned()
            .unwrap_or_else(|| FrameEcc::erased(self.frame_words))
    }

    /// Returns `true` if the frame was written with non-zero content.
    pub fn is_configured(&self, addr: FrameAddress) -> bool {
        self.frames.contains_key(&addr)
    }

    /// Number of frames holding non-zero content.
    pub fn configured_frames(&self) -> usize {
        self.frames.len()
    }

    /// Addresses of every configured (non-erased) frame, in address order.
    pub fn configured_addresses(&self) -> Vec<FrameAddress> {
        self.frames.keys().copied().collect()
    }

    /// Flips one payload bit **without** updating the check codes: the SEU
    /// backdoor. The resulting frame/ECC disagreement is what readback
    /// scrubbing detects and repairs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadFrameAddress`] for an invalid address or a
    /// word/bit index outside the frame.
    pub fn corrupt_bit(&mut self, addr: FrameAddress, word: usize, bit: u32) -> Result<(), Error> {
        self.device.validate_frame(addr)?;
        if word >= self.frame_words || bit >= 32 {
            return Err(Error::BadFrameAddress {
                detail: format!("upset target word {word} bit {bit} outside frame"),
            });
        }
        let frame = self
            .frames
            .entry(addr)
            .or_insert_with(|| vec![0; self.frame_words]);
        frame[word] ^= 1 << bit;
        // Deliberately no ECC refresh: the shadow now disagrees with the
        // payload, exactly as a real upset leaves the fabric. An upset in a
        // previously-erased frame is covered by the implicit all-zero code.
        Ok(())
    }

    /// Reads back `addr` and repairs what SECDED can, in place.
    ///
    /// On a correctable upset the payload is restored and (for check-code
    /// upsets) the shadow re-encoded; an uncorrectable frame is left
    /// untouched so a golden restore can still be attempted.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadFrameAddress`] for an invalid address.
    pub fn scrub_frame(&mut self, addr: FrameAddress) -> Result<FrameRepair, Error> {
        self.device.validate_frame(addr)?;
        let Some(frame) = self.frames.get_mut(&addr) else {
            // Erased frames are implicitly clean (zero payload, zero code).
            return Ok(FrameRepair::Clean);
        };
        let ecc = self
            .ecc
            .get(&addr)
            .cloned()
            .unwrap_or_else(|| FrameEcc::erased(self.frame_words));
        let repair = scrub_frame_words(frame, &ecc);
        if matches!(repair, FrameRepair::Corrected { .. }) {
            // Re-latch both sides of the doorway: a repaired frame gets a
            // fresh code, and a frame repaired back to all-zero returns to
            // the sparse erased state.
            let data = frame.clone();
            self.write_frame(addr, data)?;
        }
        Ok(repair)
    }

    /// Captures a bit-exact snapshot (payload + check codes) of `addrs`.
    ///
    /// # Errors
    ///
    /// Returns an error on the first invalid address.
    pub fn snapshot<'a, I: IntoIterator<Item = &'a FrameAddress>>(
        &self,
        addrs: I,
    ) -> Result<RegionSnapshot, Error> {
        let mut frames = BTreeMap::new();
        for addr in addrs {
            self.device.validate_frame(*addr)?;
            frames.insert(*addr, (self.frame(*addr), self.frame_ecc(*addr)));
        }
        Ok(RegionSnapshot {
            frames,
            frame_words: self.frame_words,
        })
    }

    /// Restores every frame in `snap` bit-for-bit, check codes included.
    ///
    /// # Errors
    ///
    /// Returns an error on the first invalid address (only possible when the
    /// snapshot came from a different device geometry).
    pub fn restore(&mut self, snap: &RegionSnapshot) -> Result<(), Error> {
        for (addr, (data, ecc)) in &snap.frames {
            self.device.validate_frame(*addr)?;
            if data.iter().all(|&w| w == 0) {
                self.frames.remove(addr);
                self.ecc.remove(addr);
            } else {
                self.frames.insert(*addr, data.clone());
                self.ecc.insert(*addr, ecc.clone());
            }
        }
        Ok(())
    }

    /// Clears every frame in `addrs` back to the erased state.
    ///
    /// # Errors
    ///
    /// Returns an error on the first invalid address.
    pub fn clear_frames<'a, I: IntoIterator<Item = &'a FrameAddress>>(
        &mut self,
        addrs: I,
    ) -> Result<(), Error> {
        for addr in addrs {
            self.device.validate_frame(*addr)?;
            self.frames.remove(addr);
            self.ecc.remove(addr);
        }
        Ok(())
    }

    /// Addresses whose content differs between `self` and `other`.
    pub fn diff(&self, other: &ConfigMemory) -> Vec<FrameAddress> {
        let mut addrs: Vec<FrameAddress> = self
            .frames
            .keys()
            .chain(other.frames.keys())
            .copied()
            .collect();
        addrs.sort_unstable();
        addrs.dedup();
        addrs
            .into_iter()
            .filter(|a| self.frame(*a) != other.frame(*a))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::part::FpgaPart;

    fn mem() -> ConfigMemory {
        ConfigMemory::new(&FpgaPart::Vc707.device())
    }

    #[test]
    fn unwritten_frames_read_zero() {
        let m = mem();
        let addr = FrameAddress::new(2, 3, 1);
        assert!(m.frame(addr).iter().all(|&w| w == 0));
        assert!(!m.is_configured(addr));
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut m = mem();
        let addr = FrameAddress::new(1, 2, 3);
        let data: Frame = (0..m.frame_words() as u32).collect();
        m.write_frame(addr, data.clone()).unwrap();
        assert_eq!(m.frame(addr), data);
        assert_eq!(m.configured_frames(), 1);
    }

    #[test]
    fn zero_write_erases() {
        let mut m = mem();
        let addr = FrameAddress::new(1, 2, 3);
        m.write_frame(addr, vec![7; m.frame_words()]).unwrap();
        m.write_frame(addr, vec![0; m.frame_words()]).unwrap();
        assert!(!m.is_configured(addr));
    }

    #[test]
    fn wrong_length_is_rejected() {
        let mut m = mem();
        let addr = FrameAddress::new(0, 1, 0);
        assert!(m.write_frame(addr, vec![1, 2, 3]).is_err());
    }

    #[test]
    fn invalid_address_is_rejected() {
        let mut m = mem();
        let words = m.frame_words();
        assert!(m
            .write_frame(FrameAddress::new(999, 0, 0), vec![1; words])
            .is_err());
    }

    #[test]
    fn diff_reports_changed_frames() {
        let mut a = mem();
        let mut b = mem();
        let f1 = FrameAddress::new(0, 1, 0);
        let f2 = FrameAddress::new(0, 1, 1);
        let words = a.frame_words();
        a.write_frame(f1, vec![1; words]).unwrap();
        b.write_frame(f1, vec![1; words]).unwrap();
        b.write_frame(f2, vec![2; words]).unwrap();
        assert_eq!(a.diff(&b), vec![f2]);
        assert_eq!(a.diff(&a), Vec::new());
    }

    #[test]
    fn clear_frames_restores_erased_state() {
        let mut m = mem();
        let addr = FrameAddress::new(3, 4, 2);
        m.write_frame(addr, vec![9; m.frame_words()]).unwrap();
        m.clear_frames(std::iter::once(&addr)).unwrap();
        assert_eq!(m.configured_frames(), 0);
    }

    #[test]
    fn corrupt_then_scrub_repairs_single_bit() {
        let mut m = mem();
        let addr = FrameAddress::new(0, 1, 0);
        let data: Frame = (1..=m.frame_words() as u32).collect();
        m.write_frame(addr, data.clone()).unwrap();
        m.corrupt_bit(addr, 4, 13).unwrap();
        assert_ne!(m.frame(addr), data);
        assert_eq!(
            m.scrub_frame(addr).unwrap(),
            FrameRepair::Corrected { words: vec![4] }
        );
        assert_eq!(m.frame(addr), data);
        assert_eq!(m.scrub_frame(addr).unwrap(), FrameRepair::Clean);
    }

    #[test]
    fn double_bit_upset_is_uncorrectable_and_untouched() {
        let mut m = mem();
        let addr = FrameAddress::new(0, 1, 0);
        m.write_frame(addr, vec![0xCAFE_F00D; m.frame_words()])
            .unwrap();
        m.corrupt_bit(addr, 2, 5).unwrap();
        m.corrupt_bit(addr, 2, 30).unwrap();
        let corrupted = m.frame(addr);
        assert_eq!(
            m.scrub_frame(addr).unwrap(),
            FrameRepair::Uncorrectable { word: 2 }
        );
        assert_eq!(m.frame(addr), corrupted, "uncorrectable frame left as-is");
    }

    #[test]
    fn upset_in_erased_frame_scrubs_back_to_erased() {
        let mut m = mem();
        let addr = FrameAddress::new(1, 1, 1);
        m.corrupt_bit(addr, 0, 0).unwrap();
        assert!(m.is_configured(addr), "upset materializes the frame");
        assert_eq!(
            m.scrub_frame(addr).unwrap(),
            FrameRepair::Corrected { words: vec![0] }
        );
        assert!(
            !m.is_configured(addr),
            "repair returns to sparse erased state"
        );
    }

    #[test]
    fn snapshot_restore_is_bit_exact() {
        let mut m = mem();
        let a1 = FrameAddress::new(0, 1, 0);
        let a2 = FrameAddress::new(0, 1, 1);
        let words = m.frame_words();
        m.write_frame(a1, vec![3; words]).unwrap();
        m.write_frame(a2, vec![4; words]).unwrap();
        let snap = m.snapshot([a1, a2].iter()).unwrap();
        assert_eq!(snap.len(), 2);
        m.corrupt_bit(a1, 0, 7).unwrap();
        m.write_frame(a2, vec![9; words]).unwrap();
        m.restore(&snap).unwrap();
        assert_eq!(m.frame(a1), vec![3; words]);
        assert_eq!(m.frame(a2), vec![4; words]);
        assert_eq!(m.scrub_frame(a1).unwrap(), FrameRepair::Clean);
        assert_eq!(m.scrub_frame(a2).unwrap(), FrameRepair::Clean);
    }

    #[test]
    fn restoring_an_erased_snapshot_erases() {
        let mut m = mem();
        let addr = FrameAddress::new(2, 2, 0);
        let snap = m.snapshot(std::iter::once(&addr)).unwrap();
        m.write_frame(addr, vec![5; m.frame_words()]).unwrap();
        m.restore(&snap).unwrap();
        assert!(!m.is_configured(addr));
    }
}
