//! Error type for the FPGA substrate.

use std::fmt;

/// Errors produced by fabric, pblock, bitstream and ICAP operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A pblock rectangle is degenerate (zero width or height).
    EmptyPblock,
    /// A pblock extends past the device fabric.
    PblockOutOfBounds {
        /// Human-readable description of the offending extent.
        detail: String,
    },
    /// A pblock overlaps a column that may not be reconfigured (e.g. the
    /// configuration column).
    IllegalColumn {
        /// Index of the offending column.
        column: usize,
    },
    /// Two pblocks overlap.
    PblockOverlap,
    /// The bitstream is malformed (bad sync word, truncated packet, ...).
    MalformedBitstream {
        /// Human-readable description of the malformation.
        detail: String,
    },
    /// The bitstream CRC check failed inside the ICAP.
    CrcMismatch {
        /// CRC computed over the received frames.
        computed: u32,
        /// CRC carried by the bitstream.
        expected: u32,
    },
    /// A frame address does not exist on this device.
    BadFrameAddress {
        /// Human-readable description of the bad address.
        detail: String,
    },
    /// The bitstream targets a different device.
    IdcodeMismatch {
        /// IDCODE found in the bitstream.
        found: u32,
        /// IDCODE of the device being configured.
        device: u32,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyPblock => write!(f, "pblock rectangle is empty"),
            Error::PblockOutOfBounds { detail } => {
                write!(f, "pblock out of device bounds: {detail}")
            }
            Error::IllegalColumn { column } => {
                write!(f, "pblock covers non-reconfigurable column {column}")
            }
            Error::PblockOverlap => write!(f, "pblocks overlap"),
            Error::MalformedBitstream { detail } => {
                write!(f, "malformed bitstream: {detail}")
            }
            Error::CrcMismatch { computed, expected } => write!(
                f,
                "bitstream crc mismatch: computed {computed:#010x}, expected {expected:#010x}"
            ),
            Error::BadFrameAddress { detail } => {
                write!(f, "invalid frame address: {detail}")
            }
            Error::IdcodeMismatch { found, device } => write!(
                f,
                "bitstream idcode {found:#010x} does not match device {device:#010x}"
            ),
        }
    }
}

impl std::error::Error for Error {}
