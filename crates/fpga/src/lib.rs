//! FPGA device substrate for the PR-ESP platform.
//!
//! This crate models the parts of a Xilinx-style FPGA that the PR-ESP flow
//! interacts with when building partially reconfigurable SoCs:
//!
//! * [`resources`] — resource vectors (LUT/FF/BRAM/DSP) with saturating
//!   arithmetic, used everywhere utilization is tracked.
//! * [`part`] — the supported evaluation parts (VC707, VCU118, VCU128) and
//!   their headline capacities.
//! * [`fabric`] — a columnar fabric model: clock-region rows crossed with
//!   resource columns, the geometry that floorplanning operates on.
//! * [`pblock`] — rectangular placement constraints for reconfigurable
//!   partitions, with DPR legality checks.
//! * [`frame`] — configuration-frame addressing and per-column frame counts.
//! * [`bitstream`] — full/partial bitstream construction, including the
//!   multi-frame-write compression used by Vivado's compressed mode.
//! * [`icap`] — an ICAPE2/ICAPE3-style configuration port that parses
//!   bitstreams into configuration memory and models reconfiguration latency.
//! * [`ecc`] — per-word SECDED check codes layered under the bitstream CRC,
//!   so in-fabric upsets (SEUs) are correctable by readback scrubbing.
//!
//! # Example
//!
//! ```
//! use presp_fpga::part::FpgaPart;
//! use presp_fpga::pblock::Pblock;
//!
//! let device = FpgaPart::Vc707.device();
//! let pblock = Pblock::new(4, 10, 0, 2)?;
//! let capacity = device.pblock_resources(&pblock)?;
//! assert!(capacity.lut > 0);
//! # Ok::<(), presp_fpga::Error>(())
//! ```

pub mod bitstream;
pub mod config_memory;
pub mod ecc;
pub mod error;
pub mod fabric;
pub mod fault;
pub mod frame;
pub mod icap;
pub mod part;
pub mod pblock;
pub mod resources;

pub use error::Error;
pub use part::FpgaPart;
pub use pblock::Pblock;
pub use resources::Resources;
