//! Supported FPGA parts and their headline capacities.

use crate::fabric::Device;
use crate::resources::Resources;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration-architecture family of a part.
///
/// The family decides the ICAP primitive (ICAPE2 vs ICAPE3) and the
/// configuration frame geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// Xilinx 7-series (VC707). 101-word frames, ICAPE2.
    Series7,
    /// Xilinx UltraScale+ (VCU118, VCU128). 123-word frames, ICAPE3.
    UltraScalePlus,
}

impl Family {
    /// Number of 32-bit words in one configuration frame.
    pub fn frame_words(&self) -> usize {
        match self {
            Family::Series7 => 101,
            Family::UltraScalePlus => 123,
        }
    }
}

/// The evaluation boards supported by PR-ESP (Section IV of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FpgaPart {
    /// Xilinx VC707 (XC7VX485T, 7-series) — the paper's evaluation board.
    Vc707,
    /// Xilinx VCU118 (XCVU9P, UltraScale+).
    Vcu118,
    /// Xilinx VCU128 (XCVU37P, UltraScale+).
    Vcu128,
}

impl FpgaPart {
    /// All supported parts.
    pub const ALL: [FpgaPart; 3] = [FpgaPart::Vc707, FpgaPart::Vcu118, FpgaPart::Vcu128];

    /// Silicon device name.
    pub fn device_name(&self) -> &'static str {
        match self {
            FpgaPart::Vc707 => "xc7vx485t",
            FpgaPart::Vcu118 => "xcvu9p",
            FpgaPart::Vcu128 => "xcvu37p",
        }
    }

    /// Configuration family.
    pub fn family(&self) -> Family {
        match self {
            FpgaPart::Vc707 => Family::Series7,
            FpgaPart::Vcu118 | FpgaPart::Vcu128 => Family::UltraScalePlus,
        }
    }

    /// JTAG IDCODE checked by the configuration port.
    pub fn idcode(&self) -> u32 {
        match self {
            FpgaPart::Vc707 => 0x0368_7093,
            FpgaPart::Vcu118 => 0x14B3_1093,
            FpgaPart::Vcu128 => 0x14B7_9093,
        }
    }

    /// Nominal device capacity as published in the data sheet.
    ///
    /// The columnar [`Device`] model approximates these
    /// within a fraction of a percent; `LUT_tot` in the paper's Eq. (1) is the
    /// *nominal* capacity, so κ/α_av computations use this value.
    pub fn nominal_capacity(&self) -> Resources {
        match self {
            FpgaPart::Vc707 => Resources::new(303_600, 607_200, 1_030, 2_800),
            FpgaPart::Vcu118 => Resources::new(1_182_240, 2_364_480, 2_160, 6_840),
            FpgaPart::Vcu128 => Resources::new(1_303_680, 2_607_360, 2_016, 9_024),
        }
    }

    /// Number of clock-region rows of the fabric model.
    pub fn clock_region_rows(&self) -> usize {
        match self {
            FpgaPart::Vc707 => 7,
            FpgaPart::Vcu118 | FpgaPart::Vcu128 => 15,
        }
    }

    /// Builds the columnar fabric model for this part.
    pub fn device(&self) -> Device {
        Device::for_part(*self)
    }
}

impl fmt::Display for FpgaPart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let board = match self {
            FpgaPart::Vc707 => "VC707",
            FpgaPart::Vcu118 => "VCU118",
            FpgaPart::Vcu128 => "VCU128",
        };
        write!(f, "{board} ({})", self.device_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc707_matches_paper_capacity() {
        // κ = 82267 / 303600 = 27.1% is the paper's SOC_2 static fraction.
        let cap = FpgaPart::Vc707.nominal_capacity();
        assert_eq!(cap.lut, 303_600);
        let kappa = 82_267.0 / cap.lut as f64;
        assert!((kappa - 0.271).abs() < 0.001);
    }

    #[test]
    fn families_are_consistent() {
        assert_eq!(FpgaPart::Vc707.family(), Family::Series7);
        assert_eq!(FpgaPart::Vcu118.family(), Family::UltraScalePlus);
        assert_eq!(Family::Series7.frame_words(), 101);
        assert_eq!(Family::UltraScalePlus.frame_words(), 123);
    }

    #[test]
    fn idcodes_are_unique() {
        let mut codes: Vec<u32> = FpgaPart::ALL.iter().map(|p| p.idcode()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), FpgaPart::ALL.len());
    }

    #[test]
    fn display_names_mention_board() {
        assert!(format!("{}", FpgaPart::Vc707).contains("VC707"));
    }
}
