//! Columnar fabric model.
//!
//! Xilinx fabrics are organized as a grid of clock regions; within each
//! clock-region row the fabric is a sequence of columns, each holding a single
//! resource kind (CLB, BRAM, DSP, ...). Dynamic partial reconfiguration
//! operates at frame granularity, and a frame spans one column within one
//! clock-region row — which is why pblocks for reconfigurable partitions are
//! expressed in (column range) × (clock-region row range) coordinates here.

use crate::error::Error;
use crate::frame::{frames_per_column, FrameAddress};
use crate::part::FpgaPart;
use crate::pblock::Pblock;
use crate::resources::Resources;
use serde::{Deserialize, Serialize};

/// Resource kind held by a fabric column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnKind {
    /// Configurable logic block column (LUTs + flip-flops).
    Clb,
    /// Block RAM column.
    Bram,
    /// DSP slice column.
    Dsp,
    /// I/O column — no PR resources, but pblocks may span it.
    Io,
    /// Clocking column — no PR resources, but pblocks may span it.
    Clk,
    /// Configuration column — pblocks must never cover it.
    Cfg,
}

impl ColumnKind {
    /// Resources provided by one column within one clock-region row.
    ///
    /// 7-series geometry: a CLB column holds 50 CLBs of 8 LUTs / 16 FFs, a
    /// BRAM column holds 10 RAMB36, a DSP column holds 20 DSP48 slices.
    pub fn resources_per_row(&self) -> Resources {
        match self {
            ColumnKind::Clb => Resources::new(400, 800, 0, 0),
            ColumnKind::Bram => Resources::new(0, 0, 10, 0),
            ColumnKind::Dsp => Resources::new(0, 0, 0, 20),
            ColumnKind::Io | ColumnKind::Clk | ColumnKind::Cfg => Resources::ZERO,
        }
    }

    /// Whether a reconfigurable pblock may cover this column.
    pub fn reconfigurable(&self) -> bool {
        !matches!(self, ColumnKind::Cfg)
    }
}

/// A columnar model of one FPGA device.
///
/// # Example
///
/// ```
/// use presp_fpga::part::FpgaPart;
///
/// let device = FpgaPart::Vc707.device();
/// // The model approximates the data-sheet capacity within 1%.
/// let modeled = device.total_resources();
/// let nominal = FpgaPart::Vc707.nominal_capacity();
/// let err = (modeled.lut as f64 - nominal.lut as f64).abs() / nominal.lut as f64;
/// assert!(err < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    part: FpgaPart,
    rows: usize,
    columns: Vec<ColumnKind>,
}

impl Device {
    /// Builds the fabric for a part.
    pub fn for_part(part: FpgaPart) -> Device {
        // Column counts per clock-region row chosen so that
        // rows × columns × resources_per_row ≈ the data-sheet capacity.
        let (clb, bram, dsp) = match part {
            // 7 rows: 108*400*7 = 302,400 LUT; 15*10*7 = 1,050 BRAM; 20*20*7 = 2,800 DSP.
            FpgaPart::Vc707 => (108, 15, 20),
            // 15 rows: 197*400*15 = 1,182,000 LUT; 14*10*15 = 2,100; 23*20*15 = 6,900.
            FpgaPart::Vcu118 => (197, 14, 23),
            // 15 rows: 217*400*15 = 1,302,000 LUT; 13*10*15 = 1,950; 30*20*15 = 9,000.
            FpgaPart::Vcu128 => (217, 13, 30),
        };
        let columns = interleave_columns(clb, bram, dsp);
        Device {
            part,
            rows: part.clock_region_rows(),
            columns,
        }
    }

    /// The part this device models.
    pub fn part(&self) -> FpgaPart {
        self.part
    }

    /// Number of clock-region rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of fabric columns per clock-region row.
    pub fn columns(&self) -> usize {
        self.columns.len()
    }

    /// Kind of the column at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.columns()`.
    pub fn column_kind(&self, index: usize) -> ColumnKind {
        self.columns[index]
    }

    /// Total resources of the fabric model.
    pub fn total_resources(&self) -> Resources {
        let per_row: Resources = self.columns.iter().map(|c| c.resources_per_row()).sum();
        per_row * self.rows as u64
    }

    /// Resources enclosed by a pblock.
    ///
    /// # Errors
    ///
    /// Returns an error if the pblock is out of bounds or covers a
    /// non-reconfigurable column.
    pub fn pblock_resources(&self, pblock: &Pblock) -> Result<Resources, Error> {
        self.validate_pblock(pblock)?;
        let mut per_row = Resources::ZERO;
        for col in pblock.col_range() {
            per_row += self.columns[col].resources_per_row();
        }
        Ok(per_row * pblock.row_span() as u64)
    }

    /// Checks DPR legality of a pblock on this device: inside the fabric and
    /// clear of configuration columns.
    ///
    /// # Errors
    ///
    /// Returns [`Error::PblockOutOfBounds`] or [`Error::IllegalColumn`].
    pub fn validate_pblock(&self, pblock: &Pblock) -> Result<(), Error> {
        if pblock.col_end() > self.columns.len() || pblock.row_end() > self.rows {
            return Err(Error::PblockOutOfBounds {
                detail: format!(
                    "pblock cols {}..{} rows {}..{} on a {}x{} fabric",
                    pblock.col_start(),
                    pblock.col_end(),
                    pblock.row_start(),
                    pblock.row_end(),
                    self.columns.len(),
                    self.rows
                ),
            });
        }
        for col in pblock.col_range() {
            if !self.columns[col].reconfigurable() {
                return Err(Error::IllegalColumn { column: col });
            }
        }
        Ok(())
    }

    /// Enumerates the configuration frames covered by a pblock, in device
    /// address order.
    ///
    /// # Errors
    ///
    /// Returns an error if the pblock is illegal on this device.
    pub fn pblock_frames(&self, pblock: &Pblock) -> Result<Vec<FrameAddress>, Error> {
        self.validate_pblock(pblock)?;
        let mut frames = Vec::new();
        for row in pblock.row_range() {
            for col in pblock.col_range() {
                let n = frames_per_column(self.columns[col]);
                for minor in 0..n {
                    frames.push(FrameAddress::new(row as u32, col as u32, minor as u32));
                }
            }
        }
        Ok(frames)
    }

    /// Total number of configuration frames on the device.
    pub fn total_frames(&self) -> usize {
        self.rows
            * self
                .columns
                .iter()
                .map(|&c| frames_per_column(c))
                .sum::<usize>()
    }

    /// Checks that a frame address exists on this device.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadFrameAddress`] when the row, column or minor index
    /// is out of range.
    pub fn validate_frame(&self, addr: FrameAddress) -> Result<(), Error> {
        let bad = |detail: String| Err(Error::BadFrameAddress { detail });
        if addr.row as usize >= self.rows {
            return bad(format!("row {} of {}", addr.row, self.rows));
        }
        if addr.column as usize >= self.columns.len() {
            return bad(format!("column {} of {}", addr.column, self.columns.len()));
        }
        let minors = frames_per_column(self.columns[addr.column as usize]);
        if addr.minor as usize >= minors {
            return bad(format!("minor {} of {}", addr.minor, minors));
        }
        Ok(())
    }
}

/// Distributes BRAM and DSP columns evenly among CLB columns (largest-remainder
/// interleaving), with I/O at the edges and the clock + configuration column
/// pair in the middle — a simplified but structurally faithful die layout.
fn interleave_columns(clb: usize, bram: usize, dsp: usize) -> Vec<ColumnKind> {
    // Assign every column of every kind an evenly spaced fractional position
    // and merge by position; exact counts are guaranteed by construction.
    let mut slots: Vec<(f64, ColumnKind)> = Vec::with_capacity(clb + bram + dsp);
    let spread = |kind: ColumnKind, n: usize, slots: &mut Vec<(f64, ColumnKind)>| {
        for i in 0..n {
            // Distinct phase offsets per kind avoid position ties.
            let phase = match kind {
                ColumnKind::Bram => 0.31,
                ColumnKind::Dsp => 0.73,
                _ => 0.5,
            };
            slots.push(((i as f64 + phase) / n as f64, kind));
        }
    };
    spread(ColumnKind::Clb, clb, &mut slots);
    spread(ColumnKind::Bram, bram, &mut slots);
    spread(ColumnKind::Dsp, dsp, &mut slots);
    slots.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("positions are finite"));

    let body = slots.len();
    let mut cols = Vec::with_capacity(body + 4);
    cols.push(ColumnKind::Io);
    for (i, (_, kind)) in slots.into_iter().enumerate() {
        cols.push(kind);
        if i == body / 2 {
            cols.push(ColumnKind::Clk);
            cols.push(ColumnKind::Cfg);
        }
    }
    cols.push(ColumnKind::Io);
    cols
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc707_model_close_to_datasheet() {
        let device = FpgaPart::Vc707.device();
        let total = device.total_resources();
        let nominal = FpgaPart::Vc707.nominal_capacity();
        let rel = |a: u64, b: u64| (a as f64 - b as f64).abs() / b as f64;
        assert!(rel(total.lut, nominal.lut) < 0.01, "lut {total:?}");
        assert!(rel(total.bram, nominal.bram) < 0.03, "bram {total:?}");
        assert!(rel(total.dsp, nominal.dsp) < 0.01, "dsp {total:?}");
    }

    #[test]
    fn all_parts_have_expected_column_mix() {
        for part in FpgaPart::ALL {
            let device = part.device();
            let kinds: Vec<ColumnKind> = (0..device.columns())
                .map(|i| device.column_kind(i))
                .collect();
            assert_eq!(kinds.iter().filter(|&&k| k == ColumnKind::Cfg).count(), 1);
            assert_eq!(kinds.iter().filter(|&&k| k == ColumnKind::Clk).count(), 1);
            assert_eq!(kinds.iter().filter(|&&k| k == ColumnKind::Io).count(), 2);
            assert!(kinds.iter().filter(|&&k| k == ColumnKind::Bram).count() > 5);
            assert!(kinds.iter().filter(|&&k| k == ColumnKind::Dsp).count() > 5);
        }
    }

    #[test]
    fn pblock_over_cfg_column_is_illegal() {
        let device = FpgaPart::Vc707.device();
        let cfg_col = (0..device.columns())
            .find(|&i| device.column_kind(i) == ColumnKind::Cfg)
            .expect("device has a cfg column");
        let pb = Pblock::new(cfg_col, cfg_col + 1, 0, 1).expect("valid rectangle");
        assert_eq!(
            device.validate_pblock(&pb),
            Err(Error::IllegalColumn { column: cfg_col })
        );
    }

    #[test]
    fn pblock_out_of_bounds_is_rejected() {
        let device = FpgaPart::Vc707.device();
        let pb = Pblock::new(0, 4, 0, device.rows() + 1).expect("valid rectangle");
        assert!(matches!(
            device.validate_pblock(&pb),
            Err(Error::PblockOutOfBounds { .. })
        ));
    }

    #[test]
    fn pblock_resources_scale_with_rows() {
        let device = FpgaPart::Vc707.device();
        let one = device
            .pblock_resources(&Pblock::new(1, 20, 0, 1).unwrap())
            .unwrap();
        let two = device
            .pblock_resources(&Pblock::new(1, 20, 0, 2).unwrap())
            .unwrap();
        assert_eq!(two, one * 2);
    }

    #[test]
    fn frame_enumeration_matches_total() {
        let device = FpgaPart::Vc707.device();
        let full = Pblock::new(0, device.columns(), 0, device.rows()).unwrap();
        // The full device rectangle covers the cfg column, so it is not a legal
        // PR pblock; count frames per-column instead.
        assert!(device.validate_pblock(&full).is_err());
        let legal = Pblock::new(0, 10, 0, device.rows()).unwrap();
        let frames = device.pblock_frames(&legal).unwrap();
        let per_row: usize = (0..10)
            .map(|c| frames_per_column(device.column_kind(c)))
            .sum();
        assert_eq!(frames.len(), per_row * device.rows());
    }

    #[test]
    fn frame_validation() {
        let device = FpgaPart::Vc707.device();
        assert!(device.validate_frame(FrameAddress::new(0, 1, 0)).is_ok());
        assert!(device.validate_frame(FrameAddress::new(99, 1, 0)).is_err());
        assert!(device
            .validate_frame(FrameAddress::new(0, 9999, 0))
            .is_err());
        assert!(device
            .validate_frame(FrameAddress::new(0, 1, 9999))
            .is_err());
    }
}
