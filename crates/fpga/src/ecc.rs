//! Frame-level SECDED error correction, layered under the bitstream CRC.
//!
//! Each 32-bit configuration word carries a 7-bit check code: a (38,32)
//! Hamming code (6 check bits) extended with an overall parity bit, the
//! classic SECDED construction real configuration memories use. Any
//! single flipped bit — data, check, or the parity bit itself — is
//! corrected in place; any double flip within one word is detected and
//! reported uncorrectable rather than miscorrected.
//!
//! The code is systematic over a virtual codeword: data bits occupy
//! positions 3..=38 skipping powers of two, check bit `c_i` sits at
//! position `2^i`, and the overall parity bit covers everything. A
//! zero word encodes to a zero check code, so an all-zero (erased)
//! frame with no stored ECC decodes clean — the sparse-map invariant
//! of [`crate::config_memory::ConfigMemory`] costs nothing.

/// Number of Hamming check bits per 32-bit word.
const CHECK_BITS: u32 = 6;
/// Highest occupied codeword position (1-based): 32 data + 6 check = 38.
const CODE_TOP: u32 = 38;
/// Bit holding the overall (SECDED) parity inside the stored check byte.
const PARITY_BIT: u8 = 1 << 6;

/// Codeword position (1-based) of data bit `bit` (0-based LSB-first).
fn data_position(bit: u32) -> u32 {
    // Positions 1, 2, 4, 8, 16, 32 are check bits; data fills the rest
    // in order. Precomputing the skip count keeps this branch-free-ish.
    let mut pos = bit + 3; // positions 1 and 2 are always check bits
    if pos >= 4 {
        pos += 1;
    }
    if pos >= 8 {
        pos += 1;
    }
    if pos >= 16 {
        pos += 1;
    }
    if pos >= 32 {
        pos += 1;
    }
    pos
}

/// Data bit index for codeword position `pos`, or `None` for check positions.
fn position_data_bit(pos: u32) -> Option<u32> {
    if pos == 0 || pos > CODE_TOP || pos.is_power_of_two() {
        return None;
    }
    let skipped = pos.ilog2() + 1; // check positions below `pos`
    Some(pos - 1 - skipped)
}

/// Hamming check bits (low 6 bits) for `word`.
fn hamming_checks(word: u32) -> u8 {
    let mut checks = 0u8;
    for bit in 0..32 {
        if word >> bit & 1 == 1 {
            checks ^= (data_position(bit) & 0x3F) as u8;
        }
    }
    checks
}

/// Encodes one 32-bit word into its 7-bit SECDED check code.
pub fn encode_word(word: u32) -> u8 {
    let checks = hamming_checks(word);
    let overall = (word.count_ones() + u32::from(checks).count_ones()) & 1;
    checks | ((overall as u8) << CHECK_BITS)
}

/// Outcome of decoding one word against its stored check code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WordDecode {
    /// Word and code agree.
    Clean,
    /// A single data bit was flipped; `word` is the repaired value.
    CorrectedData { word: u32 },
    /// A single check-code bit was flipped; the data word is intact.
    CorrectedCheck,
    /// A double-bit (or worse) upset: detected, not correctable.
    Uncorrectable,
}

/// Decodes `word` against `stored`, classifying and correcting upsets.
pub fn decode_word(word: u32, stored: u8) -> WordDecode {
    let syndrome = u32::from(hamming_checks(word) ^ (stored & 0x3F));
    let computed_parity = (word.count_ones() + u32::from(stored & 0x3F).count_ones()) & 1;
    let stored_parity = u32::from(stored & PARITY_BIT != 0);
    let parity_mismatch = computed_parity != stored_parity;
    match (syndrome, parity_mismatch) {
        (0, false) => WordDecode::Clean,
        // Only the overall parity bit flipped: data and checks intact.
        (0, true) => WordDecode::CorrectedCheck,
        // Odd number of flips with a non-zero syndrome: a single-bit error
        // at codeword position `syndrome` (if that position exists).
        (s, true) => match position_data_bit(s) {
            Some(bit) => WordDecode::CorrectedData {
                word: word ^ (1 << bit),
            },
            // A check-bit position, or a position outside the codeword
            // (the latter cannot arise from a true single flip).
            None if s.is_power_of_two() && s <= CODE_TOP => WordDecode::CorrectedCheck,
            None => WordDecode::Uncorrectable,
        },
        // Even flip count but non-zero syndrome: the defining double-bit
        // signature of SECDED.
        (_, false) => WordDecode::Uncorrectable,
    }
}

/// Per-frame check codes, one byte per frame word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameEcc {
    checks: Vec<u8>,
}

impl FrameEcc {
    /// Computes check codes for every word of `frame`.
    pub fn encode(frame: &[u32]) -> FrameEcc {
        FrameEcc {
            checks: frame.iter().map(|&w| encode_word(w)).collect(),
        }
    }

    /// An all-zero code vector: what an erased frame implicitly carries.
    pub fn erased(frame_words: usize) -> FrameEcc {
        FrameEcc {
            checks: vec![0; frame_words],
        }
    }

    /// The stored check byte for word `index`.
    pub fn check(&self, index: usize) -> u8 {
        self.checks[index]
    }

    /// Number of covered words.
    pub fn len(&self) -> usize {
        self.checks.len()
    }

    /// `true` when no words are covered.
    pub fn is_empty(&self) -> bool {
        self.checks.is_empty()
    }
}

/// Result of scrubbing one frame against its check codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameRepair {
    /// Every word decoded clean.
    Clean,
    /// Single-bit upsets were corrected in place at these word indices
    /// (check-code-only flips are listed too: the stored code is stale).
    Corrected { words: Vec<usize> },
    /// At least one word holds a double-bit upset; `word` is the first.
    Uncorrectable { word: usize },
}

/// Decodes `frame` in place against `ecc`, correcting what SECDED can.
///
/// Correctable upsets are repaired directly in `frame`; the first
/// uncorrectable word aborts the pass (the frame cannot be trusted, so
/// partial repair is pointless).
///
/// # Panics
///
/// Panics if `frame` and `ecc` cover different word counts.
pub fn scrub_frame_words(frame: &mut [u32], ecc: &FrameEcc) -> FrameRepair {
    assert_eq!(
        frame.len(),
        ecc.len(),
        "frame and ECC word counts must match"
    );
    let mut corrected = Vec::new();
    for (index, word) in frame.iter_mut().enumerate() {
        match decode_word(*word, ecc.check(index)) {
            WordDecode::Clean => {}
            WordDecode::CorrectedData { word: fixed } => {
                *word = fixed;
                corrected.push(index);
            }
            WordDecode::CorrectedCheck => corrected.push(index),
            WordDecode::Uncorrectable => return FrameRepair::Uncorrectable { word: index },
        }
    }
    if corrected.is_empty() {
        FrameRepair::Clean
    } else {
        FrameRepair::Corrected { words: corrected }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn encode_decode_is_identity_on_clean_frames(
            frame in proptest::collection::vec(0u32..u32::MAX, 1..40),
        ) {
            let ecc = FrameEcc::encode(&frame);
            for (i, &w) in frame.iter().enumerate() {
                prop_assert_eq!(decode_word(w, ecc.check(i)), WordDecode::Clean);
            }
            let mut scrubbed = frame.clone();
            prop_assert_eq!(scrub_frame_words(&mut scrubbed, &ecc), FrameRepair::Clean);
            prop_assert_eq!(scrubbed, frame);
        }

        #[test]
        fn any_single_bit_flip_is_corrected(
            frame in proptest::collection::vec(0u32..u32::MAX, 1..40),
            word_sel in 0usize..1000,
            bit in 0u32..32,
        ) {
            let ecc = FrameEcc::encode(&frame);
            let word = word_sel % frame.len();
            let mut upset = frame.clone();
            upset[word] ^= 1 << bit;
            prop_assert_eq!(
                scrub_frame_words(&mut upset, &ecc),
                FrameRepair::Corrected { words: vec![word] }
            );
            prop_assert_eq!(upset, frame);
        }

        #[test]
        fn any_double_bit_flip_is_detected_not_miscorrected(
            frame in proptest::collection::vec(0u32..u32::MAX, 1..40),
            word_sel in 0usize..1000,
            bit_a in 0u32..32,
            bit_b in 0u32..32,
        ) {
            prop_assume!(bit_a != bit_b);
            let ecc = FrameEcc::encode(&frame);
            let word = word_sel % frame.len();
            let mut upset = frame.clone();
            upset[word] ^= (1 << bit_a) | (1 << bit_b);
            let expected = upset.clone();
            prop_assert_eq!(
                scrub_frame_words(&mut upset, &ecc),
                FrameRepair::Uncorrectable { word }
            );
            prop_assert_eq!(upset, expected, "no miscorrection of a double flip");
        }
    }

    #[test]
    fn zero_encodes_to_zero() {
        assert_eq!(encode_word(0), 0);
        assert_eq!(decode_word(0, 0), WordDecode::Clean);
    }

    #[test]
    fn data_positions_are_a_bijection() {
        let mut seen = std::collections::BTreeSet::new();
        for bit in 0..32 {
            let pos = data_position(bit);
            assert!(!pos.is_power_of_two(), "bit {bit} landed on a check slot");
            assert!((3..=CODE_TOP).contains(&pos));
            assert!(seen.insert(pos), "position {pos} reused");
            assert_eq!(position_data_bit(pos), Some(bit));
        }
    }

    #[test]
    fn single_data_flip_is_corrected() {
        let word = 0xA5F0_3C96u32;
        let code = encode_word(word);
        for bit in 0..32 {
            let flipped = word ^ (1 << bit);
            assert_eq!(
                decode_word(flipped, code),
                WordDecode::CorrectedData { word },
                "bit {bit}"
            );
        }
    }

    #[test]
    fn single_check_flip_leaves_data_intact() {
        let word = 0x0000_0001u32;
        let code = encode_word(word);
        for bit in 0..7 {
            let outcome = decode_word(word, code ^ (1 << bit));
            assert_eq!(outcome, WordDecode::CorrectedCheck, "check bit {bit}");
        }
    }

    #[test]
    fn double_data_flip_is_uncorrectable() {
        let word = 0x1234_5678u32;
        let code = encode_word(word);
        for a in 0..32 {
            for b in (a + 1)..32 {
                let flipped = word ^ (1 << a) ^ (1 << b);
                assert_eq!(
                    decode_word(flipped, code),
                    WordDecode::Uncorrectable,
                    "bits {a},{b}"
                );
            }
        }
    }

    #[test]
    fn frame_scrub_repairs_in_place() {
        let clean: Vec<u32> = (0..12).map(|i| 0x9E37_79B9u32.wrapping_mul(i)).collect();
        let ecc = FrameEcc::encode(&clean);
        let mut frame = clean.clone();
        frame[3] ^= 1 << 17;
        frame[9] ^= 1 << 2;
        assert_eq!(
            scrub_frame_words(&mut frame, &ecc),
            FrameRepair::Corrected { words: vec![3, 9] }
        );
        assert_eq!(frame, clean);
        assert_eq!(scrub_frame_words(&mut frame, &ecc), FrameRepair::Clean);
    }

    #[test]
    fn frame_scrub_reports_first_uncorrectable() {
        let clean = vec![0xFFFF_0000u32; 8];
        let ecc = FrameEcc::encode(&clean);
        let mut frame = clean;
        frame[5] ^= (1 << 4) | (1 << 20);
        assert_eq!(
            scrub_frame_words(&mut frame, &ecc),
            FrameRepair::Uncorrectable { word: 5 }
        );
    }
}
