//! ICAP (internal configuration access port) model.
//!
//! The ICAP consumes the packet stream produced by
//! [`BitstreamBuilder`](crate::bitstream::BitstreamBuilder) one 32-bit word
//! per clock cycle and applies frame writes to a [`ConfigMemory`]. The word
//! count therefore *is* the reconfiguration latency — which is exactly why
//! the paper generates partial bitstreams in Vivado's compressed mode "to
//! reduce the memory access latency during reconfiguration" (Section VI).

use crate::bitstream::{
    decode_header, Bitstream, Command, ConfigReg, CrcAccumulator, PacketHeader, SYNC_WORD,
};
use crate::config_memory::ConfigMemory;
use crate::error::Error;
use crate::fabric::Device;
use crate::frame::FrameAddress;
use serde::{Deserialize, Serialize};

/// Nominal ICAP clock in MHz (both ICAPE2 and ICAPE3 are commonly run at
/// 100 MHz with a 32-bit data path).
pub const ICAP_CLOCK_MHZ: f64 = 100.0;

/// Outcome of streaming one bitstream through the ICAP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IcapReport {
    /// Words consumed (one per ICAP clock cycle).
    pub words: usize,
    /// Distinct frames written into configuration memory.
    pub frames_written: usize,
    /// Reconfiguration latency in microseconds at [`ICAP_CLOCK_MHZ`].
    pub micros: f64,
}

impl IcapReport {
    /// Latency in ICAP clock cycles.
    pub fn cycles(&self) -> u64 {
        self.words as u64
    }
}

/// Extracts the single word of a one-word register write.
fn single(payload: &[u32]) -> Result<u32, Error> {
    if payload.len() != 1 {
        return Err(Error::MalformedBitstream {
            detail: format!(
                "expected 1-word register write, got {} words",
                payload.len()
            ),
        });
    }
    Ok(payload[0])
}

/// State machine states of the configuration logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Waiting for the sync word.
    Unsynced,
    /// Synced, expecting a packet header.
    Idle,
}

/// An ICAPE2/ICAPE3-style configuration port bound to a device's
/// configuration memory.
///
/// # Example
///
/// ```
/// use presp_fpga::bitstream::{BitstreamBuilder, BitstreamKind};
/// use presp_fpga::frame::FrameAddress;
/// use presp_fpga::icap::Icap;
/// use presp_fpga::part::FpgaPart;
///
/// let device = FpgaPart::Vc707.device();
/// let mut builder = BitstreamBuilder::new(&device, BitstreamKind::Partial);
/// let words = device.part().family().frame_words();
/// builder.add_frame(FrameAddress::new(0, 1, 0), vec![0xABCD_0123; words])?;
/// let bs = builder.build(true);
///
/// let mut icap = Icap::new(&device);
/// let report = icap.load(&bs)?;
/// assert_eq!(report.frames_written, 1);
/// assert_eq!(icap.memory().frame(FrameAddress::new(0, 1, 0))[0], 0xABCD_0123);
/// # Ok::<(), presp_fpga::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Icap {
    device: Device,
    memory: ConfigMemory,
    frame_words: usize,
    last_written: Vec<FrameAddress>,
}

impl Icap {
    /// Creates an ICAP over a fresh (erased) configuration memory.
    pub fn new(device: &Device) -> Icap {
        Icap {
            device: device.clone(),
            memory: ConfigMemory::new(device),
            frame_words: device.part().family().frame_words(),
            last_written: Vec::new(),
        }
    }

    /// The configuration memory behind the port.
    pub fn memory(&self) -> &ConfigMemory {
        &self.memory
    }

    /// Mutable access to the configuration memory — the hook SEU injection,
    /// readback scrubbing, and transactional rollback operate through. All
    /// mutation still funnels through [`ConfigMemory`]'s own doorway methods.
    pub fn memory_mut(&mut self) -> &mut ConfigMemory {
        &mut self.memory
    }

    /// Frame addresses written by the most recent [`Icap::load`] call, in
    /// write order (duplicates possible under multi-frame writes). This is
    /// what lets the runtime associate a tile with the region its partial
    /// bitstreams actually touch.
    pub fn last_written(&self) -> &[FrameAddress] {
        &self.last_written
    }

    /// Streams a bitstream through the port, applying frame writes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IdcodeMismatch`] when the bitstream targets another
    /// device, [`Error::CrcMismatch`] when the embedded CRC does not match
    /// the received payload, and [`Error::MalformedBitstream`] for packet
    /// layer violations. On error the configuration memory may be partially
    /// updated — exactly like real silicon, which is why the DFX controller
    /// resorts to loading a known-good bitstream after a failed transfer.
    pub fn load(&mut self, bitstream: &Bitstream) -> Result<IcapReport, Error> {
        self.last_written.clear();
        let words = bitstream.words();
        let mut state = State::Unsynced;
        let mut crc = CrcAccumulator::new();
        let mut far: Option<FrameAddress> = None;
        let mut shadow: Vec<u32> = Vec::new();
        let mut frames_written = 0usize;
        let mut multi_frame = false;
        let mut desynced = false;
        let mut i = 0usize;

        while i < words.len() {
            let w = words[i];
            i += 1;
            match state {
                State::Unsynced => {
                    if w == SYNC_WORD {
                        state = State::Idle;
                    }
                    // Dummy/pad words before sync are skipped silently.
                }
                State::Idle => {
                    match decode_header(w)? {
                        PacketHeader::Nop => {}
                        PacketHeader::Type2Write { count } => {
                            // Large FDRI continuation.
                            let payload = self.take(words, &mut i, count as usize)?;
                            frames_written +=
                                self.write_burst(&mut far, payload, &mut crc, &mut shadow)?;
                        }
                        PacketHeader::Type1Write { reg, count } => {
                            let payload = self.take(words, &mut i, count as usize)?;
                            match reg {
                                ConfigReg::Idcode => {
                                    let id = single(payload)?;
                                    if id != self.device.part().idcode() {
                                        return Err(Error::IdcodeMismatch {
                                            found: id,
                                            device: self.device.part().idcode(),
                                        });
                                    }
                                }
                                ConfigReg::Cmd => match Command::from_value(single(payload)?) {
                                    Some(Command::Rcrc) => crc = CrcAccumulator::new(),
                                    Some(Command::Wcfg) => multi_frame = false,
                                    Some(Command::Mfw) => multi_frame = true,
                                    Some(Command::Desync) => {
                                        desynced = true;
                                        state = State::Unsynced;
                                    }
                                    None => {
                                        return Err(Error::MalformedBitstream {
                                            detail: "unknown command opcode".into(),
                                        })
                                    }
                                },
                                ConfigReg::Far => {
                                    let v = single(payload)?;
                                    crc.update(v);
                                    far = Some(FrameAddress::unpack(v));
                                }
                                ConfigReg::Fdri => {
                                    if count == 0 {
                                        // Payload follows in a type-2 packet.
                                        continue;
                                    }
                                    frames_written +=
                                        self.write_burst(&mut far, payload, &mut crc, &mut shadow)?;
                                }
                                ConfigReg::Mfwr => {
                                    if !multi_frame {
                                        return Err(Error::MalformedBitstream {
                                            detail: "MFWR outside multi-frame-write mode".into(),
                                        });
                                    }
                                    let addr = far.ok_or_else(|| Error::MalformedBitstream {
                                        detail: "MFWR with no FAR set".into(),
                                    })?;
                                    if shadow.len() != self.frame_words {
                                        return Err(Error::MalformedBitstream {
                                            detail: "MFWR with empty frame shadow register".into(),
                                        });
                                    }
                                    self.memory.write_frame(addr, shadow.clone())?;
                                    self.last_written.push(addr);
                                    frames_written += 1;
                                }
                                ConfigReg::Crc => {
                                    let expected = single(payload)?;
                                    let computed = crc.value();
                                    if computed != expected {
                                        return Err(Error::CrcMismatch { computed, expected });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        if !desynced {
            return Err(Error::MalformedBitstream {
                detail: "bitstream ended without DESYNC".into(),
            });
        }
        Ok(IcapReport {
            words: words.len(),
            frames_written,
            micros: words.len() as f64 / ICAP_CLOCK_MHZ,
        })
    }

    /// Reads `count` payload words, advancing the cursor.
    fn take<'a>(&self, words: &'a [u32], i: &mut usize, count: usize) -> Result<&'a [u32], Error> {
        if *i + count > words.len() {
            return Err(Error::MalformedBitstream {
                detail: format!("truncated packet: wanted {count} payload words"),
            });
        }
        let s = &words[*i..*i + count];
        *i += count;
        Ok(s)
    }

    /// Writes a burst of whole frames starting at the current FAR,
    /// auto-incrementing the minor address, and latches the last frame into
    /// the multi-frame shadow register.
    fn write_burst(
        &mut self,
        far: &mut Option<FrameAddress>,
        payload: &[u32],
        crc: &mut CrcAccumulator,
        shadow: &mut Vec<u32>,
    ) -> Result<usize, Error> {
        if !payload.len().is_multiple_of(self.frame_words) {
            return Err(Error::MalformedBitstream {
                detail: format!(
                    "FDRI payload of {} words is not a multiple of the {}-word frame",
                    payload.len(),
                    self.frame_words
                ),
            });
        }
        let mut addr = far.ok_or_else(|| Error::MalformedBitstream {
            detail: "FDRI with no FAR set".into(),
        })?;
        let mut written = 0usize;
        for chunk in payload.chunks(self.frame_words) {
            for &w in chunk {
                crc.update(w);
            }
            self.memory.write_frame(addr, chunk.to_vec())?;
            self.last_written.push(addr);
            *shadow = chunk.to_vec();
            written += 1;
            addr = FrameAddress::new(addr.row, addr.column, addr.minor + 1);
        }
        *far = Some(addr);
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstream::{BitstreamBuilder, BitstreamKind};
    use crate::part::FpgaPart;
    use proptest::prelude::*;

    fn device() -> Device {
        FpgaPart::Vc707.device()
    }

    fn frame(device: &Device, v: u32) -> Vec<u32> {
        vec![v; device.part().family().frame_words()]
    }

    #[test]
    fn raw_and_compressed_configure_identically() {
        let d = device();
        let mut builder = BitstreamBuilder::new(&d, BitstreamKind::Partial);
        for minor in 0..36 {
            let v = if minor % 3 == 0 {
                0xAAAA_0000
            } else {
                0x5555_0000 + minor
            };
            builder
                .add_frame(FrameAddress::new(2, 5, minor), frame(&d, v))
                .unwrap();
        }
        let mut icap_raw = Icap::new(&d);
        let mut icap_cmp = Icap::new(&d);
        icap_raw.load(&builder.build(false)).unwrap();
        icap_cmp.load(&builder.build(true)).unwrap();
        assert!(icap_raw.memory().diff(icap_cmp.memory()).is_empty());
    }

    #[test]
    fn compressed_load_is_faster() {
        let d = device();
        let mut builder = BitstreamBuilder::new(&d, BitstreamKind::Partial);
        for minor in 0..36 {
            builder
                .add_frame(FrameAddress::new(0, 2, minor), frame(&d, 0))
                .unwrap();
        }
        // Identical (here: blank) frames compress massively and load faster.
        let mut icap = Icap::new(&d);
        let raw = icap.load(&builder.build(false)).unwrap();
        let cmp = icap.load(&builder.build(true)).unwrap();
        assert!(cmp.micros < raw.micros / 4.0);
    }

    #[test]
    fn idcode_mismatch_is_rejected() {
        let d707 = device();
        let d118 = FpgaPart::Vcu118.device();
        let mut builder = BitstreamBuilder::new(&d118, BitstreamKind::Partial);
        builder
            .add_frame(FrameAddress::new(0, 1, 0), frame(&d118, 1))
            .unwrap();
        let bs = builder.build(false);
        let mut icap = Icap::new(&d707);
        assert!(matches!(icap.load(&bs), Err(Error::IdcodeMismatch { .. })));
    }

    #[test]
    fn corrupted_payload_fails_crc() {
        let d = device();
        let mut builder = BitstreamBuilder::new(&d, BitstreamKind::Partial);
        builder
            .add_frame(FrameAddress::new(0, 1, 0), frame(&d, 0x1234))
            .unwrap();
        let bs = builder.build(false);
        // Flip one payload bit (late in the stream, inside the frame data).
        let mut words = bs.words().to_vec();
        let idx = words.len() - 10;
        words[idx] ^= 1;
        let corrupted = bs.with_words(words);
        let mut icap = Icap::new(&d);
        assert!(matches!(
            icap.load(&corrupted),
            Err(Error::CrcMismatch { .. })
        ));
    }

    #[test]
    fn truncated_stream_is_malformed() {
        let d = device();
        let mut builder = BitstreamBuilder::new(&d, BitstreamKind::Partial);
        builder
            .add_frame(FrameAddress::new(0, 1, 0), frame(&d, 9))
            .unwrap();
        let bs = builder.build(false);
        let truncated = bs.with_words(bs.words()[..bs.words().len() / 2].to_vec());
        let mut icap = Icap::new(&d);
        assert!(icap.load(&truncated).is_err());
    }

    #[test]
    fn report_latency_matches_word_count() {
        let d = device();
        let mut builder = BitstreamBuilder::new(&d, BitstreamKind::Partial);
        builder
            .add_frame(FrameAddress::new(1, 1, 1), frame(&d, 3))
            .unwrap();
        let bs = builder.build(false);
        let mut icap = Icap::new(&d);
        let report = icap.load(&bs).unwrap();
        assert_eq!(report.words, bs.words().len());
        assert!((report.micros - report.words as f64 / 100.0).abs() < 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn load_restores_every_staged_frame(
            seeds in proptest::collection::vec((0u32..7, 1u32..140, 0u32..28, 0u32..u32::MAX), 1..20),
            compressed in proptest::bool::ANY,
        ) {
            let d = device();
            let mut builder = BitstreamBuilder::new(&d, BitstreamKind::Partial);
            let mut staged = std::collections::BTreeMap::new();
            for (row, col, minor, v) in seeds {
                let addr = FrameAddress::new(row, col, minor);
                if d.validate_frame(addr).is_ok() {
                    let f = frame(&d, v);
                    builder.add_frame(addr, f.clone()).unwrap();
                    staged.insert(addr, f);
                }
            }
            let bs = builder.build(compressed);
            let mut icap = Icap::new(&d);
            let report = icap.load(&bs).unwrap();
            prop_assert_eq!(report.frames_written, staged.len());
            for (addr, f) in staged {
                prop_assert_eq!(icap.memory().frame(addr), f);
            }
        }
    }
}
