//! Resource vectors for utilization accounting.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A vector of the four fabric resource kinds tracked by the PR-ESP flow.
///
/// Arithmetic is plain (panicking on overflow in debug builds like the
/// integer primitives); use [`Resources::saturating_sub`] when computing
/// headroom.
///
/// # Example
///
/// ```
/// use presp_fpga::resources::Resources;
///
/// let a = Resources::new(100, 200, 2, 4);
/// let b = Resources::new(50, 80, 1, 0);
/// assert_eq!((a + b).lut, 150);
/// assert!(b.fits_in(&a));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Resources {
    /// Look-up tables.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// 36-kbit block RAMs.
    pub bram: u64,
    /// DSP slices.
    pub dsp: u64,
}

impl Resources {
    /// Zero resources.
    pub const ZERO: Resources = Resources {
        lut: 0,
        ff: 0,
        bram: 0,
        dsp: 0,
    };

    /// Creates a resource vector.
    pub const fn new(lut: u64, ff: u64, bram: u64, dsp: u64) -> Self {
        Resources { lut, ff, bram, dsp }
    }

    /// Creates a resource vector holding only LUTs.
    ///
    /// LUT count is the size measure used by the paper's characterization
    /// (Section IV); many call-sites only care about LUTs.
    pub const fn luts(lut: u64) -> Self {
        Resources {
            lut,
            ff: 0,
            bram: 0,
            dsp: 0,
        }
    }

    /// Returns `true` when every component of `self` fits within `other`.
    pub fn fits_in(&self, other: &Resources) -> bool {
        self.lut <= other.lut
            && self.ff <= other.ff
            && self.bram <= other.bram
            && self.dsp <= other.dsp
    }

    /// Component-wise saturating subtraction (headroom computation).
    pub fn saturating_sub(&self, other: &Resources) -> Resources {
        Resources {
            lut: self.lut.saturating_sub(other.lut),
            ff: self.ff.saturating_sub(other.ff),
            bram: self.bram.saturating_sub(other.bram),
            dsp: self.dsp.saturating_sub(other.dsp),
        }
    }

    /// Component-wise maximum.
    pub fn max(&self, other: &Resources) -> Resources {
        Resources {
            lut: self.lut.max(other.lut),
            ff: self.ff.max(other.ff),
            bram: self.bram.max(other.bram),
            dsp: self.dsp.max(other.dsp),
        }
    }

    /// Scales every component by `factor`, rounding up.
    ///
    /// Used to apply utilization margins (a pblock must provide some slack
    /// over the exact requirement for the router to close timing).
    pub fn scale_ceil(&self, factor: f64) -> Resources {
        let s = |v: u64| ((v as f64) * factor).ceil() as u64;
        Resources {
            lut: s(self.lut),
            ff: s(self.ff),
            bram: s(self.bram),
            dsp: s(self.dsp),
        }
    }

    /// Returns `true` if every component is zero.
    pub fn is_zero(&self) -> bool {
        *self == Resources::ZERO
    }

    /// LUT utilization of `self` against a capacity, as a fraction in
    /// `[0, +inf)`. Returns 0.0 for a zero-LUT capacity.
    pub fn lut_fraction_of(&self, capacity: &Resources) -> f64 {
        if capacity.lut == 0 {
            0.0
        } else {
            self.lut as f64 / capacity.lut as f64
        }
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            lut: self.lut + rhs.lut,
            ff: self.ff + rhs.ff,
            bram: self.bram + rhs.bram,
            dsp: self.dsp + rhs.dsp,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

impl Sub for Resources {
    type Output = Resources;
    fn sub(self, rhs: Resources) -> Resources {
        Resources {
            lut: self.lut - rhs.lut,
            ff: self.ff - rhs.ff,
            bram: self.bram - rhs.bram,
            dsp: self.dsp - rhs.dsp,
        }
    }
}

impl Mul<u64> for Resources {
    type Output = Resources;
    fn mul(self, rhs: u64) -> Resources {
        Resources {
            lut: self.lut * rhs,
            ff: self.ff * rhs,
            bram: self.bram * rhs,
            dsp: self.dsp * rhs,
        }
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, |acc, r| acc + r)
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} LUT / {} FF / {} BRAM / {} DSP",
            self.lut, self.ff, self.bram, self.dsp
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_is_componentwise() {
        let a = Resources::new(10, 20, 3, 4);
        let b = Resources::new(1, 2, 3, 4);
        assert_eq!(a + b, Resources::new(11, 22, 6, 8));
        assert_eq!(a - b, Resources::new(9, 18, 0, 0));
        assert_eq!(b * 3, Resources::new(3, 6, 9, 12));
    }

    #[test]
    fn fits_in_requires_all_components() {
        let cap = Resources::new(100, 100, 10, 10);
        assert!(Resources::new(100, 100, 10, 10).fits_in(&cap));
        assert!(!Resources::new(101, 0, 0, 0).fits_in(&cap));
        assert!(!Resources::new(0, 0, 11, 0).fits_in(&cap));
    }

    #[test]
    fn saturating_sub_never_underflows() {
        let small = Resources::new(1, 1, 1, 1);
        let big = Resources::new(5, 5, 5, 5);
        assert_eq!(small.saturating_sub(&big), Resources::ZERO);
        assert_eq!(big.saturating_sub(&small), Resources::new(4, 4, 4, 4));
    }

    #[test]
    fn scale_ceil_rounds_up() {
        let r = Resources::new(10, 0, 3, 1);
        let scaled = r.scale_ceil(1.25);
        assert_eq!(scaled, Resources::new(13, 0, 4, 2));
    }

    #[test]
    fn sum_of_iterator() {
        let total: Resources = (1..=4).map(Resources::luts).sum();
        assert_eq!(total, Resources::luts(10));
    }

    #[test]
    fn lut_fraction_handles_zero_capacity() {
        let r = Resources::luts(10);
        assert_eq!(r.lut_fraction_of(&Resources::ZERO), 0.0);
        assert!((r.lut_fraction_of(&Resources::luts(40)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Resources::ZERO).is_empty());
    }
}
