//! Bitstream construction.
//!
//! The format is a faithful simplification of the Xilinx configuration packet
//! stream: a sync word, type-1 register-write packets, frame payload through
//! the FDRI register, optional multi-frame-write (MFW) compression, a final
//! CRC check and a desync. The [`crate::icap`] module parses exactly this
//! format, so everything that flows to the device round-trips through the same
//! packet layer the hardware would see.

use crate::config_memory::Frame;
use crate::error::Error;
use crate::fabric::Device;
use crate::frame::FrameAddress;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Dummy pad word at the head of every bitstream.
pub const DUMMY_WORD: u32 = 0xFFFF_FFFF;
/// Synchronization word.
pub const SYNC_WORD: u32 = 0xAA99_5566;

/// Configuration registers addressed by type-1 packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum ConfigReg {
    /// CRC check register.
    Crc = 0,
    /// Frame address register.
    Far = 1,
    /// Frame data input register.
    Fdri = 2,
    /// Command register.
    Cmd = 4,
    /// Multi-frame write register.
    Mfwr = 10,
    /// Device IDCODE register.
    Idcode = 12,
}

impl ConfigReg {
    /// Decodes a register index.
    pub fn from_index(idx: u32) -> Option<ConfigReg> {
        Some(match idx {
            0 => ConfigReg::Crc,
            1 => ConfigReg::Far,
            2 => ConfigReg::Fdri,
            4 => ConfigReg::Cmd,
            10 => ConfigReg::Mfwr,
            12 => ConfigReg::Idcode,
            _ => return None,
        })
    }
}

/// Command-register opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum Command {
    /// Write configuration data.
    Wcfg = 1,
    /// Multi-frame write mode.
    Mfw = 2,
    /// Reset CRC accumulator.
    Rcrc = 7,
    /// End of bitstream.
    Desync = 13,
}

impl Command {
    /// Decodes a command opcode.
    pub fn from_value(v: u32) -> Option<Command> {
        Some(match v {
            1 => Command::Wcfg,
            2 => Command::Mfw,
            7 => Command::Rcrc,
            13 => Command::Desync,
            _ => return None,
        })
    }
}

/// Encodes a type-1 write-packet header: `001 | op=10 | reg | count`.
pub fn type1_write(reg: ConfigReg, count: u32) -> u32 {
    assert!(
        count < (1 << 13),
        "type-1 payload too large; chunking required"
    );
    (0b001 << 29) | (0b10 << 27) | ((reg as u32) << 13) | count
}

/// Encodes a type-2 packet header (large FDRI payloads): `010 | op=10 | count`.
pub fn type2_write(count: u32) -> u32 {
    assert!(count < (1 << 27), "type-2 payload too large");
    (0b010 << 29) | (0b10 << 27) | count
}

/// Decoded packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketHeader {
    /// Type-1 write to a register with an inline word count.
    Type1Write {
        /// Destination register.
        reg: ConfigReg,
        /// Payload word count.
        count: u32,
    },
    /// Type-2 write (payload goes to the last addressed register).
    Type2Write {
        /// Payload word count.
        count: u32,
    },
    /// A NOP / padding word.
    Nop,
}

/// Decodes one packet-header word.
///
/// # Errors
///
/// Returns [`Error::MalformedBitstream`] for unknown packet types or
/// registers.
pub fn decode_header(word: u32) -> Result<PacketHeader, Error> {
    let ty = word >> 29;
    match ty {
        0b001 => {
            let op = (word >> 27) & 0b11;
            if op == 0 {
                return Ok(PacketHeader::Nop);
            }
            if op != 0b10 {
                return Err(Error::MalformedBitstream {
                    detail: format!("unsupported op {op} in type-1 packet"),
                });
            }
            let reg_idx = (word >> 13) & 0x3FFF;
            let reg = ConfigReg::from_index(reg_idx).ok_or_else(|| Error::MalformedBitstream {
                detail: format!("unknown register index {reg_idx}"),
            })?;
            Ok(PacketHeader::Type1Write {
                reg,
                count: word & 0x1FFF,
            })
        }
        0b010 => Ok(PacketHeader::Type2Write {
            count: word & 0x07FF_FFFF,
        }),
        _ => Err(Error::MalformedBitstream {
            detail: format!("unknown packet type {ty}"),
        }),
    }
}

/// Running CRC accumulator used by both the builder and the ICAP.
///
/// A CRC-32 (reflected 0xEDB88320 polynomial) folded over every frame payload
/// word and FAR value — enough to catch the corruptions the tests inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CrcAccumulator(u32);

impl CrcAccumulator {
    /// Fresh accumulator (also the state after an RCRC command).
    pub fn new() -> CrcAccumulator {
        CrcAccumulator(0xFFFF_FFFF)
    }

    /// Folds one word into the accumulator.
    pub fn update(&mut self, word: u32) {
        let mut crc = self.0 ^ word;
        for _ in 0..32 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
        self.0 = crc;
    }

    /// Current CRC value.
    pub fn value(&self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

/// Whether a bitstream reconfigures the whole device or a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BitstreamKind {
    /// Full-device bitstream.
    Full,
    /// Partial bitstream for one reconfigurable partition.
    Partial,
}

/// A built bitstream: the exact word stream an ICAP consumes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitstream {
    kind: BitstreamKind,
    idcode: u32,
    compressed: bool,
    words: Vec<u32>,
    frames: usize,
    integrity: u32,
}

impl Bitstream {
    /// CRC-32 over the full word stream, computed once at build time.
    ///
    /// This is a storage-integrity check (does the stream the registry holds
    /// still match what the builder produced?), distinct from the in-stream
    /// CRC word the ICAP verifies during a load.
    fn stream_integrity(words: &[u32]) -> u32 {
        let mut crc = CrcAccumulator::new();
        for &word in words {
            crc.update(word);
        }
        crc.value()
    }

    /// Kind of this bitstream.
    pub fn kind(&self) -> BitstreamKind {
        self.kind
    }

    /// Target-device IDCODE.
    pub fn idcode(&self) -> u32 {
        self.idcode
    }

    /// Whether multi-frame-write compression was used.
    pub fn compressed(&self) -> bool {
        self.compressed
    }

    /// The raw configuration words.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Size in bytes (what gets stored in DRAM and streamed through the ICAP).
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Number of distinct frames this bitstream configures.
    pub fn frame_count(&self) -> usize {
        self.frames
    }

    /// The build-time storage-integrity CRC over the word stream.
    pub fn integrity(&self) -> u32 {
        self.integrity
    }

    /// Recomputes the storage CRC and compares it to the build-time value.
    ///
    /// `false` means the stream was corrupted after the builder produced it
    /// (bit rot, a faulty copy, a tampered registry entry).
    pub fn verify_integrity(&self) -> bool {
        Bitstream::stream_integrity(&self.words) == self.integrity
    }

    /// Returns a copy of this bitstream with its word stream replaced.
    ///
    /// Intended for fault-injection testing (bit flips, truncation): the
    /// metadata — including the build-time integrity CRC — is kept while
    /// only the stream changes, so both the ICAP's in-stream checks and the
    /// registry's at-lookup [`Bitstream::verify_integrity`] can be exercised
    /// against corrupted copies.
    pub fn with_words(&self, words: Vec<u32>) -> Bitstream {
        Bitstream {
            words,
            ..self.clone()
        }
    }

    /// An exact copy whose word stream is written into `buf` (cleared
    /// first), reusing its allocation. The zero-alloc clone for arena
    /// callers that recycle decompressed-stream buffers across requests;
    /// pair with [`Bitstream::into_words`] to recover the buffer.
    pub fn clone_reusing(&self, mut buf: Vec<u32>) -> Bitstream {
        buf.clear();
        buf.extend_from_slice(&self.words);
        Bitstream {
            kind: self.kind,
            idcode: self.idcode,
            compressed: self.compressed,
            words: buf,
            frames: self.frames,
            integrity: self.integrity,
        }
    }

    /// Consumes the bitstream, returning its word buffer for reuse.
    pub fn into_words(self) -> Vec<u32> {
        self.words
    }
}

impl fmt::Display for Bitstream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} bitstream: {} frames, {} KB{}",
            self.kind,
            self.frames,
            self.size_bytes() / 1024,
            if self.compressed { " (compressed)" } else { "" }
        )
    }
}

/// The fabric extent a partial bitstream configures — what the placement
/// layer consults before leasing a region and what relocation rewrites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Footprint {
    /// Distinct fabric columns addressed by FAR writes, ascending.
    pub columns: Vec<u32>,
    /// Lowest clock-region row addressed.
    pub min_row: u32,
    /// Highest clock-region row addressed.
    pub max_row: u32,
}

impl Footprint {
    /// Leftmost column the stream writes.
    pub fn base_column(&self) -> u32 {
        self.columns[0]
    }

    /// Width of the covering column span (holes included): the number of
    /// contiguous columns a region lease must provide.
    pub fn width(&self) -> u32 {
        self.columns[self.columns.len() - 1] - self.columns[0] + 1
    }
}

impl Bitstream {
    /// Scans the packet stream and reports the fabric extent it configures.
    ///
    /// Works on raw and MFW-compressed streams alike: both address frames
    /// exclusively through type-1 FAR writes (FDRI bursts auto-increment
    /// only the minor index, never the column).
    ///
    /// # Errors
    ///
    /// Returns [`Error::MalformedBitstream`] for packet-layer violations or
    /// a stream that writes no frames at all.
    pub fn footprint(&self) -> Result<Footprint, Error> {
        let mut columns: Vec<u32> = Vec::new();
        let mut min_row = u32::MAX;
        let mut max_row = 0u32;
        let mut synced = false;
        let mut i = 0usize;
        while i < self.words.len() {
            let w = self.words[i];
            if !synced {
                i += 1;
                synced = w == SYNC_WORD;
                continue;
            }
            let header = decode_header(w)?;
            i += 1;
            let count = match header {
                PacketHeader::Nop => 0,
                PacketHeader::Type2Write { count } => count as usize,
                PacketHeader::Type1Write { reg, count } => {
                    let count = count as usize;
                    if reg == ConfigReg::Far && count == 1 && i < self.words.len() {
                        let addr = FrameAddress::unpack(self.words[i]);
                        if let Err(pos) = columns.binary_search(&addr.column) {
                            columns.insert(pos, addr.column);
                        }
                        min_row = min_row.min(addr.row);
                        max_row = max_row.max(addr.row);
                    }
                    if reg == ConfigReg::Cmd
                        && count == 1
                        && i < self.words.len()
                        && Command::from_value(self.words[i]) == Some(Command::Desync)
                    {
                        synced = false;
                    }
                    count
                }
            };
            if i + count > self.words.len() {
                return Err(Error::MalformedBitstream {
                    detail: format!("truncated packet: wanted {count} payload words"),
                });
            }
            i += count;
        }
        if columns.is_empty() {
            return Err(Error::MalformedBitstream {
                detail: "bitstream writes no frames: nothing to place".into(),
            });
        }
        Ok(Footprint {
            columns,
            min_row,
            max_row,
        })
    }

    /// Rewrites the stream to target a region `col_delta` columns away,
    /// keeping the configured payload bit-identical.
    ///
    /// Every type-1 FAR payload word is re-addressed and the in-stream CRC
    /// re-folded over the rewritten addresses and the untouched frame data,
    /// so the relocated stream passes the ICAP's CRC check exactly like the
    /// original; the storage-integrity CRC is recomputed to match the new
    /// words. Raw and MFW-compressed streams relocate identically — which
    /// is what makes relocate-then-decompress equal decompress-then-relocate.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IdcodeMismatch`] when the stream targets another
    /// part, [`Error::BadFrameAddress`] when a rewritten address leaves the
    /// fabric or lands on a column of a different kind (the frame geometry
    /// would differ), and [`Error::MalformedBitstream`] for packet-layer
    /// violations.
    pub fn relocate(&self, device: &Device, col_delta: i64) -> Result<Bitstream, Error> {
        if self.idcode != device.part().idcode() {
            return Err(Error::IdcodeMismatch {
                found: self.idcode,
                device: device.part().idcode(),
            });
        }
        let mut words = self.words.clone();
        let mut crc = CrcAccumulator::new();
        let mut synced = false;
        let mut i = 0usize;
        while i < words.len() {
            let w = words[i];
            if !synced {
                i += 1;
                synced = w == SYNC_WORD;
                continue;
            }
            let header = decode_header(w)?;
            i += 1;
            let count = match header {
                PacketHeader::Nop => 0,
                PacketHeader::Type2Write { count } => {
                    let count = count as usize;
                    if i + count > words.len() {
                        return Err(Error::MalformedBitstream {
                            detail: format!("truncated packet: wanted {count} payload words"),
                        });
                    }
                    for k in 0..count {
                        crc.update(words[i + k]);
                    }
                    count
                }
                PacketHeader::Type1Write { reg, count } => {
                    let count = count as usize;
                    if i + count > words.len() {
                        return Err(Error::MalformedBitstream {
                            detail: format!("truncated packet: wanted {count} payload words"),
                        });
                    }
                    match reg {
                        ConfigReg::Far if count == 1 => {
                            let old = FrameAddress::unpack(words[i]);
                            let col = old.column as i64 + col_delta;
                            if col < 0 || col as usize >= device.columns() {
                                return Err(Error::BadFrameAddress {
                                    detail: format!(
                                        "relocated column {col} outside the fabric's {} columns",
                                        device.columns()
                                    ),
                                });
                            }
                            let src_kind = device.column_kind(old.column as usize);
                            let dst_kind = device.column_kind(col as usize);
                            if src_kind != dst_kind {
                                return Err(Error::BadFrameAddress {
                                    detail: format!(
                                        "relocation maps {src_kind:?} column {} onto {dst_kind:?} \
                                         column {col}: frame geometry differs",
                                        old.column
                                    ),
                                });
                            }
                            let new = FrameAddress::new(old.row, col as u32, old.minor);
                            device.validate_frame(new)?;
                            let packed = new.pack();
                            words[i] = packed;
                            crc.update(packed);
                        }
                        ConfigReg::Fdri => {
                            for k in 0..count {
                                crc.update(words[i + k]);
                            }
                        }
                        ConfigReg::Cmd if count == 1 => match Command::from_value(words[i]) {
                            Some(Command::Rcrc) => crc = CrcAccumulator::new(),
                            Some(Command::Desync) => synced = false,
                            _ => {}
                        },
                        ConfigReg::Crc if count == 1 => {
                            words[i] = crc.value();
                        }
                        _ => {}
                    }
                    count
                }
            };
            i += count;
        }
        let integrity = Bitstream::stream_integrity(&words);
        Ok(Bitstream {
            kind: self.kind,
            idcode: self.idcode,
            compressed: self.compressed,
            words,
            frames: self.frames,
            integrity,
        })
    }
}

/// Builds bitstreams from frame data.
///
/// # Example
///
/// ```
/// use presp_fpga::bitstream::{BitstreamBuilder, BitstreamKind};
/// use presp_fpga::frame::FrameAddress;
/// use presp_fpga::part::FpgaPart;
///
/// let device = FpgaPart::Vc707.device();
/// let mut builder = BitstreamBuilder::new(&device, BitstreamKind::Partial);
/// let words = device.part().family().frame_words();
/// builder.add_frame(FrameAddress::new(0, 1, 0), vec![0x1234_5678; words])?;
/// let bs = builder.build(true);
/// assert!(bs.size_bytes() > 0);
/// # Ok::<(), presp_fpga::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct BitstreamBuilder {
    device: Device,
    kind: BitstreamKind,
    frame_words: usize,
    frames: BTreeMap<FrameAddress, Frame>,
}

impl BitstreamBuilder {
    /// Creates a builder targeting `device`.
    pub fn new(device: &Device, kind: BitstreamKind) -> BitstreamBuilder {
        BitstreamBuilder {
            device: device.clone(),
            kind,
            frame_words: device.part().family().frame_words(),
            frames: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) the payload for one frame.
    ///
    /// # Errors
    ///
    /// Returns an error if the address is invalid for the device or the
    /// payload has the wrong length.
    pub fn add_frame(&mut self, addr: FrameAddress, data: Frame) -> Result<(), Error> {
        self.device.validate_frame(addr)?;
        if data.len() != self.frame_words {
            return Err(Error::BadFrameAddress {
                detail: format!(
                    "frame payload {} words, expected {}",
                    data.len(),
                    self.frame_words
                ),
            });
        }
        self.frames.insert(addr, data); // presp-lint: allow — builder staging map, not live config memory
        Ok(())
    }

    /// Number of frames staged so far.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Serializes the staged frames into a bitstream.
    ///
    /// With `compressed = true` the builder groups identical frame payloads
    /// and emits each payload once through FDRI followed by FAR+MFWR writes
    /// for the remaining addresses — the multi-frame-write scheme behind
    /// Vivado's `BITSTREAM.GENERAL.COMPRESS` option.
    pub fn build(&self, compressed: bool) -> Bitstream {
        let mut words = Vec::new();
        let mut crc = CrcAccumulator::new();
        words.push(DUMMY_WORD);
        words.push(SYNC_WORD);
        // RCRC, IDCODE check, WCFG.
        words.push(type1_write(ConfigReg::Cmd, 1));
        words.push(Command::Rcrc as u32);
        words.push(type1_write(ConfigReg::Idcode, 1));
        words.push(self.device.part().idcode());
        words.push(type1_write(ConfigReg::Cmd, 1));
        words.push(Command::Wcfg as u32);

        if compressed {
            self.emit_compressed(&mut words, &mut crc);
        } else {
            self.emit_linear(&mut words, &mut crc);
        }

        words.push(type1_write(ConfigReg::Crc, 1));
        words.push(crc.value());
        words.push(type1_write(ConfigReg::Cmd, 1));
        words.push(Command::Desync as u32);

        let integrity = Bitstream::stream_integrity(&words);
        Bitstream {
            kind: self.kind,
            idcode: self.device.part().idcode(),
            compressed,
            words,
            frames: self.frames.len(),
            integrity,
        }
    }

    /// Emits frames in address order, merging contiguous runs into one FDRI
    /// burst per run.
    fn emit_linear(&self, words: &mut Vec<u32>, crc: &mut CrcAccumulator) {
        let addrs: Vec<FrameAddress> = self.frames.keys().copied().collect();
        let mut i = 0;
        while i < addrs.len() {
            // Extend a contiguous minor run within the same (row, column).
            let start = i;
            while i + 1 < addrs.len()
                && addrs[i + 1].row == addrs[i].row
                && addrs[i + 1].column == addrs[i].column
                && addrs[i + 1].minor == addrs[i].minor + 1
            {
                i += 1;
            }
            let run = &addrs[start..=i];
            let far = run[0].pack();
            words.push(type1_write(ConfigReg::Far, 1));
            words.push(far);
            crc.update(far);
            let payload_words = run.len() * self.frame_words;
            if payload_words < (1 << 13) {
                words.push(type1_write(ConfigReg::Fdri, payload_words as u32));
            } else {
                words.push(type1_write(ConfigReg::Fdri, 0));
                words.push(type2_write(payload_words as u32));
            }
            for addr in run {
                for &w in &self.frames[addr] {
                    words.push(w);
                    crc.update(w);
                }
            }
            i += 1;
        }
    }

    /// Emits each distinct payload once, then multi-frame-writes it to every
    /// address that shares it.
    fn emit_compressed(&self, words: &mut Vec<u32>, crc: &mut CrcAccumulator) {
        // Group addresses by identical payload (hash-bucketed so full-device
        // bitstreams stay linear), preserving address order of first
        // occurrence for determinism.
        let mut groups: Vec<(&Frame, Vec<FrameAddress>)> = Vec::new();
        let mut buckets: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        for (addr, frame) in &self.frames {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &w in frame {
                h = (h ^ w as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            let bucket = buckets.entry(h).or_default();
            match bucket.iter().find(|&&g| groups[g].0 == frame) {
                Some(&g) => groups[g].1.push(*addr),
                None => {
                    bucket.push(groups.len());
                    groups.push((frame, vec![*addr]));
                }
            }
        }
        for (frame, addrs) in groups {
            if addrs.len() == 1 {
                let far = addrs[0].pack();
                words.push(type1_write(ConfigReg::Far, 1));
                words.push(far);
                crc.update(far);
                words.push(type1_write(ConfigReg::Fdri, self.frame_words as u32));
                for &w in frame {
                    words.push(w);
                    crc.update(w);
                }
            } else {
                // Load the frame into the frame-data shadow register, switch
                // to MFW and replay it at each address.
                let far = addrs[0].pack();
                words.push(type1_write(ConfigReg::Far, 1));
                words.push(far);
                crc.update(far);
                words.push(type1_write(ConfigReg::Fdri, self.frame_words as u32));
                for &w in frame {
                    words.push(w);
                    crc.update(w);
                }
                words.push(type1_write(ConfigReg::Cmd, 1));
                words.push(Command::Mfw as u32);
                for addr in &addrs[1..] {
                    let far = addr.pack();
                    words.push(type1_write(ConfigReg::Far, 1));
                    words.push(far);
                    crc.update(far);
                    words.push(type1_write(ConfigReg::Mfwr, 1));
                    words.push(0);
                }
                words.push(type1_write(ConfigReg::Cmd, 1));
                words.push(Command::Wcfg as u32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::part::FpgaPart;

    fn device() -> Device {
        FpgaPart::Vc707.device()
    }

    fn frame_of(device: &Device, value: u32) -> Frame {
        vec![value; device.part().family().frame_words()]
    }

    #[test]
    fn header_codec_roundtrip() {
        let h = type1_write(ConfigReg::Fdri, 101);
        assert_eq!(
            decode_header(h).unwrap(),
            PacketHeader::Type1Write {
                reg: ConfigReg::Fdri,
                count: 101
            }
        );
        let h2 = type2_write(123_456);
        assert_eq!(
            decode_header(h2).unwrap(),
            PacketHeader::Type2Write { count: 123_456 }
        );
    }

    #[test]
    fn dummy_word_is_not_a_valid_packet() {
        assert!(decode_header(DUMMY_WORD).is_err());
    }

    #[test]
    fn bitstream_starts_with_sync_sequence() {
        let d = device();
        let builder = BitstreamBuilder::new(&d, BitstreamKind::Partial);
        let bs = builder.build(false);
        assert_eq!(bs.words()[0], DUMMY_WORD);
        assert_eq!(bs.words()[1], SYNC_WORD);
    }

    #[test]
    fn compression_shrinks_duplicate_frames() {
        let d = device();
        let mut builder = BitstreamBuilder::new(&d, BitstreamKind::Partial);
        for minor in 0..36 {
            builder
                .add_frame(FrameAddress::new(0, 1, minor), frame_of(&d, 0xCAFE_F00D))
                .unwrap();
        }
        let raw = builder.build(false);
        let compressed = builder.build(true);
        assert!(compressed.size_bytes() < raw.size_bytes() / 4);
        assert_eq!(raw.frame_count(), 36);
        assert_eq!(compressed.frame_count(), 36);
    }

    #[test]
    fn clone_reusing_reuses_the_buffer_and_roundtrips() {
        let d = device();
        let mut builder = BitstreamBuilder::new(&d, BitstreamKind::Partial);
        builder
            .add_frame(FrameAddress::new(0, 1, 0), frame_of(&d, 0xAB))
            .unwrap();
        let bs = builder.build(true);
        let buf: Vec<u32> = Vec::with_capacity(bs.words().len() + 7);
        let ptr = buf.as_ptr();
        let cap = buf.capacity();
        let copy = bs.clone_reusing(buf);
        assert_eq!(copy.words(), bs.words());
        assert_eq!(copy.frame_count(), bs.frame_count());
        assert_eq!(copy.integrity(), bs.integrity());
        assert!(copy.verify_integrity());
        let recovered = copy.into_words();
        // The allocation survived the round trip untouched.
        assert_eq!(recovered.as_ptr(), ptr);
        assert_eq!(recovered.capacity(), cap);
    }

    #[test]
    fn compression_does_not_help_unique_frames() {
        let d = device();
        let mut builder = BitstreamBuilder::new(&d, BitstreamKind::Partial);
        for minor in 0..8 {
            builder
                .add_frame(FrameAddress::new(0, 1, minor), frame_of(&d, 0x1000 + minor))
                .unwrap();
        }
        let raw = builder.build(false);
        let compressed = builder.build(true);
        // Unique frames gain nothing; per-frame FAR writes cost a little more.
        assert!(compressed.size_bytes() as f64 >= raw.size_bytes() as f64 * 0.95);
    }

    #[test]
    fn crc_changes_with_payload() {
        let mut a = CrcAccumulator::new();
        let mut b = CrcAccumulator::new();
        a.update(1);
        b.update(2);
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn rejects_bad_frames() {
        let d = device();
        let mut builder = BitstreamBuilder::new(&d, BitstreamKind::Partial);
        assert!(builder
            .add_frame(FrameAddress::new(999, 0, 0), frame_of(&d, 0))
            .is_err());
        assert!(builder
            .add_frame(FrameAddress::new(0, 1, 0), vec![0; 3])
            .is_err());
    }

    #[test]
    fn display_mentions_frame_count() {
        let d = device();
        let mut builder = BitstreamBuilder::new(&d, BitstreamKind::Full);
        builder
            .add_frame(FrameAddress::new(0, 1, 0), frame_of(&d, 5))
            .unwrap();
        let text = format!("{}", builder.build(false));
        assert!(text.contains("1 frames"));
    }

    mod roundtrip {
        use super::*;
        use crate::icap::Icap;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Compress → decompress identity: streaming the MFW-compressed
            /// form through the ICAP configures the exact same fabric state
            /// as the linear form. The small value space forces duplicate
            /// payloads, so the MFW path is really exercised.
            #[test]
            fn compressed_and_raw_streams_configure_identical_fabric(
                values in proptest::collection::vec(0u32..4, 1..24),
                row in 0u32..7,
                col in 1u32..100,
            ) {
                let d = device();
                let mut builder = BitstreamBuilder::new(&d, BitstreamKind::Partial);
                for (minor, v) in values.iter().enumerate() {
                    builder.add_frame(FrameAddress::new(row, col, minor as u32), frame_of(&d, *v)).unwrap();
                }
                let raw = builder.build(false);
                let compressed = builder.build(true);
                prop_assert_eq!(raw.frame_count(), values.len());
                prop_assert_eq!(compressed.frame_count(), values.len());
                let mut icap_raw = Icap::new(&d);
                let mut icap_cmp = Icap::new(&d);
                icap_raw.load(&raw).unwrap();
                icap_cmp.load(&compressed).unwrap();
                prop_assert!(icap_raw.memory().diff(icap_cmp.memory()).is_empty());
            }

            /// Any single-bit flip in a CRC-covered word — a frame payload
            /// word or the embedded CRC value itself — fails the load with
            /// a CRC mismatch; corruption is never silent.
            #[test]
            fn crc_detects_any_single_bit_flip_in_covered_words(
                n_frames in 1usize..8,
                pick in 0usize..1_000_000,
                bit in 0u32..32,
            ) {
                let d = device();
                let fw = d.part().family().frame_words();
                let mut builder = BitstreamBuilder::new(&d, BitstreamKind::Partial);
                for minor in 0..n_frames {
                    builder.add_frame(
                        FrameAddress::new(1, 2, minor as u32),
                        frame_of(&d, 0xA5A5_0000 + minor as u32),
                    ).unwrap();
                }
                let bs = builder.build(false);
                // Linear single-run layout: 8 preamble words, FAR write (2),
                // FDRI header (1), payload, then [CRC hdr, CRC, CMD hdr,
                // DESYNC].
                let payload = n_frames * fw;
                prop_assert_eq!(bs.words().len(), 11 + payload + 4);
                let k = pick % (payload + 1);
                let index = if k == payload { bs.words().len() - 3 } else { 11 + k };
                let mut words = bs.words().to_vec();
                words[index] ^= 1 << bit;
                let mut icap = Icap::new(&d);
                let result = icap.load(&bs.with_words(words));
                prop_assert!(
                    matches!(result, Err(Error::CrcMismatch { .. })),
                    "flip at word {} bit {} was not detected: {:?}", index, bit, result
                );
            }

            /// Frame-count accounting survives the round trip: re-adding an
            /// address replaces its payload (no double count), and both
            /// serialized forms report exactly the staged frames.
            #[test]
            fn frame_count_accounts_distinct_addresses(
                seeds in proptest::collection::vec((0u32..7, 1u32..100, 0u32..28, 0u32..u32::MAX), 1..20),
            ) {
                let d = device();
                let mut builder = BitstreamBuilder::new(&d, BitstreamKind::Partial);
                let mut staged = std::collections::BTreeSet::new();
                for (row, col, minor, v) in seeds {
                    let addr = FrameAddress::new(row, col, minor);
                    if d.validate_frame(addr).is_ok() {
                        builder.add_frame(addr, frame_of(&d, v)).unwrap();
                        staged.insert(addr);
                    }
                }
                prop_assume!(!staged.is_empty());
                prop_assert_eq!(builder.frame_count(), staged.len());
                prop_assert_eq!(builder.build(false).frame_count(), staged.len());
                prop_assert_eq!(builder.build(true).frame_count(), staged.len());
            }
        }
    }

    mod relocation {
        use super::*;
        use crate::ecc::FrameRepair;
        use crate::fabric::ColumnKind;
        use crate::icap::Icap;
        use proptest::prelude::*;

        fn clb_columns(d: &Device) -> Vec<u32> {
            (0..d.columns())
                .filter(|&i| d.column_kind(i) == ColumnKind::Clb)
                .map(|i| i as u32)
                .collect()
        }

        #[test]
        fn footprint_reports_the_covering_span() {
            let d = device();
            let mut builder = BitstreamBuilder::new(&d, BitstreamKind::Partial);
            builder
                .add_frame(FrameAddress::new(1, 5, 0), frame_of(&d, 1))
                .unwrap();
            builder
                .add_frame(FrameAddress::new(2, 8, 3), frame_of(&d, 2))
                .unwrap();
            let fp = builder.build(false).footprint().unwrap();
            assert_eq!(fp.columns, vec![5, 8]);
            assert_eq!(fp.base_column(), 5);
            assert_eq!(fp.width(), 4);
            assert_eq!((fp.min_row, fp.max_row), (1, 2));
            // Compression addresses the same columns through MFW replay.
            assert_eq!(builder.build(true).footprint().unwrap(), fp);
        }

        #[test]
        fn footprint_of_an_empty_stream_is_an_error() {
            let d = device();
            let bs = BitstreamBuilder::new(&d, BitstreamKind::Partial).build(false);
            assert!(matches!(
                bs.footprint(),
                Err(Error::MalformedBitstream { .. })
            ));
        }

        #[test]
        fn relocate_by_zero_is_the_identity() {
            let d = device();
            let mut builder = BitstreamBuilder::new(&d, BitstreamKind::Partial);
            builder
                .add_frame(FrameAddress::new(0, 2, 0), frame_of(&d, 0xAB))
                .unwrap();
            let bs = builder.build(true);
            let moved = bs.relocate(&d, 0).unwrap();
            assert_eq!(moved.words(), bs.words());
            assert_eq!(moved.integrity(), bs.integrity());
        }

        #[test]
        fn relocate_rejects_leaving_the_fabric() {
            let d = device();
            let mut builder = BitstreamBuilder::new(&d, BitstreamKind::Partial);
            builder
                .add_frame(FrameAddress::new(0, 2, 0), frame_of(&d, 1))
                .unwrap();
            let bs = builder.build(false);
            assert!(matches!(
                bs.relocate(&d, -3),
                Err(Error::BadFrameAddress { .. })
            ));
            assert!(matches!(
                bs.relocate(&d, d.columns() as i64),
                Err(Error::BadFrameAddress { .. })
            ));
        }

        #[test]
        fn relocate_rejects_a_column_kind_change() {
            let d = device();
            let clbs = clb_columns(&d);
            // Find a Clb column whose right neighbour is not Clb: shifting by
            // one maps Clb frame geometry onto a different column kind.
            let src = clbs
                .iter()
                .copied()
                .find(|&c| {
                    (c as usize + 1) < d.columns()
                        && d.column_kind(c as usize + 1) != ColumnKind::Clb
                })
                .expect("interleaved fabric has a Clb column with a non-Clb neighbour");
            let mut builder = BitstreamBuilder::new(&d, BitstreamKind::Partial);
            builder
                .add_frame(FrameAddress::new(0, src, 0), frame_of(&d, 1))
                .unwrap();
            let err = builder.build(false).relocate(&d, 1).unwrap_err();
            assert!(matches!(err, Error::BadFrameAddress { .. }), "{err}");
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Relocation commutes with decompression over random regions:
            /// relocating the MFW-compressed stream and then loading it
            /// configures the exact same fabric state as loading the raw
            /// relocated stream, and both match a stream built directly at
            /// the destination. Frame counts and storage integrity survive
            /// the move.
            #[test]
            fn relocate_commutes_with_decompression(
                values in proptest::collection::vec(0u32..4, 1..16),
                row in 0u32..7,
                src_pick in 0usize..1000,
                dst_pick in 0usize..1000,
                width in 1u32..4,
            ) {
                let d = device();
                let clbs = clb_columns(&d);
                let src = clbs[src_pick % clbs.len()];
                let dst = clbs[dst_pick % clbs.len()];
                let delta = dst as i64 - src as i64;
                // Every column of the span must keep its kind at the
                // destination, or relocation (rightly) refuses.
                prop_assume!((0..width).all(|i| {
                    let s = src as usize + i as usize;
                    let t = (src as i64 + i as i64 + delta) as usize;
                    s < d.columns()
                        && t < d.columns()
                        && d.column_kind(s) == d.column_kind(t)
                        && d.column_kind(s).reconfigurable()
                }));
                let mut builder = BitstreamBuilder::new(&d, BitstreamKind::Partial);
                let mut shifted = BitstreamBuilder::new(&d, BitstreamKind::Partial);
                for (i, v) in values.iter().enumerate() {
                    let col = src + (i as u32 % width);
                    let minor = i as u32 / width;
                    builder
                        .add_frame(FrameAddress::new(row, col, minor), frame_of(&d, *v))
                        .unwrap();
                    shifted
                        .add_frame(
                            FrameAddress::new(row, (col as i64 + delta) as u32, minor),
                            frame_of(&d, *v),
                        )
                        .unwrap();
                }
                let raw = builder.build(false).relocate(&d, delta).unwrap();
                let compressed = builder.build(true).relocate(&d, delta).unwrap();
                prop_assert_eq!(raw.frame_count(), values.len());
                prop_assert_eq!(compressed.frame_count(), values.len());
                prop_assert!(raw.verify_integrity());
                prop_assert!(compressed.verify_integrity());
                let mut icap_raw = Icap::new(&d);
                let mut icap_cmp = Icap::new(&d);
                let mut icap_direct = Icap::new(&d);
                icap_raw.load(&raw).unwrap();
                icap_cmp.load(&compressed).unwrap();
                icap_direct.load(&shifted.build(false)).unwrap();
                prop_assert!(icap_raw.memory().diff(icap_cmp.memory()).is_empty());
                prop_assert!(icap_raw.memory().diff(icap_direct.memory()).is_empty());
            }

            /// The re-folded in-stream CRC still guards the moved stream:
            /// any single-bit flip in a covered word of the *relocated*
            /// bitstream fails the load with a CRC mismatch.
            #[test]
            fn crc_detects_any_single_bit_flip_after_relocation(
                n_frames in 1usize..8,
                pick in 0usize..1_000_000,
                bit in 0u32..32,
                dst_pick in 0usize..1000,
            ) {
                let d = device();
                let fw = d.part().family().frame_words();
                let clbs = clb_columns(&d);
                let src = clbs[0];
                let dst = clbs[dst_pick % clbs.len()];
                let mut builder = BitstreamBuilder::new(&d, BitstreamKind::Partial);
                for minor in 0..n_frames {
                    builder.add_frame(
                        FrameAddress::new(1, src, minor as u32),
                        frame_of(&d, 0x5A5A_0000 + minor as u32),
                    ).unwrap();
                }
                let bs = builder.build(false).relocate(&d, dst as i64 - src as i64).unwrap();
                // Same linear single-run layout as the unmoved stream:
                // 8 preamble words, FAR write (2), FDRI header (1), payload,
                // then [CRC hdr, CRC, CMD hdr, DESYNC].
                let payload = n_frames * fw;
                prop_assert_eq!(bs.words().len(), 11 + payload + 4);
                let k = pick % (payload + 2);
                let index = match k {
                    k if k == payload => bs.words().len() - 3, // the CRC word
                    k if k == payload + 1 => 9,                // the rewritten FAR value
                    k => 11 + k,
                };
                let mut words = bs.words().to_vec();
                words[index] ^= 1 << bit;
                let mut icap = Icap::new(&d);
                let result = icap.load(&bs.with_words(words));
                prop_assert!(
                    matches!(result, Err(Error::CrcMismatch { .. }) | Err(Error::BadFrameAddress { .. })),
                    "flip at word {} bit {} was not detected: {:?}", index, bit, result
                );
            }

            /// The ECC shadow is in lockstep after a move: every frame a
            /// relocated stream wrote scrubs Clean, and the configured
            /// address count matches the frame accounting.
            #[test]
            fn ecc_scrubs_clean_after_relocated_load(
                values in proptest::collection::vec(0u32..64, 1..12),
                row in 0u32..7,
                dst_pick in 0usize..1000,
                compress in proptest::bool::ANY,
            ) {
                let d = device();
                let clbs = clb_columns(&d);
                let src = clbs[0];
                let dst = clbs[dst_pick % clbs.len()];
                let mut builder = BitstreamBuilder::new(&d, BitstreamKind::Partial);
                for (minor, v) in values.iter().enumerate() {
                    builder
                        .add_frame(FrameAddress::new(row, src, minor as u32), frame_of(&d, *v))
                        .unwrap();
                }
                let moved = builder.build(compress).relocate(&d, dst as i64 - src as i64).unwrap();
                let mut icap = Icap::new(&d);
                let report = icap.load(&moved).unwrap();
                prop_assert_eq!(report.frames_written, values.len());
                let addrs = icap.last_written().to_vec();
                prop_assert_eq!(addrs.len(), values.len());
                for addr in addrs {
                    prop_assert_eq!(addr.column, dst);
                    prop_assert_eq!(
                        icap.memory_mut().scrub_frame(addr).unwrap(),
                        FrameRepair::Clean
                    );
                }
                // All-zero frames are stored as erased, so only non-zero
                // payloads count as configured.
                prop_assert_eq!(
                    icap.memory().configured_addresses().len(),
                    values.iter().filter(|&&v| v != 0).count()
                );
            }
        }
    }
}
