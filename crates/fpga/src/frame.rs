//! Configuration-frame addressing.
//!
//! A configuration frame is the smallest reconfigurable unit of the device: a
//! vertical slice of one column within one clock-region row. Frame addresses
//! are ordered (row, column, minor) so that a pblock's frame set is a set of
//! contiguous minor runs — the order Vivado's bitstream generator emits them.

use crate::fabric::ColumnKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of configuration frames needed to describe one column within one
/// clock-region row.
///
/// 7-series counts: 36 for CLB columns, 28 for DSP, 28 interconnect + 128
/// content frames for BRAM, and fixed small counts for the special columns.
pub fn frames_per_column(kind: ColumnKind) -> usize {
    match kind {
        ColumnKind::Clb => 36,
        ColumnKind::Dsp => 28,
        ColumnKind::Bram => 28 + 128,
        ColumnKind::Io => 42,
        ColumnKind::Clk => 30,
        ColumnKind::Cfg => 30,
    }
}

/// A frame address: (clock-region row, fabric column, minor frame index).
///
/// This is a simplified FAR — the real register packs block type, top/bottom
/// flag, row, column and minor into 32 bits; the simulation keeps the fields
/// separate and packs only when serializing into a bitstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FrameAddress {
    /// Clock-region row.
    pub row: u32,
    /// Fabric column index.
    pub column: u32,
    /// Minor frame index within the column.
    pub minor: u32,
}

impl FrameAddress {
    /// Creates a frame address.
    pub fn new(row: u32, column: u32, minor: u32) -> FrameAddress {
        FrameAddress { row, column, minor }
    }

    /// Packs the address into the 32-bit FAR register layout used by the
    /// bitstream format: `row[31:22] | column[21:8] | minor[7:0]`.
    ///
    /// # Panics
    ///
    /// Panics if a field exceeds its bit budget (rows ≥ 1024, columns ≥ 16384
    /// or minors ≥ 256 do not occur on the modeled parts).
    pub fn pack(&self) -> u32 {
        assert!(self.row < 1 << 10, "row {} exceeds FAR field", self.row);
        assert!(
            self.column < 1 << 14,
            "column {} exceeds FAR field",
            self.column
        );
        assert!(
            self.minor < 1 << 8,
            "minor {} exceeds FAR field",
            self.minor
        );
        (self.row << 22) | (self.column << 8) | self.minor
    }

    /// Unpacks a 32-bit FAR register value.
    pub fn unpack(far: u32) -> FrameAddress {
        FrameAddress {
            row: (far >> 22) & 0x3FF,
            column: (far >> 8) & 0x3FFF,
            minor: far & 0xFF,
        }
    }

    /// The next frame address in device order given the column's frame count,
    /// or `None` at the end of the column.
    pub fn next_minor(&self, frames_in_column: usize) -> Option<FrameAddress> {
        if (self.minor as usize) + 1 < frames_in_column {
            Some(FrameAddress::new(self.row, self.column, self.minor + 1))
        } else {
            None
        }
    }
}

impl fmt::Display for FrameAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FAR(row={}, col={}, minor={})",
            self.row, self.column, self.minor
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bram_columns_have_content_frames() {
        assert!(frames_per_column(ColumnKind::Bram) > frames_per_column(ColumnKind::Clb));
        assert_eq!(frames_per_column(ColumnKind::Bram), 156);
    }

    #[test]
    fn pack_unpack_roundtrip_simple() {
        let a = FrameAddress::new(6, 148, 35);
        assert_eq!(FrameAddress::unpack(a.pack()), a);
    }

    #[test]
    fn next_minor_stops_at_column_end() {
        let a = FrameAddress::new(0, 0, 35);
        assert_eq!(a.next_minor(36), None);
        assert_eq!(a.next_minor(37), Some(FrameAddress::new(0, 0, 36)));
    }

    #[test]
    fn ordering_is_row_major() {
        let a = FrameAddress::new(0, 10, 5);
        let b = FrameAddress::new(0, 11, 0);
        let c = FrameAddress::new(1, 0, 0);
        assert!(a < b && b < c);
    }

    proptest! {
        #[test]
        fn pack_unpack_roundtrip(row in 0u32..1024, col in 0u32..16384, minor in 0u32..256) {
            let a = FrameAddress::new(row, col, minor);
            prop_assert_eq!(FrameAddress::unpack(a.pack()), a);
        }

        #[test]
        fn pack_preserves_order_within_row(col in 0u32..1000, m1 in 0u32..256, m2 in 0u32..256) {
            let a = FrameAddress::new(0, col, m1);
            let b = FrameAddress::new(0, col, m2);
            prop_assert_eq!(a.pack() < b.pack(), a < b);
        }
    }
}
