//! Placement blocks (pblocks) for reconfigurable partitions.

use crate::error::Error;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;

/// A rectangular placement constraint for a reconfigurable partition.
///
/// Coordinates are fabric-column indices horizontally and clock-region rows
/// vertically. Because the vertical unit *is* the clock-region row, every
/// `Pblock` automatically satisfies the Xilinx DPR rule that reconfigurable
/// regions be vertically aligned to clock-region boundaries.
///
/// # Example
///
/// ```
/// use presp_fpga::pblock::Pblock;
///
/// let a = Pblock::new(0, 10, 0, 2)?;
/// let b = Pblock::new(10, 20, 0, 2)?;
/// assert!(!a.overlaps(&b)); // ranges are half-open
/// # Ok::<(), presp_fpga::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pblock {
    col_start: usize,
    col_end: usize,
    row_start: usize,
    row_end: usize,
}

impl Pblock {
    /// Creates a pblock covering columns `col_start..col_end` and clock-region
    /// rows `row_start..row_end` (half-open ranges).
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyPblock`] if either range is empty or inverted.
    pub fn new(
        col_start: usize,
        col_end: usize,
        row_start: usize,
        row_end: usize,
    ) -> Result<Pblock, Error> {
        if col_start >= col_end || row_start >= row_end {
            return Err(Error::EmptyPblock);
        }
        Ok(Pblock {
            col_start,
            col_end,
            row_start,
            row_end,
        })
    }

    /// First covered column.
    pub fn col_start(&self) -> usize {
        self.col_start
    }

    /// One past the last covered column.
    pub fn col_end(&self) -> usize {
        self.col_end
    }

    /// First covered clock-region row.
    pub fn row_start(&self) -> usize {
        self.row_start
    }

    /// One past the last covered clock-region row.
    pub fn row_end(&self) -> usize {
        self.row_end
    }

    /// Covered column range.
    pub fn col_range(&self) -> Range<usize> {
        self.col_start..self.col_end
    }

    /// Covered row range.
    pub fn row_range(&self) -> Range<usize> {
        self.row_start..self.row_end
    }

    /// Number of covered columns.
    pub fn col_span(&self) -> usize {
        self.col_end - self.col_start
    }

    /// Number of covered clock-region rows.
    pub fn row_span(&self) -> usize {
        self.row_end - self.row_start
    }

    /// Covered area in column × row units.
    pub fn area(&self) -> usize {
        self.col_span() * self.row_span()
    }

    /// Whether two pblocks share any fabric.
    pub fn overlaps(&self, other: &Pblock) -> bool {
        self.col_start < other.col_end
            && other.col_start < self.col_end
            && self.row_start < other.row_end
            && other.row_start < self.row_end
    }

    /// Checks that every pair in `pblocks` is disjoint.
    ///
    /// # Errors
    ///
    /// Returns [`Error::PblockOverlap`] on the first overlapping pair.
    pub fn check_disjoint(pblocks: &[Pblock]) -> Result<(), Error> {
        for (i, a) in pblocks.iter().enumerate() {
            for b in &pblocks[i + 1..] {
                if a.overlaps(b) {
                    return Err(Error::PblockOverlap);
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Pblock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pblock[cols {}..{}, rows {}..{}]",
            self.col_start, self.col_end, self.row_start, self.row_end
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_empty_rectangles() {
        assert_eq!(Pblock::new(3, 3, 0, 1), Err(Error::EmptyPblock));
        assert_eq!(Pblock::new(0, 1, 2, 2), Err(Error::EmptyPblock));
        assert_eq!(Pblock::new(5, 2, 0, 1), Err(Error::EmptyPblock));
    }

    #[test]
    fn adjacency_is_not_overlap() {
        let a = Pblock::new(0, 10, 0, 2).unwrap();
        let b = Pblock::new(10, 12, 0, 2).unwrap();
        let c = Pblock::new(0, 10, 2, 3).unwrap();
        assert!(!a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn containment_is_overlap() {
        let outer = Pblock::new(0, 100, 0, 5).unwrap();
        let inner = Pblock::new(10, 20, 1, 2).unwrap();
        assert!(outer.overlaps(&inner));
        assert!(inner.overlaps(&outer));
    }

    #[test]
    fn check_disjoint_finds_overlap() {
        let a = Pblock::new(0, 10, 0, 1).unwrap();
        let b = Pblock::new(20, 30, 0, 1).unwrap();
        let c = Pblock::new(5, 25, 0, 1).unwrap();
        assert!(Pblock::check_disjoint(&[a, b]).is_ok());
        assert_eq!(
            Pblock::check_disjoint(&[a, b, c]),
            Err(Error::PblockOverlap)
        );
    }

    fn arb_pblock() -> impl Strategy<Value = Pblock> {
        (0usize..140, 1usize..20, 0usize..6, 1usize..4)
            .prop_map(|(c0, cw, r0, rh)| Pblock::new(c0, c0 + cw, r0, r0 + rh).unwrap())
    }

    proptest! {
        #[test]
        fn overlap_is_symmetric(a in arb_pblock(), b in arb_pblock()) {
            prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        }

        #[test]
        fn pblock_overlaps_itself(a in arb_pblock()) {
            prop_assert!(a.overlaps(&a));
        }

        #[test]
        fn area_is_span_product(a in arb_pblock()) {
            prop_assert_eq!(a.area(), a.col_span() * a.row_span());
            prop_assert!(a.area() > 0);
        }

        #[test]
        fn disjoint_translation_never_overlaps(a in arb_pblock()) {
            let shifted = Pblock::new(
                a.col_start() + 200,
                a.col_end() + 200,
                a.row_start(),
                a.row_end(),
            ).unwrap();
            prop_assert!(!a.overlaps(&shifted));
        }
    }
}
